"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``list`` — registered code families.
* ``layout FAMILY N`` — render a code's element grid and key properties.
* ``verify FAMILY N`` — exhaustive fault-tolerance check + random decode
  round-trip.
* ``write-cost FAMILY N [--length L]`` — single/partial write complexity.
* ``simulate WORKLOAD N [--requests R]`` — trace-driven comparison of all
  evaluated codes (write cost + simulated response time).
* ``replay --family F --n N --trace T`` — replay a trace (CSV file or
  ``synthetic:<workload>``) against a *real* file-backed store through
  the byte-addressed block device, printing Table-3-style trace stats
  plus the measured data/parity chunk I/O split. With ``--fault-plan``
  the replay runs under injected faults (fail-stop, latent sectors,
  bit flips, transients) with online repair; ``--scrub-every`` /
  ``--repair-chunks`` throttle the background repair loop;
  ``--concurrency K`` splits the trace into K disjoint stripe
  partitions and replays them through the concurrent block service.
* ``serve --family F --n N [--concurrency 1 2 4 ...]`` — closed-loop
  latency-vs-offered-load sweep: for each worker count, replay the
  trace concurrently through :class:`repro.service.BlockService` and
  print throughput plus p50/p99/mean request latency (optionally with
  ``--fault-plan`` and throttled ``--repair-every`` ticks active).
* ``scrub --family F --n N`` — populate (or open with ``--dir``) a
  store, optionally under ``--fault-plan``, and run a full scrub pass,
  printing the classification of every error found.
* ``reliability N [--mttf H] [--rebuild H] [--latent-rate R]
  [--scrub-interval H]`` — MTTDL of 1/2/3-fault arrays at this size
  (the paper's 3DFT motivation), optionally with the sector-error
  model.
* ``fleet [--code C ...] [--placement P ...] [--model M ...]`` —
  event-driven fleet simulation: shard ``--stripes`` stripes of each
  code over a rack/machine/disk ``--topology`` under correlated
  failures and contended repair bandwidth, and print per-cell data
  loss, unavailability, and repair-traffic numbers averaged over
  ``--trials`` seeded trials (the cross-product of codes, placements,
  and failure models makes one comparison table). ``--scenario FILE``
  runs a single JSON-specified cell instead.
* ``volume create|status|replay|restripe`` — the elastic volume layer:
  ``create`` builds a multi-shard volume (``--shard family:n:stripes
  [:chunk_bytes]``, repeatable) with a shared on-disk intent journal;
  ``status`` prints its shape, migration cursor, and counters;
  ``replay`` drives a seeded random byte workload through the
  concurrent :class:`~repro.service.VolumeService`; ``restripe``
  migrates the live volume to a new shard set / code family (resuming
  an interrupted migration when no ``--shard`` is given), optionally
  under concurrent foreground load.

``--log-level LEVEL`` (global) enables the ``repro`` package's
structured logging (fail/rebuild/scrub-repair/cache events).
"""

from __future__ import annotations

import argparse
import logging
import sys
import tempfile

import numpy as np

from repro.analysis import (
    partial_write_cost,
    single_write_cost,
    synthetic_write_cost,
)
from repro.codes import available_codes, make_code
from repro.codes.base import Cell
from repro.codes.registry import EVALUATED_FAMILIES
from repro.disksim import simulate_trace
from repro.reliability import ArrayReliability
from repro.traces import generate_trace, parse_csv_trace, workload_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TIP-code (DSN 2015) reproduction toolkit",
    )
    parser.add_argument(
        "--log-level", default=None,
        choices=("debug", "info", "warning", "error"),
        help="enable repro package logging at this level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list registered code families")

    layout = sub.add_parser("layout", help="render a code's element grid")
    layout.add_argument("family")
    layout.add_argument("n", type=int)

    verify = sub.add_parser("verify", help="check fault tolerance")
    verify.add_argument("family")
    verify.add_argument("n", type=int)

    cost = sub.add_parser("write-cost", help="write complexity analysis")
    cost.add_argument("family")
    cost.add_argument("n", type=int)
    cost.add_argument("--length", type=int, default=1,
                      help="consecutive elements written (default 1)")

    sim = sub.add_parser("simulate", help="trace-driven code comparison")
    sim.add_argument("workload", choices=workload_names())
    sim.add_argument("n", type=int)
    sim.add_argument("--requests", type=int, default=2000)

    replay = sub.add_parser(
        "replay", help="replay a trace against a real file-backed store"
    )
    replay.add_argument("--family", default="tip",
                        help="code family (default tip)")
    replay.add_argument("--n", type=int, default=8,
                        help="array size in disks (default 8)")
    replay.add_argument("--trace", required=True,
                        help="CSV trace path or synthetic:<workload>")
    replay.add_argument("--requests", type=int, default=1000,
                        help="request cap for synthetic traces (default 1000)")
    replay.add_argument("--stripes", type=int, default=64,
                        help="store stripes (default 64)")
    replay.add_argument("--chunk-bytes", type=int, default=4096,
                        help="chunk size in bytes (default 4096)")
    replay.add_argument("--dir", default=None,
                        help="store directory (default: a fresh tmpdir)")
    replay.add_argument("--fail", type=int, nargs="*", default=(),
                        help="disks to fail before replaying (degraded mode)")
    replay.add_argument("--cache-stripes", type=int, default=0,
                        help="write-back stripe cache capacity in stripes "
                             "(default 0 = uncached)")
    replay.add_argument("--fault-plan", default=None,
                        help="inject faults during replay, e.g. "
                             "'seed=7;fail_stop:disk=2,at_op=40;"
                             "latent:disk=1,rate=0.01;bit_flip:disk=3,at_op=25'")
    replay.add_argument("--scrub-every", type=int, default=0,
                        help="run one background repair tick every N "
                             "requests (0 = repair only on faults)")
    replay.add_argument("--repair-chunks", type=int, default=256,
                        help="chunk-I/O budget per background repair tick "
                             "(default 256)")
    replay.add_argument("--concurrency", type=int, default=1,
                        help="closed-loop workers replaying the trace "
                             "concurrently over disjoint stripe "
                             "partitions (default 1 = serial replay)")
    replay.add_argument("--batch-size", type=int, default=0,
                        help="open-loop batched replay: coalesce up to N "
                             "queued requests per dispatch and execute "
                             "them with scatter-gather span I/O "
                             "(default 0 = unbatched; excludes "
                             "--concurrency > 1)")

    serve = sub.add_parser(
        "serve",
        help="closed-loop latency-vs-load sweep over the block service",
    )
    serve.add_argument("--family", default="tip",
                       help="code family (default tip)")
    serve.add_argument("--n", type=int, default=8,
                       help="array size in disks (default 8)")
    serve.add_argument("--trace", default="synthetic:prxy_0",
                       help="CSV trace path or synthetic:<workload> "
                            "(default synthetic:prxy_0)")
    serve.add_argument("--requests", type=int, default=1000,
                       help="total requests per sweep point (default 1000)")
    serve.add_argument("--stripes", type=int, default=64,
                       help="store stripes (default 64)")
    serve.add_argument("--chunk-bytes", type=int, default=4096,
                       help="chunk size in bytes (default 4096)")
    serve.add_argument("--cache-stripes", type=int, default=0,
                       help="write-back stripe cache capacity (default 0)")
    serve.add_argument("--concurrency", type=int, nargs="+",
                       default=(1, 2, 4),
                       help="worker counts to sweep (default 1 2 4)")
    serve.add_argument("--fault-plan", default=None,
                       help="inject faults during the sweep (replay's "
                            "spec syntax); repair runs online")
    serve.add_argument("--repair-every", type=int, default=0,
                       help="one background repair tick per N completed "
                            "requests (0 = tick only on faults)")

    scrub = sub.add_parser(
        "scrub", help="scrub a store, classifying and repairing errors"
    )
    scrub.add_argument("--family", default="tip",
                       help="code family (default tip)")
    scrub.add_argument("--n", type=int, default=8,
                       help="array size in disks (default 8)")
    scrub.add_argument("--stripes", type=int, default=64,
                       help="store stripes (default 64)")
    scrub.add_argument("--chunk-bytes", type=int, default=4096,
                       help="chunk size in bytes (default 4096)")
    scrub.add_argument("--dir", default=None,
                       help="existing store directory (default: build a "
                            "fresh populated store in a tmpdir)")
    scrub.add_argument("--fault-plan", default=None,
                       help="inject faults while populating/scrubbing "
                            "(same spec syntax as replay)")
    scrub.add_argument("--batch", type=int, default=8,
                       help="stripes per scrub batch (default 8)")

    volume = sub.add_parser(
        "volume", help="multi-array volumes: create, inspect, migrate"
    )
    vsub = volume.add_subparsers(dest="volume_command", required=True)

    vcreate = vsub.add_parser(
        "create", help="create a volume over a new shard set"
    )
    vcreate.add_argument("--dir", required=True,
                         help="volume directory (created if missing)")
    vcreate.add_argument("--shard", action="append", required=True,
                         metavar="FAMILY:N:STRIPES[:CHUNK_BYTES]",
                         help="one shard's code and geometry (repeatable)")
    vcreate.add_argument("--extent-bytes", type=int, default=1 << 16,
                         help="distribution unit in bytes (default 65536)")

    vstatus = vsub.add_parser("status", help="print a volume's shape")
    vstatus.add_argument("--dir", required=True, help="volume directory")

    vreplay = vsub.add_parser(
        "replay", help="drive a seeded random workload through the volume"
    )
    vreplay.add_argument("--dir", required=True, help="volume directory")
    vreplay.add_argument("--requests", type=int, default=500,
                         help="requests to issue (default 500)")
    vreplay.add_argument("--workers", type=int, default=4,
                         help="service pool threads (default 4)")
    vreplay.add_argument("--write-fraction", type=float, default=0.5,
                         help="fraction of requests that write (default 0.5)")
    vreplay.add_argument("--max-bytes", type=int, default=16384,
                         help="largest request in bytes (default 16384)")
    vreplay.add_argument("--seed", type=int, default=42,
                         help="workload RNG seed (default 42)")

    vrestripe = vsub.add_parser(
        "restripe", help="migrate a live volume to a new shard set"
    )
    vrestripe.add_argument("--dir", required=True, help="volume directory")
    vrestripe.add_argument("--shard", action="append", default=None,
                           metavar="FAMILY:N:STRIPES[:CHUNK_BYTES]",
                           help="target shard (repeatable); omit to resume "
                                "an interrupted migration")
    vrestripe.add_argument("--extents-per-tick", type=int, default=4,
                           help="extents copied per throttle tick "
                                "(default 4)")
    vrestripe.add_argument("--requests", type=int, default=0,
                           help="concurrent foreground requests to drive "
                                "during the migration (default 0 = none)")
    vrestripe.add_argument("--workers", type=int, default=4,
                           help="service pool threads (default 4)")
    vrestripe.add_argument("--seed", type=int, default=42,
                           help="foreground workload RNG seed (default 42)")

    rel = sub.add_parser("reliability", help="MTTDL of 1/2/3-fault arrays")
    rel.add_argument("n", type=int)
    rel.add_argument("--mttf", type=float, default=1_000_000.0,
                     help="disk MTTF in hours")
    rel.add_argument("--rebuild", type=float, default=24.0,
                     help="rebuild time in hours")
    rel.add_argument("--latent-rate", type=float, default=0.0,
                     help="latent sector errors per disk-hour "
                          "(default 0 = sector model off)")
    rel.add_argument("--scrub-interval", type=float, default=0.0,
                     help="background scrub period in hours "
                          "(0 = never scrubbed)")
    rel.add_argument("--detection-fraction", type=float, default=0.5,
                     help="mean fraction of the scrub interval before "
                          "detection (default 0.5; use a measured "
                          "ScrubReport.detection_fraction)")

    fleet = sub.add_parser(
        "fleet", help="fleet-scale reliability simulation"
    )
    fleet.add_argument("--scenario", default=None,
                       help="JSON scenario file (runs this single cell; "
                            "other cell options are ignored)")
    fleet.add_argument("--code", nargs="+", default=["tip"],
                       help="code specs to compare: array families "
                            "(tip, star, cauchy-rs, ...) or locality "
                            "specs (xorbas, lrc:N:K:L); default tip")
    fleet.add_argument("--placement", nargs="+", default=["random"],
                       choices=("random", "copyset", "pss"),
                       help="placement strategies to compare "
                            "(default random)")
    fleet.add_argument("--model", nargs="+", default=["correlated"],
                       help="failure-model presets to compare "
                            "(independent, correlated; "
                            "default correlated)")
    fleet.add_argument("--topology", default="4x4x4",
                       help="cluster shape RACKSxMACHINESxDISKS "
                            "(default 4x4x4)")
    fleet.add_argument("--n", type=int, default=8,
                       help="array width for array-code families "
                            "(default 8)")
    fleet.add_argument("--stripes", type=int, default=1000,
                       help="stripes sharded over the fleet "
                            "(default 1000)")
    fleet.add_argument("--duration-years", type=float, default=10.0,
                       help="simulated horizon in years (default 10)")
    fleet.add_argument("--mttf", type=float, default=None,
                       help="override the preset disk MTTF in hours")
    fleet.add_argument("--trials", type=int, default=3,
                       help="independent seeded trials per cell "
                            "(default 3)")
    fleet.add_argument("--seed", type=int, default=0,
                       help="root seed (default 0)")
    fleet.add_argument("--chunk-mib", type=float, default=256.0,
                       help="chunk size in MiB (default 256)")
    fleet.add_argument("--disk-mib-s", type=float, default=50.0,
                       help="replacement-disk bandwidth in MiB/s "
                            "(default 50)")
    fleet.add_argument("--cross-rack-mib-s", type=float, default=200.0,
                       help="aggregate cross-rack repair bandwidth in "
                            "MiB/s (default 200)")
    return parser


def _cmd_list() -> int:
    for name in available_codes():
        print(name)
    return 0


def _cmd_layout(family: str, n: int) -> int:
    code = make_code(family, n)
    symbol = {Cell.DATA: ".", Cell.PARITY: "P", Cell.EMPTY: "-"}
    print(f"{code.name}: {code.rows} rows x {code.cols} disks, "
          f"{code.num_data} data / {code.num_parity} parity, "
          f"efficiency {code.storage_efficiency:.1%}, "
          f"tolerates {code.faults} failures")
    print("    " + " ".join(f"{c:>2d}" for c in range(code.cols)))
    for r in range(code.rows):
        row = " ".join(f" {symbol[code.kind(r, c)]}" for c in range(code.cols))
        print(f"{r:>3d} {row}")
    return 0


def _cmd_verify(family: str, n: int) -> int:
    code = make_code(family, n)
    tolerant = code.is_mds()
    print(f"{code.name}: all {code.faults}-disk failures decodable: "
          f"{'yes' if tolerant else 'NO'}")
    print(f"storage optimal (MDS): "
          f"{'yes' if code.is_storage_optimal else 'no'}")
    stripe = code.random_stripe(packet_size=64, seed=1)
    failed = tuple(range(code.faults))
    damaged = stripe.copy()
    code.erase_columns(damaged, failed)
    code.decode(damaged, failed)
    roundtrip = bool(np.array_equal(damaged, stripe))
    print(f"decode round-trip on disks {failed}: "
          f"{'ok' if roundtrip else 'FAILED'}")
    return 0 if (tolerant and roundtrip) else 1


def _cmd_write_cost(family: str, n: int, length: int) -> int:
    code = make_code(family, n)
    if length <= 1:
        cost = single_write_cost(code)
        print(f"{code.name}: single write modifies {cost:.3f} elements "
              f"on average (optimum {code.faults + 1})")
    else:
        cost = partial_write_cost(code, length)
        print(f"{code.name}: writing {length} consecutive elements "
              f"modifies {cost:.3f} elements on average")
    return 0


def _cmd_simulate(workload: str, n: int, requests: int) -> int:
    trace = generate_trace(workload, requests=requests, seed=42)
    replay = trace.stretched(4.0)
    print(f"workload {workload}, n={n}, {requests} requests")
    print(f"{'code':14s} {'elems/write':>12s} {'mean resp ms':>14s}")
    for family in EVALUATED_FAMILIES:
        try:
            code = make_code(family, n)
        except ValueError as exc:
            print(f"{family:14s} unsupported at n={n}: {exc}")
            continue
        cost = synthetic_write_cost(code, trace)
        result = simulate_trace(code, replay, seed=1)
        print(f"{family:14s} {cost:12.2f} {result.mean_response_ms:14.2f}")
    return 0


def _print_scrub_report(report) -> None:
    for finding in report.findings:
        where = (
            f"element {finding.position}" if finding.position is not None
            else "unlocated"
        )
        outcome = "fixed" if finding.fixed else "NOT FIXED"
        detail = f" ({finding.detail})" if finding.detail else ""
        print(f"  stripe {finding.stripe:4d}: {finding.kind:10s} {where} "
              f"-> {outcome}{detail}")
    print(f"scrub: {report.summary()}")
    fraction = report.detection_fraction()
    if fraction is not None:
        print(f"scrub: mean detection at {fraction:.1%} of a scan pass "
              f"(feeds reliability --detection-fraction)")


def _cmd_replay(args: argparse.Namespace) -> int:
    from repro.raid import BlockDevice
    from repro.store import ArrayStore

    if args.trace.startswith("synthetic:"):
        workload = args.trace.split(":", 1)[1]
        if workload not in workload_names():
            raise ValueError(
                f"unknown workload {workload!r}; pick one of {workload_names()}"
            )
        trace = generate_trace(workload, requests=args.requests, seed=42)
    else:
        trace = parse_csv_trace(args.trace)
    code = make_code(args.family, args.n)
    stats = trace.stats()
    print(f"trace {trace.name}: {stats.requests} requests over "
          f"{stats.duration_s:.1f} s, {stats.iops:.1f} IOPS, "
          f"{stats.write_fraction:.1%} writes, "
          f"avg {stats.avg_request_kb:.2f} KB")
    if args.concurrency < 1:
        raise ValueError("--concurrency must be >= 1")
    if args.batch_size < 0:
        raise ValueError("--batch-size must be >= 0")
    if args.batch_size and args.concurrency > 1:
        raise ValueError("--batch-size and --concurrency are exclusive: "
                         "batched replay is open-loop single-submitter")
    plan = None
    repair = None
    scrub_report = None
    with tempfile.TemporaryDirectory(prefix="repro-replay-") as tmpdir:
        store = ArrayStore(
            code,
            args.dir if args.dir else tmpdir,
            stripes=args.stripes,
            chunk_bytes=args.chunk_bytes,
            cache_stripes=args.cache_stripes,
        )
        with store:
            for disk in args.fail:
                store.fail_disk(disk)
            if args.fault_plan:
                from repro.faults import FaultPlan, RepairController

                plan = FaultPlan.parse(args.fault_plan)
                store.set_fault_plan(plan)
                repair = RepairController(
                    store, max_chunks_per_tick=args.repair_chunks
                )
            device = BlockDevice(store)
            print(f"replaying on {code.name} (n={code.n}, {store.stripes} "
                  f"stripes x {store.chunk_bytes} B chunks, "
                  f"{device.capacity_bytes // 1024} KiB capacity"
                  + (f", failed disks {tuple(args.fail)}" if args.fail else "")
                  + (f", cache {args.cache_stripes} stripes"
                     if args.cache_stripes else "")
                  + (", fault injection on" if plan else "")
                  + (f", {args.concurrency} workers"
                     if args.concurrency > 1 else "")
                  + (f", batch size {args.batch_size}"
                     if args.batch_size else "")
                  + ")")
            if args.batch_size:
                from repro.service import replay_batched

                result = replay_batched(
                    store,
                    trace,
                    batch_size=args.batch_size,
                    repair=repair,
                    repair_every=args.scrub_every,
                )
            elif args.concurrency > 1:
                from repro.service import replay_concurrent, split_disjoint

                result = replay_concurrent(
                    store,
                    split_disjoint(trace, args.concurrency, store),
                    repair=repair,
                    repair_every=args.scrub_every,
                )
            else:
                result = device.replay(
                    trace, repair=repair, scrub_every=args.scrub_every
                )
            if repair is not None:
                # Close the loop: a final full scrub pass proves the
                # array came out of the faulty replay consistent.
                repair.scrubber.reset()
                scrub_report = repair.scrubber.run()
    io = result.io
    print(f"requests: {result.reads} reads ({result.bytes_read} B), "
          f"{result.writes} writes ({result.bytes_written} B)")
    print(f"data chunks:   {io.data_chunks_read:8d} read "
          f"{io.data_chunks_written:8d} written")
    print(f"parity chunks: {io.parity_chunks_read:8d} read "
          f"{io.parity_chunks_written:8d} written")
    if args.batch_size:
        print(f"batched replay: {result.batches} batches of up to "
              f"{result.batch_size}, "
              f"{result.syscalls_per_request:.2f} syscalls/request, "
              f"p99 {result.p99_latency_ms:.3f} ms, "
              f"{result.throughput_iops:.0f} req/s "
              f"({result.elapsed_s:.2f} s wall)")
    elif args.concurrency > 1:
        print(f"latency over {result.workers} closed-loop workers: "
              f"p50 {result.p50_latency_ms:.3f} ms, "
              f"p99 {result.p99_latency_ms:.3f} ms, "
              f"{result.throughput_iops:.0f} req/s "
              f"({result.elapsed_s:.2f} s wall)")
    else:
        print(f"measured avg chunk I/Os: "
              f"{result.chunks_per_write:.2f} per write, "
              f"{result.chunks_per_read:.2f} per read")
    if result.cache is not None:
        cache = result.cache
        amortization = cache.parity_write_amortization_or_none
        print(f"cache: {cache.hit_rate:.1%} hit rate "
              f"({cache.hits}/{cache.lookups} chunk lookups), "
              f"{cache.flushes} flushes, {cache.evictions} evictions")
        print(f"cache raw vs coalesced chunk I/Os: "
              f"{cache.raw_io.total_chunks} -> {cache.io.total_chunks} "
              f"({cache.chunk_ios_saved} saved)")
        print(f"parity writes: {cache.raw_io.parity_chunks_written} uncached "
              f"-> {cache.io.parity_chunks_written} coalesced "
              + (f"(amortization {amortization:.2f}x)"
                 if amortization is not None
                 else "(amortization n/a: nothing flushed yet)"))
    if plan is not None:
        stats = plan.stats
        print(f"faults injected: {stats.fail_stops} fail-stops, "
              f"{stats.latent_minted} latent sectors, "
              f"{stats.flips_minted} bit flips, "
              f"{stats.transient_retries} transient retries")
        rs = result.repair
        print(f"repair: {rs.fail_stops_handled} fail-stops handled, "
              f"{rs.latent_handled} latent repairs, "
              f"{rs.stripes_rebuilt} stripes rebuilt "
              f"({rs.rebuilds_completed} rebuilds), "
              f"{result.retried_requests} requests retried, "
              f"{rs.rebuild_io.total_chunks} repair chunk I/Os")
        if scrub_report is not None:
            _print_scrub_report(scrub_report)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import replay_concurrent, split_disjoint
    from repro.store import ArrayStore

    if args.trace.startswith("synthetic:"):
        workload = args.trace.split(":", 1)[1]
        if workload not in workload_names():
            raise ValueError(
                f"unknown workload {workload!r}; pick one of {workload_names()}"
            )
        trace = generate_trace(workload, requests=args.requests, seed=42)
    else:
        trace = parse_csv_trace(args.trace)
    code = make_code(args.family, args.n)
    levels = sorted(set(args.concurrency))
    if levels[0] < 1:
        raise ValueError("--concurrency levels must be >= 1")
    print(f"service sweep on {code.name} (n={code.n}, {args.stripes} "
          f"stripes x {args.chunk_bytes} B chunks, trace {trace.name}, "
          f"{len(trace)} requests"
          + (f", cache {args.cache_stripes} stripes"
             if args.cache_stripes else "")
          + (", fault injection on" if args.fault_plan else "")
          + (f", repair tick every {args.repair_every} requests"
             if args.repair_every else "")
          + ")")
    print(f"{'workers':>7s} {'req/s':>9s} {'p50 ms':>9s} {'p99 ms':>9s} "
          f"{'mean ms':>9s} {'retries':>7s} {'ticks':>6s}")
    for workers in levels:
        repair = None
        with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmpdir:
            with ArrayStore(
                code,
                tmpdir,
                stripes=args.stripes,
                chunk_bytes=args.chunk_bytes,
                cache_stripes=args.cache_stripes,
            ) as store:
                if args.fault_plan:
                    from repro.faults import FaultPlan, RepairController

                    store.set_fault_plan(FaultPlan.parse(args.fault_plan))
                    repair = RepairController(store)
                result = replay_concurrent(
                    store,
                    split_disjoint(trace, workers, store),
                    repair=repair,
                    repair_every=args.repair_every,
                )
        print(f"{result.workers:7d} {result.throughput_iops:9.0f} "
              f"{result.p50_latency_ms:9.3f} {result.p99_latency_ms:9.3f} "
              f"{result.mean_latency_ms:9.3f} {result.retried_requests:7d} "
              f"{result.repair_ticks:6d}")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    from repro.faults import FaultError, FaultPlan, RepairController, Scrubber
    from repro.store import ArrayStore

    code = make_code(args.family, args.n)
    plan = FaultPlan.parse(args.fault_plan) if args.fault_plan else None
    with tempfile.TemporaryDirectory(prefix="repro-scrub-") as tmpdir:
        store = ArrayStore(
            code,
            args.dir if args.dir else tmpdir,
            stripes=args.stripes,
            chunk_bytes=args.chunk_bytes,
            fault_plan=plan,
        )
        with store:
            repair = RepairController(store)
            if args.dir is None:
                # Demo store: deterministic payload so faults injected
                # while writing are real, detectable damage.
                pattern = (
                    np.arange(store.capacity_bytes, dtype=np.int64) % 251
                ).astype(np.uint8).reshape(-1, store.chunk_bytes)
                for chunk in range(0, store.capacity_chunks, code.num_data):
                    batch = pattern[chunk : chunk + code.num_data]
                    for attempt in range(4):
                        try:
                            store.write_chunks(chunk, batch)
                            break
                        except FaultError as exc:
                            if not repair.handle_fault(exc):
                                raise
                repair.drain()
            print(f"scrubbing {code.name} (n={code.n}, {store.stripes} "
                  f"stripes x {store.chunk_bytes} B chunks"
                  + (", fault injection on" if plan else "") + ")")
            scrubber = Scrubber(store, batch_stripes=args.batch)
            report = scrubber.run()
    _print_scrub_report(report)
    return 0 if report.unfixable == 0 else 1


def _parse_shard_spec(text: str):
    from repro.volume import ShardSpec

    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise ValueError(
            f"shard spec {text!r} is not FAMILY:N:STRIPES[:CHUNK_BYTES]"
        )
    family = parts[0]
    try:
        numbers = [int(part) for part in parts[1:]]
    except ValueError:
        raise ValueError(
            f"shard spec {text!r} has a non-integer field"
        ) from None
    n, stripes = numbers[0], numbers[1]
    chunk_bytes = numbers[2] if len(numbers) == 3 else 4096
    make_code(family, n)  # validate family/n before building anything
    return ShardSpec(family, n, stripes=stripes, chunk_bytes=chunk_bytes)


def _print_volume_status(status) -> None:
    print(f"volume {status.directory}: "
          f"{status.volume_bytes // 1024} KiB over {len(status.shards)} "
          f"shard(s), {status.total_extents} x "
          f"{status.extent_bytes} B extents")
    for entry in status.shards:
        print(f"  shard {entry['uid']:3d}: {entry['family']} n={entry['n']} "
              f"{entry['stripes']} stripes x {entry['chunk_bytes']} B chunks")
    if status.restripe_active:
        print(f"  restripe in flight: extent {status.restripe_cursor}"
              f"/{status.total_extents} -> "
              + ", ".join(
                  f"{e['family']} n={e['n']}" for e in status.restripe_target
              ))
    if status.failed_disks:
        for uid, disks in sorted(status.failed_disks.items()):
            print(f"  shard {uid:3d}: FAILED disks {disks}")
    io = status.io
    print(f"  chunk I/O: {io.chunks_read} read, {io.chunks_written} written "
          f"({io.parity_chunks_written} parity)")


def _volume_workload(service, requests, write_fraction, max_bytes, seed):
    """Issue a seeded random byte workload through the service pool."""
    rng = np.random.default_rng(seed)
    capacity = service.capacity_bytes
    futures = []
    for _ in range(requests):
        length = int(rng.integers(1, min(max_bytes, capacity) + 1))
        offset = int(rng.integers(0, capacity - length + 1))
        if rng.random() < write_fraction:
            payload = rng.integers(0, 256, length, dtype=np.uint8)
            futures.append(service.submit_write(offset, payload))
        else:
            futures.append(service.submit_read(offset, length))
    for future in futures:
        future.result()


def _cmd_volume(args: argparse.Namespace) -> int:
    from repro.service import VolumeService
    from repro.volume import VolumeManager

    if args.volume_command == "create":
        specs = [_parse_shard_spec(text) for text in args.shard]
        with VolumeManager.create(
            args.dir, specs, extent_bytes=args.extent_bytes
        ) as vol:
            _print_volume_status(vol.status())
        return 0

    if args.volume_command == "status":
        with VolumeManager.open(args.dir) as vol:
            _print_volume_status(vol.status())
        return 0

    if args.volume_command == "replay":
        with VolumeManager.open(args.dir) as vol:
            service = VolumeService(vol, workers=args.workers)
            _volume_workload(
                service, args.requests, args.write_fraction,
                args.max_bytes, args.seed,
            )
            stats = service.stats
            print(f"{stats.requests} requests ({stats.reads} reads, "
                  f"{stats.writes} writes) over {args.workers} workers: "
                  f"p50 {stats.p50_latency_ms:.3f} ms, "
                  f"p99 {stats.p99_latency_ms:.3f} ms, "
                  f"mean {stats.mean_latency_ms:.3f} ms")
            service.close()
        return 0

    if args.volume_command == "restripe":
        specs = (
            [_parse_shard_spec(text) for text in args.shard]
            if args.shard else None
        )
        with VolumeManager.open(args.dir) as vol:
            if specs is None and not vol.restriping:
                raise ValueError(
                    "no --shard given and no interrupted migration to resume"
                )
            service = VolumeService(vol, workers=args.workers)
            service.start_restripe(
                specs, extents_per_tick=args.extents_per_tick
            )
            if args.requests:
                _volume_workload(service, args.requests, 0.5, 16384, args.seed)
            result = service.join_restripe()
            print(f"restriped {result.extents_copied} extents "
                  f"({result.bytes_copied // 1024} KiB) in "
                  f"{result.ticks} tick(s), "
                  f"{result.io.total_chunks} migration chunk I/Os")
            if args.requests:
                stats = service.stats
                print(f"foreground during migration: {stats.requests} "
                      f"requests, p50 {stats.p50_latency_ms:.3f} ms, "
                      f"p99 {stats.p99_latency_ms:.3f} ms")
            findings = vol.scrub()
            if findings:
                print(f"scrub found damage after restripe: {findings}")
                service.close()
                return 1
            print("scrub clean")
            _print_volume_status(vol.status())
            service.close()
        return 0

    raise AssertionError("unreachable")  # pragma: no cover


def _cmd_reliability(args: argparse.Namespace) -> int:
    n, mttf, rebuild = args.n, args.mttf, args.rebuild
    print(f"{n}-disk array, disk MTTF {mttf:.0f} h, rebuild {rebuild:.0f} h"
          + (f", latent rate {args.latent_rate:g}/disk-h, scrub every "
             f"{args.scrub_interval:g} h" if args.latent_rate else ""))
    print(f"{'tolerance':>10s} {'MTTDL (years)':>16s} {'P(loss)/year':>14s}")
    for faults, label in ((1, "RAID-5"), (2, "RAID-6"), (3, "3DFT")):
        model = ArrayReliability(
            disks=n, faults_tolerated=faults,
            disk_mttf_hours=mttf, rebuild_hours=rebuild,
            latent_error_rate=args.latent_rate,
            scrub_interval_hours=args.scrub_interval,
            latent_detection_fraction=args.detection_fraction,
        )
        print(f"{label:>10s} {model.mttdl_years():16.3e} "
              f"{model.annual_loss_probability():14.3e}")
    return 0


def _cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import FleetScenario, load_scenario, run_fleet_trials

    if args.trials < 1:
        raise ValueError("--trials must be >= 1")
    if args.scenario:
        cells = [load_scenario(args.scenario)]
    else:
        cells = [
            FleetScenario(
                topology=args.topology,
                code=code,
                n=args.n,
                placement=placement,
                failure_model=model,
                mttf_hours=args.mttf,
                stripes=args.stripes,
                duration_hours=args.duration_years * 24 * 365,
                chunk_mib=args.chunk_mib,
                disk_mib_s=args.disk_mib_s,
                cross_rack_mib_s=args.cross_rack_mib_s,
                seed=args.seed,
            )
            for code in args.code
            for placement in args.placement
            for model in args.model
        ]
    first = cells[0]
    print(f"fleet {first.topology} ({args.trials} trials/cell, "
          f"{first.stripes} stripes, "
          f"{first.duration_hours / (24 * 365):.1f} years, "
          f"seed {first.seed})")
    print(f"{'cell':32s} {'loss-trials':>11s} {'P(stripe loss)':>14s} "
          f"{'unavail':>10s} {'repair h':>9s} {'x-rack GiB':>11s}")
    for scenario in cells:
        summary = run_fleet_trials(scenario, trials=args.trials)
        print(f"{scenario.cell_label():32s} "
              f"{summary.loss_trial_fraction:11.2f} "
              f"{summary.mean_loss_probability:14.3e} "
              f"{summary.mean_unavailability:10.3e} "
              f"{summary.mean_repair_hours:9.2f} "
              f"{summary.mean_cross_rack_read_mib / 1024:11.1f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.log_level:
        logging.basicConfig(
            format="%(levelname)s %(name)s: %(message)s",
        )
        logging.getLogger("repro").setLevel(args.log_level.upper())
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "layout":
            return _cmd_layout(args.family, args.n)
        if args.command == "verify":
            return _cmd_verify(args.family, args.n)
        if args.command == "write-cost":
            return _cmd_write_cost(args.family, args.n, args.length)
        if args.command == "simulate":
            return _cmd_simulate(args.workload, args.n, args.requests)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "scrub":
            return _cmd_scrub(args)
        if args.command == "volume":
            return _cmd_volume(args)
        if args.command == "reliability":
            return _cmd_reliability(args)
        if args.command == "fleet":
            return _cmd_fleet(args)
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
