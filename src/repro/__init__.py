"""repro — a full reproduction of TIP-code (DSN 2015).

TIP-code is an XOR-based MDS array code tolerating triple disk failures
with *optimal update complexity*: every single-element write modifies
exactly three parity elements (one horizontal, one diagonal, one
anti-diagonal), because the three parity families are mutually
independent. This package implements TIP-code, every baseline the paper
compares against (STAR, Triple-Star, Cauchy-RS, HDD1, plus EVENODD/RDP/
classic RS substrates), and the full evaluation pipeline: write-cost
analysis, trace workloads, a disk-array simulator, and packet-level
throughput measurement.

Quickstart::

    import repro

    code = repro.make_code("tip", n=12)       # 12-disk TIP array
    stripe = code.random_stripe(packet_size=4096, seed=7)
    code.erase_columns(stripe, (1, 4, 9))     # three disks die
    code.decode(stripe, (1, 4, 9))            # fully recovered

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.codes import (
    ArrayCode,
    Cell,
    Decoder,
    available_codes,
    make_code,
    shorten,
)
from repro.codes.cauchy import CauchyRSCode, make_cauchy_rs
from repro.codes.evenodd import EvenOddCode, make_evenodd
from repro.codes.hdd1 import Hdd1Code, make_hdd1
from repro.codes.rdp import RdpCode, make_rdp
from repro.codes.reed_solomon import ReedSolomonCode
from repro.codes.star import StarCode, make_star
from repro.codes.tip import TipAlgebraicDecoder, TipCode, make_tip
from repro.codes.triple_star import TripleStarCode, make_triple_star
from repro.codes.weaver import WeaverCode, make_weaver
from repro.codes.xcode import XCode, make_xcode

__version__ = "1.0.0"

__all__ = [
    "ArrayCode",
    "Cell",
    "Decoder",
    "available_codes",
    "make_code",
    "shorten",
    "TipCode",
    "TipAlgebraicDecoder",
    "make_tip",
    "StarCode",
    "make_star",
    "TripleStarCode",
    "make_triple_star",
    "CauchyRSCode",
    "make_cauchy_rs",
    "Hdd1Code",
    "make_hdd1",
    "EvenOddCode",
    "make_evenodd",
    "RdpCode",
    "make_rdp",
    "ReedSolomonCode",
    "XCode",
    "make_xcode",
    "WeaverCode",
    "make_weaver",
    "__version__",
]
