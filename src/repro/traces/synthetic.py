"""Synthetic trace generators calibrated to the paper's Table III.

The six workloads (four MSR Cambridge volumes, two Financial OLTP traces)
are regenerated as seeded synthetic traces matching the published
statistics:

========== ============ ======= ========= ==============
workload   requests(M)  IOPS    write %   avg req (KB)
========== ============ ======= ========= ==============
financial_1   5.33      122.00    76.84      3.38
financial_2   3.70       90.24    17.66      2.39
prxy_0       12.52      207.60    96.94      4.76
src2_0        1.56       22.29    88.66      7.21
stg_0         2.03       33.58    84.81     11.57
usr_0         2.24       37.00    59.58     22.67
========== ============ ======= ========= ==============

Request sizes follow a sector-aligned lognormal whose location parameter
is solved numerically so the post-rounding mean matches the published
average; arrivals are Poisson at the published IOPS; offsets mix a hot
region (80 % of requests to 20 % of the volume) with a uniform spray,
which reproduces the mix of isolated single-chunk writes and longer
sequential runs that drives the partial-stripe behaviour of Fig. 12.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.traces.model import SECTOR, Trace, TraceRequest

__all__ = ["WorkloadSpec", "TABLE3_WORKLOADS", "generate_trace", "workload_names"]

MAX_REQUEST_BYTES = 512 * 1024
"""Cap on a single request's size (block layers split larger I/Os)."""


@dataclass(frozen=True)
class WorkloadSpec:
    """Published statistics of one Table III workload."""

    name: str
    total_requests: int
    iops: float
    write_fraction: float
    avg_request_kb: float
    sequential_fraction: float = 0.25
    volume_gb: float = 16.0


TABLE3_WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec("financial_1", 5_330_000, 122.00, 0.7684, 3.38,
                     sequential_fraction=0.10),
        WorkloadSpec("financial_2", 3_700_000, 90.24, 0.1766, 2.39,
                     sequential_fraction=0.10),
        WorkloadSpec("prxy_0", 12_520_000, 207.60, 0.9694, 4.76,
                     sequential_fraction=0.30),
        WorkloadSpec("src2_0", 1_560_000, 22.29, 0.8866, 7.21,
                     sequential_fraction=0.35),
        WorkloadSpec("stg_0", 2_030_000, 33.58, 0.8481, 11.57,
                     sequential_fraction=0.45),
        WorkloadSpec("usr_0", 2_240_000, 37.00, 0.5958, 22.67,
                     sequential_fraction=0.55),
    )
}


def workload_names() -> list[str]:
    """Names of the built-in Table III workloads."""
    return sorted(TABLE3_WORKLOADS)


def _solve_lognormal_mu(target_bytes: float, sigma: float) -> float:
    """Find mu so the sector-rounded, capped lognormal has the target mean.

    Monotone in mu, so bisection converges quickly; the integral is
    evaluated by sampling a fixed quasi-random grid (deterministic).
    """
    quantiles = (np.arange(1, 4001) - 0.5) / 4000.0
    normal = np.sqrt(2.0) * _erfinv(2.0 * quantiles - 1.0)

    def rounded_mean(mu: float) -> float:
        raw = np.exp(mu + sigma * normal)
        rounded = np.ceil(raw / SECTOR) * SECTOR
        return float(np.minimum(rounded, MAX_REQUEST_BYTES).mean())

    lo, hi = math.log(SECTOR / 4), math.log(MAX_REQUEST_BYTES)
    for _ in range(60):
        mid = (lo + hi) / 2
        if rounded_mean(mid) < target_bytes:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def _erfinv(y: np.ndarray) -> np.ndarray:
    """Vectorized inverse error function (Winitzki's approximation refined
    by one Newton step) — avoids a scipy dependency in the core library."""
    y = np.clip(y, -0.999999, 0.999999)
    a = 0.147
    ln_term = np.log1p(-y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = np.sign(y) * np.sqrt(np.sqrt(first * first - ln_term / a) - first)
    # Newton refinement: f(x) = erf(x) - y (math.erf is scalar-only)
    erf = np.vectorize(math.erf)
    for _ in range(2):
        x = x - (erf(x) - y) * math.sqrt(math.pi) / 2.0 * np.exp(x * x)
    return x


def generate_trace(
    workload: str | WorkloadSpec,
    requests: int = 20_000,
    seed: int = 0,
    size_sigma: float = 1.0,
) -> Trace:
    """Generate a seeded synthetic trace for a Table III workload.

    Args:
        workload: a built-in workload name or a custom spec.
        requests: number of requests to generate (the published request
            counts are in the millions; the statistics are stationary, so
            a 10^4-10^5 prefix reproduces the same write-cost averages).
        seed: RNG seed; identical inputs give identical traces.
        size_sigma: lognormal shape of the request-size distribution.
    """
    spec = (
        TABLE3_WORKLOADS[workload] if isinstance(workload, str) else workload
    )
    if requests <= 0:
        raise ValueError("requests must be positive")
    rng = np.random.default_rng(seed)
    mu = _solve_lognormal_mu(spec.avg_request_kb * 1024.0, size_sigma)

    # Arrivals: Poisson process at the published IOPS.
    gaps = rng.exponential(1.0 / spec.iops, size=requests)
    timestamps = np.cumsum(gaps)

    # Sizes: sector-rounded lognormal, capped.
    raw = rng.lognormal(mean=mu, sigma=size_sigma, size=requests)
    lengths = np.minimum(
        np.ceil(raw / SECTOR).astype(np.int64) * SECTOR, MAX_REQUEST_BYTES
    )

    # Direction: Bernoulli at the published write fraction.
    is_write = rng.random(requests) < spec.write_fraction

    # Offsets: 80/20 hot region plus sequential runs. A sequential request
    # continues where the previous one on the same "stream" ended.
    volume_bytes = int(spec.volume_gb * (1 << 30))
    volume_sectors = volume_bytes // SECTOR
    hot_sectors = max(volume_sectors // 5, 1)
    offsets = np.empty(requests, dtype=np.int64)
    stream_position = rng.integers(0, volume_sectors) * SECTOR
    sequential = rng.random(requests) < spec.sequential_fraction
    hot = rng.random(requests) < 0.8
    random_sectors = rng.integers(0, volume_sectors, size=requests)
    hot_offsets = (random_sectors % hot_sectors) * SECTOR
    cold_offsets = random_sectors * SECTOR
    for index in range(requests):
        if sequential[index]:
            offsets[index] = stream_position % volume_bytes
        else:
            offsets[index] = (
                hot_offsets[index] if hot[index] else cold_offsets[index]
            )
        stream_position = offsets[index] + lengths[index]

    trace_requests = [
        TraceRequest(
            timestamp=float(timestamps[i]),
            offset=int(offsets[i]),
            length=int(lengths[i]),
            is_write=bool(is_write[i]),
        )
        for i in range(requests)
    ]
    return Trace(spec.name, trace_requests)
