"""Block I/O trace infrastructure.

The paper evaluates synthetic write complexity on the MSR Cambridge
traces [24] and response time on the UMass/SPC Financial traces [12].
Neither trace set ships with this repository (they are external
artifacts), so :mod:`repro.traces.synthetic` generates statistically
matched substitutes: each generator reproduces the published Table III
statistics (write fraction, average request length, IOPS) with realistic
request-size and spatial-locality distributions. The analysis and
simulation layers consume the same :class:`~repro.traces.model.TraceRequest`
records either way, so real traces can be dropped in via
:func:`~repro.traces.model.parse_csv_trace`.
"""

from repro.traces.model import Trace, TraceRequest, TraceStats, parse_csv_trace
from repro.traces.synthetic import (
    TABLE3_WORKLOADS,
    WorkloadSpec,
    generate_trace,
    workload_names,
)

__all__ = [
    "Trace",
    "TraceRequest",
    "TraceStats",
    "parse_csv_trace",
    "TABLE3_WORKLOADS",
    "WorkloadSpec",
    "generate_trace",
    "workload_names",
]
