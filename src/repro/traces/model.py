"""Trace records, aggregate statistics, and CSV parsing.

A trace is an ordered sequence of block I/O requests. Offsets and lengths
are in bytes; timestamps in seconds from trace start. The model is
deliberately minimal — exactly the fields the write-cost analysis
(Fig. 12) and the disk-array simulator (Fig. 13) need.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["TraceRequest", "Trace", "TraceStats", "parse_csv_trace"]

SECTOR = 512
"""Block device sector size in bytes; offsets/lengths align to it."""


@dataclass(frozen=True)
class TraceRequest:
    """One block I/O request."""

    timestamp: float
    offset: int
    length: int
    is_write: bool

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise ValueError(f"negative timestamp {self.timestamp}")
        if self.offset < 0:
            raise ValueError(f"negative offset {self.offset}")
        if self.length <= 0:
            raise ValueError(f"non-positive length {self.length}")


@dataclass
class TraceStats:
    """Aggregate statistics in the units of the paper's Table III."""

    requests: int
    duration_s: float
    iops: float
    write_fraction: float
    avg_request_kb: float


class Trace:
    """An ordered sequence of :class:`TraceRequest`, with statistics."""

    def __init__(self, name: str, requests: list[TraceRequest]) -> None:
        if not requests:
            raise ValueError("a trace needs at least one request")
        self.name = name
        self.requests = sorted(requests, key=lambda r: r.timestamp)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self):
        return iter(self.requests)

    @property
    def writes(self) -> list[TraceRequest]:
        """The write requests, in order."""
        return [r for r in self.requests if r.is_write]

    def stats(self) -> TraceStats:
        """Compute Table III-style statistics for this trace.

        A degenerate trace (single request, or every request at t=0) has
        no measurable duration: it reports ``iops=0.0`` rather than the
        absurd rate a clamped division would invent.
        """
        count = len(self.requests)
        duration = self.requests[-1].timestamp
        writes = sum(1 for r in self.requests if r.is_write)
        total_bytes = sum(r.length for r in self.requests)
        return TraceStats(
            requests=count,
            duration_s=duration,
            iops=count / duration if duration > 0 else 0.0,
            write_fraction=writes / count,
            avg_request_kb=total_bytes / count / 1024.0,
        )

    def scaled(self, max_requests: int) -> "Trace":
        """A prefix of the trace with at most ``max_requests`` requests.

        Used to run the full-size workload definitions at laptop scale;
        the statistical properties are stationary by construction of the
        synthetic generators.
        """
        if max_requests <= 0:
            raise ValueError("max_requests must be positive")
        return Trace(self.name, self.requests[:max_requests])

    def stretched(self, factor: float) -> "Trace":
        """The same requests replayed at ``1/factor`` of the arrival rate.

        Response-time simulations use this to keep the simulated array at
        moderate utilization when the modeled disks are slower than the
        hardware a trace was captured on: saturation makes queueing delays
        diverge and code-to-code ratios meaningless.
        """
        if factor <= 0:
            raise ValueError("factor must be positive")
        return Trace(
            self.name,
            [
                TraceRequest(
                    timestamp=r.timestamp * factor,
                    offset=r.offset,
                    length=r.length,
                    is_write=r.is_write,
                )
                for r in self.requests
            ],
        )


def _looks_like_header(fields: list[str]) -> bool:
    """True when the numeric columns of a CSV row aren't numeric —
    i.e. the row is a column-name header, not a request.

    A row with too few fields is *not* a header: it falls through to the
    field-count check so truncated data lines are reported, not skipped.
    """
    if len(fields) < 6:
        return False
    try:
        int(fields[2])
        float(fields[5])
    except ValueError:
        return True
    return False


def parse_csv_trace(path: str | Path, name: str | None = None) -> Trace:
    """Parse a trace in the UMass/SPC-style CSV format.

    Expected columns per line:
    ``application_id, device_id, offset_sectors, length_sectors, opcode,
    timestamp_s`` — ``opcode`` is ``r``/``R`` or ``w``/``W``. Extra
    columns are ignored. Blank lines and ``#`` comments are skipped, as
    is a leading column-name header row (first content line whose
    numeric fields aren't numeric). Malformed lines raise ValueError
    naming the file and line: ``trace.csv:17: ...``.
    """
    path = Path(path)
    requests: list[TraceRequest] = []
    first_content_line = True
    with path.open() as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = [f.strip() for f in line.split(",")]
            if first_content_line:
                first_content_line = False
                if _looks_like_header(fields):
                    continue
            if len(fields) < 6:
                raise ValueError(
                    f"{path.name}:{lineno}: expected >= 6 fields, "
                    f"got {len(fields)}"
                )
            try:
                offset = int(fields[2]) * SECTOR
                length = int(fields[3]) * SECTOR
                opcode = fields[4].lower()
                timestamp = float(fields[5])
            except ValueError as exc:
                raise ValueError(f"{path.name}:{lineno}: {exc}") from exc
            if opcode not in ("r", "w"):
                raise ValueError(
                    f"{path.name}:{lineno}: bad opcode {fields[4]!r}"
                )
            try:
                requests.append(
                    TraceRequest(
                        timestamp=timestamp,
                        offset=offset,
                        length=max(length, SECTOR),
                        is_write=opcode == "w",
                    )
                )
            except ValueError as exc:
                raise ValueError(f"{path.name}:{lineno}: {exc}") from exc
    if not requests:
        raise ValueError(f"{path.name}: no requests found in trace")
    return Trace(name or path.stem, requests)
