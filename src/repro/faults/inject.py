"""Deterministic fault injection at the disk-span I/O boundary.

The unit of injection is one *span I/O*: every read or write the store
issues against a backing file passes through
:class:`FaultyDiskBackend`, which consults a :class:`FaultPlan` before
touching the bytes. Four failure modes are modeled, matching the mixed
failure model of the SD-codes line of work (whole-disk loss combined
with sector-level defects):

* **fail-stop** — the disk stops answering: every subsequent I/O raises
  :class:`FailStopError` until :meth:`FaultPlan.replace_disk` models a
  drive swap;
* **latent sector error** — a specific chunk becomes unreadable
  (:class:`LatentSectorError` on any read covering it); a write to the
  chunk remaps the sector and clears the error, exactly like a real
  drive's reallocation;
* **silent bit-flip corruption** — the *stored* bytes of a chunk are
  flipped without any error: reads succeed and return wrong data until a
  scrub locates the damage through the parity syndromes;
* **transient I/O error** — the operation fails but an immediate retry
  succeeds; the backend retries internally up to
  :attr:`FaultPlan.max_retries` times before surfacing
  :class:`TransientIOError`.

Every rule is deterministic: triggers are either positional (the disk's
``at_op``-th span I/O), rate-based (a per-chunk Bernoulli draw from the
plan's seeded RNG), or contextual (``during="rebuild"`` fires only
inside :meth:`FaultPlan.phase`), so a seeded plan replayed against the
same request sequence injects byte-identical faults. The plan records
every injected fault in :attr:`FaultPlan.injected` as ground truth for
cross-validating what the scrubber later detects.
"""

from __future__ import annotations

import logging
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random
from typing import Callable, Iterator

__all__ = [
    "FaultError",
    "FailStopError",
    "FaultPlan",
    "FaultRule",
    "FaultStats",
    "FaultyDiskBackend",
    "InjectedFault",
    "LatentSectorError",
    "TransientIOError",
]

logger = logging.getLogger(__name__)

#: Valid ``FaultRule.kind`` values.
FAULT_KINDS = ("fail_stop", "latent", "bit_flip", "transient")


class FaultError(IOError):
    """Base class of all injected I/O failures."""

    def __init__(self, disk: int, message: str) -> None:
        super().__init__(message)
        self.disk = disk


class FailStopError(FaultError):
    """The disk has fail-stopped: no I/O succeeds until it is replaced."""

    def __init__(self, disk: int) -> None:
        super().__init__(disk, f"disk {disk} fail-stopped")


class LatentSectorError(FaultError):
    """A read covered an unreadable chunk (``lba`` is a chunk LBA)."""

    def __init__(self, disk: int, lba: int) -> None:
        super().__init__(
            disk, f"latent sector error on disk {disk} chunk {lba}"
        )
        self.lba = lba


class TransientIOError(FaultError):
    """An I/O failed transiently and exhausted the internal retries."""

    def __init__(self, disk: int) -> None:
        super().__init__(disk, f"transient I/O error on disk {disk}")


@dataclass
class FaultRule:
    """One injection rule.

    Args:
        kind: one of :data:`FAULT_KINDS`.
        disk: the disk the rule applies to.
        rate: per-chunk (latent/bit_flip) or per-op (transient)
            Bernoulli probability; 0 makes the rule trigger-based.
        at_op: fire on the disk's ``at_op``-th span I/O (1-based).
            Trigger-based rules with no ``at_op`` fire on the first
            qualifying access.
        lba: restrict to one chunk LBA or an inclusive ``(lo, hi)``
            range; for trigger-based latent/bit_flip rules this is also
            where the fault is minted.
        during: only fire inside a matching :meth:`FaultPlan.phase`
            (e.g. ``"rebuild"``); ``None`` fires in any context.
        count: maximum number of faults this rule mints (``None`` =
            unlimited for rate rules; trigger-based rules always fire
            once).
    """

    kind: str
    disk: int
    rate: float = 0.0
    at_op: int | None = None
    lba: int | tuple[int, int] | None = None
    during: str | None = None
    count: int | None = None
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.disk < 0:
            raise ValueError("disk must be >= 0")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.at_op is not None and self.at_op < 1:
            raise ValueError("at_op is 1-based; must be >= 1")
        if self.rate == 0.0 and self.at_op is None:
            # Trigger-based rule with no explicit position: fire on the
            # first qualifying access.
            self.at_op = 1
        if self.kind == "transient" and self.rate == 0.0:
            raise ValueError("transient rules need a rate > 0")

    def lba_range(self) -> tuple[int, int] | None:
        """The rule's inclusive chunk-LBA window, or None for any."""
        if self.lba is None:
            return None
        if isinstance(self.lba, tuple):
            return self.lba
        return (self.lba, self.lba)

    def matches_context(self, context: str | None) -> bool:
        """True when the rule may fire in the plan's current phase."""
        return self.during is None or self.during == context

    def exhausted(self) -> bool:
        """True when the rule has minted its full quota of faults."""
        if self.rate == 0.0:
            return self.fired >= 1
        return self.count is not None and self.fired >= self.count


@dataclass
class InjectedFault:
    """Ground-truth record of one injected fault.

    ``status`` tracks the fault's afterlife: ``active`` (still latent in
    the array), ``repaired`` (the chunk was rewritten — by the scrubber
    or by a foreground write that read-modified it), ``overwritten``
    (a write replaced the corrupted contents before any detection), or
    ``lost`` (the whole disk was replaced, taking the fault with it).
    """

    kind: str
    disk: int
    lba: int | None
    op: int
    status: str = "active"


@dataclass
class FaultStats:
    """Counters of what the plan actually did."""

    ops: int = 0
    fail_stops: int = 0
    latent_minted: int = 0
    latent_raised: int = 0
    flips_minted: int = 0
    transient_raised: int = 0
    transient_retries: int = 0


class FaultPlan:
    """A seeded, deterministic schedule of disk faults.

    Build with the fluent helpers and hand to ``ArrayStore(fault_plan=)``
    (or :meth:`parse` a compact spec string, for the CLI)::

        plan = (FaultPlan(seed=7)
                .fail_stop(disk=2, at_op=40)
                .latent(disk=1, rate=0.002)
                .bit_flip(disk=3, at_op=25)
                .transient(disk=0, rate=0.01))

    The plan is pure decision state: it never touches bytes itself.
    :class:`FaultyDiskBackend` asks it what to do on every span I/O and
    performs the mechanics (raising errors, corrupting stored chunks).
    """

    def __init__(
        self,
        seed: int = 0,
        max_retries: int = 3,
        rules: list[FaultRule] | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.seed = seed
        self.max_retries = max_retries
        self.rules: list[FaultRule] = list(rules or ())
        self.rng = Random(seed)
        self.context: str | None = None
        self.stats = FaultStats()
        self.injected: list[InjectedFault] = []
        self._ops: dict[int, int] = {}
        self._fail_stopped: set[int] = set()
        #: Active latent sector errors / silent corruptions, keyed by
        #: (disk, chunk lba) -> their ground-truth record.
        self._latent: dict[tuple[int, int], InjectedFault] = {}
        self._corrupt: dict[tuple[int, int], InjectedFault] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.append(rule)
        return self

    def fail_stop(
        self, disk: int, at_op: int | None = None, during: str | None = None
    ) -> "FaultPlan":
        """Schedule a whole-disk fail-stop."""
        return self._add(
            FaultRule("fail_stop", disk, at_op=at_op, during=during)
        )

    def latent(
        self,
        disk: int,
        rate: float = 0.0,
        at_op: int | None = None,
        lba: int | tuple[int, int] | None = None,
        during: str | None = None,
        count: int | None = None,
    ) -> "FaultPlan":
        """Schedule latent sector (unreadable chunk) errors."""
        return self._add(
            FaultRule("latent", disk, rate, at_op, lba, during, count)
        )

    def bit_flip(
        self,
        disk: int,
        rate: float = 0.0,
        at_op: int | None = None,
        lba: int | tuple[int, int] | None = None,
        during: str | None = None,
        count: int | None = None,
    ) -> "FaultPlan":
        """Schedule silent bit-flip corruption of stored chunks."""
        return self._add(
            FaultRule("bit_flip", disk, rate, at_op, lba, during, count)
        )

    def transient(
        self, disk: int, rate: float, during: str | None = None
    ) -> "FaultPlan":
        """Schedule transient (retryable) I/O errors at ``rate``."""
        return self._add(
            FaultRule("transient", disk, rate=rate, during=during)
        )

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a compact spec string.

        Format: ``;``-separated clauses. ``seed=N`` and ``max_retries=N``
        configure the plan; every other clause is
        ``kind:key=value,key=value`` with keys ``disk``, ``rate``,
        ``at_op``, ``lba`` (``N`` or ``LO-HI``), ``during``, ``count``.
        Example::

            seed=7;fail_stop:disk=2,at_op=40;latent:disk=1,rate=0.002
        """
        plan = cls()
        rules: list[FaultRule] = []
        seed = 0
        max_retries = 3
        for clause in filter(None, (c.strip() for c in spec.split(";"))):
            if ":" not in clause:
                key, _, value = clause.partition("=")
                if key == "seed":
                    seed = int(value)
                elif key == "max_retries":
                    max_retries = int(value)
                else:
                    raise ValueError(
                        f"unknown fault-plan option {clause!r} (expected "
                        f"seed=N, max_retries=N, or kind:key=value,...)"
                    )
                continue
            kind, _, body = clause.partition(":")
            kwargs: dict = {}
            for pair in filter(None, (p.strip() for p in body.split(","))):
                key, _, value = pair.partition("=")
                if key in ("disk", "at_op", "count"):
                    kwargs[key] = int(value)
                elif key == "rate":
                    kwargs[key] = float(value)
                elif key == "lba":
                    lo, dash, hi = value.partition("-")
                    kwargs[key] = (int(lo), int(hi)) if dash else int(lo)
                elif key == "during":
                    kwargs[key] = value
                else:
                    raise ValueError(f"unknown fault-rule key {key!r}")
            if "disk" not in kwargs:
                raise ValueError(f"fault rule {clause!r} needs disk=N")
            rules.append(FaultRule(kind, **kwargs))
        plan = cls(seed=seed, max_retries=max_retries, rules=rules)
        return plan

    # ------------------------------------------------------------------
    # phases (the ``during=`` trigger context)
    # ------------------------------------------------------------------
    @contextmanager
    def phase(self, name: str) -> Iterator[None]:
        """Scope in which ``during=name`` rules may fire."""
        previous = self.context
        self.context = name
        try:
            yield
        finally:
            self.context = previous

    # ------------------------------------------------------------------
    # state queries
    # ------------------------------------------------------------------
    def ops(self, disk: int) -> int:
        """Span I/Os the plan has seen for ``disk``."""
        return self._ops.get(disk, 0)

    def is_fail_stopped(self, disk: int) -> bool:
        """True while ``disk`` is fail-stopped (and not yet replaced)."""
        return disk in self._fail_stopped

    def active_latent(self) -> set[tuple[int, int]]:
        """Currently unreadable ``(disk, chunk lba)`` pairs."""
        return set(self._latent)

    def active_corruptions(self) -> set[tuple[int, int]]:
        """Currently corrupted ``(disk, chunk lba)`` pairs."""
        return set(self._corrupt)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def replace_disk(self, disk: int) -> None:
        """Model a drive swap: clear fail-stop and the disk's defects.

        Latent errors and corruption on the replaced drive leave with
        it; their ground-truth records become ``lost`` (the scrubber is
        not expected to find them — rebuild regenerates the contents).
        """
        self._fail_stopped.discard(disk)
        for rule in self.rules:
            if rule.kind == "fail_stop" and rule.disk == disk:
                rule.fired = 1
        for fault in self.injected:
            if (
                fault.kind == "fail_stop"
                and fault.disk == disk
                and fault.status == "active"
            ):
                fault.status = "repaired"
        for key in [k for k in self._latent if k[0] == disk]:
            self._latent.pop(key).status = "lost"
        for key in [k for k in self._corrupt if k[0] == disk]:
            self._corrupt.pop(key).status = "lost"
        logger.info("fault-plan: disk %d replaced", disk)

    # ------------------------------------------------------------------
    # per-I/O evaluation (called by FaultyDiskBackend)
    # ------------------------------------------------------------------
    def _record(
        self, kind: str, disk: int, lba: int | None
    ) -> InjectedFault:
        fault = InjectedFault(kind, disk, lba, self._ops.get(disk, 0))
        self.injected.append(fault)
        return fault

    def note_access(
        self, disk: int, lbas: range, write: bool
    ) -> list[int]:
        """Advance the disk's op counter and mint any due faults.

        Returns the chunk LBAs the backend must corrupt (bit flips
        minted by this access); latent errors and fail-stops are minted
        into plan state and surfaced by the subsequent checks.
        """
        op = self._ops.get(disk, 0) + 1
        self._ops[disk] = op
        self.stats.ops += 1
        due_flips: list[int] = []
        for rule in self.rules:
            if (
                rule.disk != disk
                or rule.exhausted()
                or not rule.matches_context(self.context)
                or rule.kind == "transient"
            ):
                continue
            window = rule.lba_range()
            candidates = (
                [lba for lba in lbas if window[0] <= lba <= window[1]]
                if window is not None
                else list(lbas)
            )
            if rule.kind == "fail_stop":
                if rule.at_op is not None and op >= rule.at_op:
                    rule.fired += 1
                    self._fail_stopped.add(disk)
                    self.stats.fail_stops += 1
                    self._record("fail_stop", disk, None)
                    logger.info(
                        "fault-plan: disk %d fail-stopped at op %d", disk, op
                    )
                continue
            minted: list[int] = []
            if rule.rate > 0.0:
                for lba in candidates:
                    if rule.exhausted():
                        break
                    if self.rng.random() < rule.rate:
                        rule.fired += 1
                        minted.append(lba)
            elif op >= rule.at_op:
                # Trigger-based: mint at the explicit LBA when given
                # (even if this access does not cover it), else at the
                # first covered chunk.
                rule.fired += 1
                if window is not None and window[0] == window[1]:
                    minted.append(window[0])
                elif candidates:
                    minted.append(candidates[0])
                elif lbas:
                    minted.append(lbas[0])
            for lba in minted:
                key = (disk, lba)
                if rule.kind == "latent":
                    if key not in self._latent:
                        self._latent[key] = self._record(
                            "latent", disk, lba
                        )
                        self.stats.latent_minted += 1
                        if logger.isEnabledFor(logging.DEBUG):
                            logger.debug(
                                "fault-plan: latent error minted at "
                                "disk %d chunk %d (op %d)", disk, lba, op,
                            )
                else:  # bit_flip
                    if key not in self._corrupt:
                        self._corrupt[key] = self._record(
                            "bit_flip", disk, lba
                        )
                        self.stats.flips_minted += 1
                        due_flips.append(lba)
                        if logger.isEnabledFor(logging.DEBUG):
                            logger.debug(
                                "fault-plan: bit flip minted at "
                                "disk %d chunk %d (op %d)", disk, lba, op,
                            )
        return due_flips

    def draw_transient(self, disk: int) -> bool:
        """One Bernoulli draw: does this attempt fail transiently?"""
        for rule in self.rules:
            if (
                rule.kind == "transient"
                and rule.disk == disk
                and rule.matches_context(self.context)
                and self.rng.random() < rule.rate
            ):
                return True
        return False

    def latent_hit(self, disk: int, lbas: range) -> int | None:
        """First covered chunk with an active latent error, if any."""
        for lba in lbas:
            if (disk, lba) in self._latent:
                return lba
        return None

    def note_write(self, disk: int, lbas: range) -> None:
        """A write covered these chunks: remap latent sectors and mark
        still-active corruption as overwritten."""
        for lba in lbas:
            record = self._latent.pop((disk, lba), None)
            if record is not None:
                record.status = "repaired"
            record = self._corrupt.pop((disk, lba), None)
            if record is not None:
                record.status = "overwritten"


class FaultyDiskBackend:
    """Injects a :class:`FaultPlan` into raw per-disk span I/O.

    Args:
        raw_read: ``(disk, offset, length) -> bytes`` low-level reader.
        raw_write: ``(disk, offset, data) -> None`` low-level writer.
        plan: the fault schedule.
        chunk_bytes: chunk size (LBA granularity of the plan's rules).

    Transient errors are retried internally up to
    ``plan.max_retries`` times — the store never sees them unless the
    retry budget is exhausted. Bit flips are applied to the *stored*
    bytes (via the raw interface, unmetered), so the corruption is
    durable until something rewrites the chunk.
    """

    def __init__(
        self,
        raw_read: Callable[[int, int, int], bytes],
        raw_write: Callable[[int, int, bytes], None],
        plan: FaultPlan,
        chunk_bytes: int,
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self._raw_read = raw_read
        self._raw_write = raw_write
        self.plan = plan
        self.chunk_bytes = chunk_bytes

    def _lbas(self, offset: int, length: int) -> range:
        first = offset // self.chunk_bytes
        last = (offset + length - 1) // self.chunk_bytes
        return range(first, last + 1)

    def _corrupt_chunk(self, disk: int, lba: int) -> None:
        """Flip a deterministic bit of the stored chunk (raw, unmetered)."""
        offset = lba * self.chunk_bytes
        stored = bytearray(self._raw_read(disk, offset, self.chunk_bytes))
        bit = self.plan.rng.randrange(len(stored) * 8)
        stored[bit // 8] ^= 1 << (bit % 8)
        self._raw_write(disk, offset, bytes(stored))

    def _gate(self, disk: int, lbas: range, write: bool) -> None:
        """Common fault evaluation for one span I/O."""
        plan = self.plan
        flips = plan.note_access(disk, lbas, write)
        if plan.is_fail_stopped(disk):
            raise FailStopError(disk)
        for lba in flips:
            self._corrupt_chunk(disk, lba)
        retries = 0
        while plan.draw_transient(disk):
            retries += 1
            plan.stats.transient_retries += 1
            if retries > plan.max_retries:
                plan.stats.transient_raised += 1
                raise TransientIOError(disk)

    def read(self, disk: int, offset: int, length: int) -> bytes:
        """Read a span, surfacing any due faults first."""
        lbas = self._lbas(offset, length)
        self._gate(disk, lbas, write=False)
        hit = self.plan.latent_hit(disk, lbas)
        if hit is not None:
            self.plan.stats.latent_raised += 1
            raise LatentSectorError(disk, hit)
        return self._raw_read(disk, offset, length)

    def write(self, disk: int, offset: int, data: bytes) -> None:
        """Write a span; a successful write remaps covered bad sectors."""
        lbas = self._lbas(offset, len(data))
        self._gate(disk, lbas, write=True)
        self._raw_write(disk, offset, data)
        self.plan.note_write(disk, lbas)
