"""Throttled online repair: rebuild + scrub concurrent with foreground I/O.

:class:`RepairController` is the piece that turns the store's repair
primitives into an *online* discipline. It owns two responsibilities:

* **fault dispatch** (:meth:`RepairController.handle_fault`): when a
  foreground request surfaces an injected fault, decide what makes the
  request retryable — a fail-stopped disk is replaced
  (:meth:`FaultPlan.replace_disk`), failed into the store (wiping the
  file, as a drive swap does) and queued for rebuild, any interrupted
  write is rolled forward from the store's journal
  (:meth:`ArrayStore.complete_interrupted_write`), and a latent sector
  error gets its stripe repaired on the spot by the scrubber;
* **background progress** (:meth:`RepairController.tick`): a bounded
  slice of repair work — at most ``max_chunks_per_tick`` chunk I/Os —
  driven between foreground requests by
  :meth:`repro.raid.BlockDevice.replay`. Rebuild has priority while the
  array is degraded; otherwise the tick advances the scrubber's
  resumable cursor. The throttle is the knob behind the
  foreground-impact-vs-repair-bandwidth tradeoff ``bench_scrub``
  measures.

Incremental rebuild is made safe against concurrent writes with the
store's write watchers: stripes written by foreground traffic while the
rebuild cursor is in flight are collected and re-rebuilt before the
failure set is cleared, so a stripe rebuilt early and overwritten later
can never leave a stale reconstructed column behind.
"""

from __future__ import annotations

import logging
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field

from repro.faults.inject import (
    FailStopError,
    FaultError,
    LatentSectorError,
    TransientIOError,
)
from repro.faults.scrub import Scrubber
from repro.store.metering import IoCounters

__all__ = ["RepairController", "RepairStats"]

logger = logging.getLogger(__name__)


@dataclass
class RepairStats:
    """What the repair loop did, and what it cost."""

    ticks: int = 0
    stripes_rebuilt: int = 0
    rebuilds_completed: int = 0
    fail_stops_handled: int = 0
    latent_handled: int = 0
    transient_handled: int = 0
    journal_replays: int = 0
    rebuild_io: IoCounters = field(default_factory=IoCounters)


class RepairController:
    """Drives degraded rebuild and scrubbing in throttled ticks.

    Args:
        store: the :class:`~repro.store.ArrayStore` under repair (its
            ``fault_plan`` — if any — provides the ``during="rebuild"``
            phase context and disk replacement).
        scrubber: the scrubber to advance during idle ticks and to use
            for targeted latent-stripe repair; a default one (sharing
            the store) is built when omitted.
        max_chunks_per_tick: chunk-I/O budget per :meth:`tick`;
            converted to whole stripes (at least one) via the code's
            stripe footprint. Smaller values yield to foreground traffic
            more often; larger values finish repair sooner.
    """

    def __init__(
        self,
        store,
        scrubber: Scrubber | None = None,
        max_chunks_per_tick: int = 256,
    ) -> None:
        if max_chunks_per_tick < 1:
            raise ValueError("max_chunks_per_tick must be >= 1")
        self.store = store
        self.scrubber = scrubber if scrubber is not None else Scrubber(store)
        self.max_chunks_per_tick = max_chunks_per_tick
        self.stats = RepairStats()
        #: Next stripe the incremental rebuild will reconstruct; exposed
        #: (and restorable) so a repair loop can resume across restarts.
        self.rebuild_cursor = 0
        self._watch: set[int] | None = None
        # Serializes fault dispatch and repair ticks: several worker
        # threads can surface the same injected fault at once, and two
        # concurrent ``handle_fault`` calls for one fail-stop must fold
        # into one replace-and-restart, not two. Reentrant: handling a
        # fault raised *during* a tick re-enters from the same thread.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    @property
    def stripes_per_tick(self) -> int:
        """The tick's chunk budget expressed in whole stripes (>= 1)."""
        footprint = max(1, len(self.store.code.nonempty_positions))
        return max(1, self.max_chunks_per_tick // footprint)

    @property
    def rebuilding(self) -> bool:
        """True while a rebuild is in flight (the array is degraded)."""
        return bool(self.store.failed)

    def _phase(self, name: str):
        plan = self.store.fault_plan
        return plan.phase(name) if plan is not None else nullcontext()

    # ------------------------------------------------------------------
    # fault dispatch
    # ------------------------------------------------------------------
    def handle_fault(self, exc: FaultError) -> bool:
        """React to an injected fault; True when the caller may retry.

        Unrecoverable situations (a fail-stop beyond the code's fault
        budget) propagate as the store's own errors — the caller sees
        real data loss, not a silent swallow.
        """
        with self._lock:
            if isinstance(exc, FailStopError):
                return self._handle_fail_stop(exc)
            if isinstance(exc, LatentSectorError):
                self.stats.latent_handled += 1
                self._repair_lba_stripe(exc.lba)
                self.store.complete_interrupted_write()
                return True
            if isinstance(exc, TransientIOError):
                # The backend already burned its internal retries; one
                # more attempt at request granularity is the last resort.
                self.stats.transient_handled += 1
                return True
            return False

    def _handle_fail_stop(self, exc: FailStopError) -> bool:
        store = self.store
        plan = store.fault_plan
        self.stats.fail_stops_handled += 1
        if plan is not None:
            plan.replace_disk(exc.disk)
        if exc.disk not in store.failed:
            store.fail_disk(exc.disk)  # may raise: budget exceeded = loss
        # A write interrupted between its data and parity phases left a
        # write hole; roll the journal forward (skipping the dead disk)
        # before anything reads the stripe.
        self.stats.journal_replays += store.complete_interrupted_write()
        # (Re)start the incremental rebuild from the top: a second
        # failure changes the decoder and voids partial progress.
        self.rebuild_cursor = 0
        if self._watch is None:
            self._watch = store.watch_writes()
        else:
            self._watch.clear()
        logger.info(
            "repair: disk %d fail-stop handled; rebuild (re)started",
            exc.disk,
        )
        return True

    def _repair_lba_stripe(self, lba: int) -> None:
        """Targeted scrub of the stripe owning chunk ``lba``."""
        stripe = lba // self.store.code.rows
        if 0 <= stripe < self.store.stripes:
            self.scrubber.scrub_stripe(stripe)

    # ------------------------------------------------------------------
    # background progress
    # ------------------------------------------------------------------
    def tick(self) -> int:
        """One bounded slice of repair work; returns stripes processed.

        Rebuild first while degraded, scrub otherwise. Faults injected
        *into the repair work itself* (latent errors discovered
        mid-rebuild, a second disk dying) are dispatched through
        :meth:`handle_fault` and the slice is abandoned — the next tick
        resumes where appropriate.
        """
        with self._lock:
            self.stats.ticks += 1
            try:
                if self.rebuilding:
                    return self._rebuild_tick()
                return self.scrubber.step(max_stripes=self.stripes_per_tick)
            except FaultError as exc:
                if not self.handle_fault(exc):
                    raise
                return 0

    def _rebuild_tick(self) -> int:
        store = self.store
        if self._watch is None:
            self._watch = store.watch_writes()
        before = store.io.snapshot()
        try:
            count = min(
                self.stripes_per_tick, store.stripes - self.rebuild_cursor
            )
            if count > 0:
                with self._phase("rebuild"):
                    store.rebuild_stripes(self.rebuild_cursor, count)
                self.rebuild_cursor += count
                self.stats.stripes_rebuilt += count
                return count
            # Cursor at the end: re-rebuild stripes foreground writes
            # dirtied while the cursor was in flight, then finalize.
            # Each stripe leaves the watch set only once its rebuild
            # succeeded — a fault raised mid-loop (e.g. a latent error
            # minted by the rebuild reads themselves) must not lose the
            # remaining dirty stripes, or finalization would clear the
            # failure set with stale reconstructed columns behind.
            dirty = sorted(self._watch)
            if dirty:
                budget = self.stripes_per_tick
                done = 0
                with self._phase("rebuild"):
                    for stripe in dirty[:budget]:
                        store.rebuild_stripes(stripe, 1)
                        self.stats.stripes_rebuilt += 1
                        self._watch.discard(stripe)
                        done += 1
                # Anything beyond the budget (or re-dirtied meanwhile)
                # waits for the next tick.
                if self._watch:
                    return done
            store.unwatch_writes(self._watch)
            self._watch = None
            store.finish_rebuild()
            self.stats.rebuilds_completed += 1
            logger.info(
                "repair: rebuild complete after %d stripes",
                self.stats.stripes_rebuilt,
            )
            return len(dirty)
        finally:
            self.stats.rebuild_io = (
                self.stats.rebuild_io + (store.io - before)
            )

    def drain(self) -> None:
        """Run ticks until the array is healthy again (rebuild done).

        The scrub cursor is *not* driven to completion here — scrubbing
        is a continuous background activity; call
        ``controller.scrubber.run()`` for a full pass.
        """
        while self.rebuilding:
            self.tick()
