"""Fault injection and online scrub/repair.

Real arrays rarely die from three clean whole-disk failures: they die
from *mixed* failure modes — a disk failure plus latent sector errors
discovered mid-rebuild, or silent corruption that no one reads until the
redundancy that could have fixed it is gone (the failure model motivating
SD codes, Blaum & Plank). This subpackage makes that failure model
runnable against the real file-backed store:

* :mod:`repro.faults.inject` — a deterministic, seedable
  :class:`FaultPlan` plus the :class:`FaultyDiskBackend` that wraps the
  store's per-disk span I/O and injects fail-stop disk loss, latent
  sector (chunk) read errors, silent bit-flip corruption, and transient
  I/O errors, with per-disk rates and trigger conditions;
* :mod:`repro.faults.scrub` — an incremental :class:`Scrubber` that
  walks stripes in bounded batches, classifies errors from parity
  syndromes (clean / erasure / located silent corruption / unfixable)
  and repairs in place with data-before-parity ordering;
* :mod:`repro.faults.repair` — a throttled :class:`RepairController`
  that drives degraded-array rebuild and background scrubbing
  concurrently with foreground traffic in
  :meth:`repro.raid.BlockDevice.replay`.
"""

from repro.faults.inject import (
    FaultError,
    FaultPlan,
    FaultStats,
    FaultyDiskBackend,
    FailStopError,
    InjectedFault,
    LatentSectorError,
    TransientIOError,
)
from repro.faults.repair import RepairController, RepairStats
from repro.faults.scrub import (
    ScrubFinding,
    ScrubReport,
    Scrubber,
    classify_stripe,
)

__all__ = [
    "FaultError",
    "FaultPlan",
    "FaultStats",
    "FaultyDiskBackend",
    "FailStopError",
    "InjectedFault",
    "LatentSectorError",
    "TransientIOError",
    "RepairController",
    "RepairStats",
    "ScrubFinding",
    "ScrubReport",
    "Scrubber",
    "classify_stripe",
]
