"""Incremental online scrubbing: detect, classify, and repair in place.

The scrubber walks the store's stripes in bounded batches. Each batch is
read as one wide grid (:meth:`ArrayStore.read_stripes` — one span read
per surviving disk) and checked with vectorized parity syndromes over the
wide packets; only stripes with a violated chain (or a latent-read error)
pay the per-stripe repair path. Classification is pure parity-check
algebra (:func:`classify_stripe`):

* **clean** — every chain XORs to zero and every structural-zero (EMPTY)
  cell is zero;
* **corruption, located** — a single corrupted element ``j`` violates
  exactly the chains containing ``j`` (the support of column ``j`` of the
  parity-check matrix) and every violated chain carries the *same*
  syndrome packet ``e`` (the error value). When that support match is
  unique, XOR-ing ``e`` back into the stored element repairs it — the
  three independent parities of TIP make single-element location exact;
* **ambiguous** — violated chains match no single element's support, or
  match several, or carry differing syndromes: more than one error (or an
  error the geometry cannot localize). The scrubber reports it unfixable
  rather than guess.

Latent (unreadable) chunks are *erasures*: the per-stripe repair reads
tolerantly, zeroes what it cannot read, decodes the affected columns in
memory, and — only once the completed stripe's syndromes are clean —
commits the reconstructed elements, data strictly before parity (the
cache's crash-safe flush discipline). Every commit is an absolute value,
so a crash between writes leaves a stripe a later scrub pass repairs
identically. Co-resident silent corruption is fixed *first* (decoding
from a corrupted known would launder the corruption into the decoded
output), then the stripe is re-read and re-verified; the loop is bounded
by ``max_attempts``.

Fail-stop and exhausted-transient faults are not handled here — they
propagate to the caller (the :class:`repro.faults.repair.
RepairController` owns disk-level failure handling).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from repro.codes.base import ArrayCode, Cell
from repro.faults.inject import LatentSectorError
from repro.store.metering import IoCounters

__all__ = ["ScrubFinding", "ScrubReport", "Scrubber", "classify_stripe"]

logger = logging.getLogger(__name__)

#: ``classify_stripe`` states.
CLEAN, CORRUPTION, AMBIGUOUS = "clean", "corruption", "ambiguous"


def _support_index(
    code: ArrayCode,
) -> dict[frozenset[int], list[tuple[int, int]]]:
    """Map each distinct parity-check column support (the set of chains
    an element participates in) to the elements carrying it, memoized on
    the code instance."""
    cached = getattr(code, "_scrub_support", None)
    if cached is None:
        h_matrix = code.parity_check_matrix()
        cached = {}
        for pos, col in code.element_index.items():
            support = frozenset(np.flatnonzero(h_matrix[:, col]).tolist())
            cached.setdefault(support, []).append(pos)
        code._scrub_support = cached
    return cached


def classify_stripe(
    code: ArrayCode, stripe: np.ndarray
) -> tuple[str, tuple[int, int] | None, np.ndarray | None]:
    """Classify a fully-readable stripe from its parity syndromes.

    Returns ``(state, position, error)``:

    * ``("clean", None, None)`` — all chains zero, all EMPTY cells zero;
    * ``("corruption", (row, col), e)`` — a single element is corrupt;
      XOR-ing packet ``e`` into it restores the stripe. A nonzero EMPTY
      cell is reported the same way (``e`` is its stored value);
    * ``("ambiguous", None, None)`` — the violation pattern matches no
      unique single element: multiple errors or unlocalizable damage.
    """
    for row in range(code.rows):
        for col in range(code.cols):
            if code.kind(row, col) == Cell.EMPTY and stripe[row, col].any():
                return (CORRUPTION, (row, col), stripe[row, col].copy())
    syndromes: list[np.ndarray] = []
    for parity, members in code.chains.items():
        acc = stripe[parity[0], parity[1]].copy()
        for row, col in members:
            np.bitwise_xor(acc, stripe[row, col], out=acc)
        syndromes.append(acc)
    violated = [i for i, s in enumerate(syndromes) if s.any()]
    if not violated:
        return (CLEAN, None, None)
    error = syndromes[violated[0]]
    if any(
        not np.array_equal(syndromes[i], error) for i in violated[1:]
    ):
        return (AMBIGUOUS, None, None)
    matches = _support_index(code).get(frozenset(violated), [])
    if len(matches) != 1:
        return (AMBIGUOUS, None, None)
    return (CORRUPTION, matches[0], error.copy())


@dataclass
class ScrubFinding:
    """One error the scrubber encountered.

    ``kind`` is ``"corruption"`` (silent bit flips, located and patched),
    ``"erasure"`` (an unreadable chunk, reconstructed and rewritten), or
    ``"unfixable"``. ``fraction`` is how far through the array the scan
    was at detection (feeds the reliability model's detection latency).
    """

    stripe: int
    kind: str
    position: tuple[int, int] | None
    fixed: bool
    fraction: float
    detail: str = ""

    @property
    def disk(self) -> int | None:
        """The column (disk) the finding localizes to, if located."""
        return None if self.position is None else self.position[1]


@dataclass
class ScrubReport:
    """Accumulated outcome of scrub passes."""

    stripes_scanned: int = 0
    errors_found: int = 0
    errors_fixed: int = 0
    unfixable: int = 0
    findings: list[ScrubFinding] = field(default_factory=list)
    io: IoCounters = field(default_factory=IoCounters)

    def add(self, finding: ScrubFinding) -> None:
        """Fold one finding into the tallies."""
        self.findings.append(finding)
        self.errors_found += 1
        if finding.fixed:
            self.errors_fixed += 1
        if finding.kind == "unfixable":
            self.unfixable += 1

    def detection_fraction(self) -> float | None:
        """Mean scan fraction at which errors were detected (``None``
        when the pass found nothing) — the measured detection latency
        that parameterizes the sector-aware reliability model."""
        if not self.findings:
            return None
        return sum(f.fraction for f in self.findings) / len(self.findings)

    def summary(self) -> str:
        """One-line human summary."""
        return (
            f"scanned {self.stripes_scanned} stripes: "
            f"{self.errors_found} errors, {self.errors_fixed} fixed, "
            f"{self.unfixable} unfixable "
            f"({self.io.chunks_read} chunks read, "
            f"{self.io.chunks_written} written)"
        )


class Scrubber:
    """Incremental stripe scrubber over an :class:`ArrayStore`.

    Args:
        store: the store to scrub (may be degraded and may have a fault
            plan attached — latent read errors are handled as erasures).
        batch_stripes: stripes per :meth:`step` batch (one wide span read
            per disk, one vectorized syndrome pass).
        max_attempts: per-stripe bound on the repair/re-verify loop.

    The cursor is resumable: :meth:`step` scans the next batch and
    returns the stripes scanned (0 when a pass is complete);
    :meth:`run` finishes the current pass. ``report`` accumulates across
    steps until :meth:`reset`.
    """

    def __init__(
        self,
        store,
        batch_stripes: int = 8,
        max_attempts: int = 6,
    ) -> None:
        if batch_stripes < 1:
            raise ValueError("batch_stripes must be >= 1")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.store = store
        self.batch_stripes = batch_stripes
        self.max_attempts = max_attempts
        self.cursor = 0
        self.report = ScrubReport()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind the cursor and start a fresh report."""
        self.cursor = 0
        self.report = ScrubReport()

    @property
    def done(self) -> bool:
        """True when the current pass has scanned every stripe."""
        return self.cursor >= self.store.stripes

    def run(self) -> ScrubReport:
        """Scan to the end of the array; returns the (shared) report."""
        while self.step():
            pass
        return self.report

    def step(self, max_stripes: int | None = None) -> int:
        """Scrub the next batch; returns stripes scanned (0 = pass done)."""
        store = self.store
        if self.cursor >= store.stripes:
            return 0
        count = min(self.batch_stripes, store.stripes - self.cursor)
        if max_stripes is not None:
            count = min(count, max_stripes)
        if count <= 0:
            return 0
        start = self.cursor
        before = store.io.snapshot()
        store.flush()
        try:
            for stripe in self._prescan(start, count):
                self.scrub_stripe(stripe)
        finally:
            self.cursor = start + count
            self.report.stripes_scanned += count
            self.report.io = self.report.io + (store.io - before)
        return count

    # ------------------------------------------------------------------
    def _prescan(self, start: int, count: int) -> list[int]:
        """Stripes in ``[start, start+count)`` needing per-stripe repair.

        The healthy fast path: one wide read, vectorized syndromes, and
        only violated stripes go on. Any latent read error during the
        wide span reads demotes the whole batch to the per-stripe path
        (which localizes the bad chunk element by element); degraded
        columns violate their chains everywhere, so a degraded scrub
        visits every stripe — by design, since every stripe genuinely
        has erasures.
        """
        store = self.store
        code = store.code
        chunk = store.chunk_bytes
        try:
            wide = store.read_stripes(start, count)
        except LatentSectorError as exc:
            logger.debug(
                "scrub: batch [%d, %d) demoted to per-stripe reads (%s)",
                start, start + count, exc,
            )
            return list(range(start, start + count))
        dirty = np.zeros(count, dtype=bool)
        for parity, members in code.chains.items():
            acc = wide[parity[0], parity[1]].copy()
            for row, col in members:
                np.bitwise_xor(acc, wide[row, col], out=acc)
            dirty |= acc.reshape(count, chunk).any(axis=1)
        for row in range(code.rows):
            for col in range(code.cols):
                if code.kind(row, col) == Cell.EMPTY:
                    cell = wide[row, col].reshape(count, chunk)
                    dirty |= cell.any(axis=1)
        return [start + i for i in np.flatnonzero(dirty)]

    def _read_stripe_tolerant(
        self, stripe: int
    ) -> tuple[np.ndarray, set[tuple[int, int]]]:
        """Read a stripe element by element, zeroing what cannot be read.

        Returns ``(grid, unreadable positions)``. Latent sector errors
        are collected (precise, chunk-granular localization); failed
        columns are left zeroed and *not* listed — the caller treats
        them as whole-column erasures. Fail-stop / exhausted-transient
        errors propagate.
        """
        store = self.store
        code = store.code
        grid = np.zeros(
            (code.rows, code.cols, store.chunk_bytes), dtype=np.uint8
        )
        unreadable: set[tuple[int, int]] = set()
        for col in range(code.cols):
            if col in store.failed:
                continue
            for row in range(code.rows):
                try:
                    grid[row, col] = store.read_element(stripe, (row, col))
                except LatentSectorError:
                    unreadable.add((row, col))
        return grid, unreadable

    def _remap_unreadable(
        self,
        stripe: int,
        grid: np.ndarray,
        unreadable: set[tuple[int, int]],
    ) -> None:
        """Best-effort sector remap of an *unfixable* stripe's unreadable
        chunks: rewrite each with the best reconstruction available (the
        decoded value when the erasure budget allowed a decode, zeros
        otherwise) so the array stays readable. The stripe stays counted
        unfixable — this trades possible silent wrongness for
        availability, exactly what a drive's forced reallocation does;
        without it a foreground read of the bad chunk would retry the
        same latent error forever.
        """
        if not unreadable:
            return
        code = self.store.code
        pending = sorted(
            unreadable,
            key=lambda pos: (code.kind(*pos) == Cell.PARITY, pos),
        )
        for pos in pending:
            self.store.write_element(stripe, pos, grid[pos[0], pos[1]])
        logger.warning(
            "scrub: stripe %d is unfixable; remapped %d unreadable "
            "chunks with best-effort contents to keep it readable",
            stripe, len(pending),
        )

    def scrub_stripe(self, stripe: int) -> None:
        """Repair one stripe: classify, fix, re-read, re-verify.

        Ordering rationale: silent corruption is patched *before* any
        erasure commit (a decode that consumed a corrupted known would
        otherwise launder the corruption into the reconstructed
        elements), and erasure commits land data before parity. After
        every mutation the stripe is re-read and re-classified; the loop
        exits only on a clean verify or after ``max_attempts``.

        A stripe that proves unfixable still has its unreadable chunks
        remapped (:meth:`_remap_unreadable`) so the array remains
        serviceable; the unfixable finding records the damage.
        """
        store = self.store
        code = store.code
        fraction = (stripe + 1) / store.stripes
        grid = None
        unreadable: set[tuple[int, int]] = set()
        for _ in range(self.max_attempts):
            grid, unreadable = self._read_stripe_tolerant(stripe)
            erased_cols = tuple(
                sorted({col for _, col in unreadable} | store.failed)
            )
            if len(erased_cols) > code.faults:
                self.report.add(ScrubFinding(
                    stripe, "unfixable", None, False, fraction,
                    f"erasures span {len(erased_cols)} columns "
                    f"{list(erased_cols)}, beyond the fault budget "
                    f"({code.faults})",
                ))
                self._remap_unreadable(stripe, grid, unreadable)
                return
            if erased_cols:
                code.decoder_for(erased_cols).decode_columns(grid)
            state, position, error = classify_stripe(code, grid)
            if state == CORRUPTION:
                if position[1] in erased_cols:
                    # The "located" element was itself reconstructed:
                    # the inconsistency really lives in the knowns that
                    # fed the decode and cannot be pinned down.
                    self.report.add(ScrubFinding(
                        stripe, "unfixable", position, False, fraction,
                        "located element lies in an erased column",
                    ))
                    self._remap_unreadable(stripe, grid, unreadable)
                    return
                patched = np.bitwise_xor(grid[position[0], position[1]],
                                         error)
                store.write_element(stripe, position, patched)
                self.report.add(ScrubFinding(
                    stripe, "corruption", position, True, fraction,
                ))
                logger.info(
                    "scrub: stripe %d corruption at %s patched",
                    stripe, position,
                )
                continue  # re-read and re-verify
            if state == AMBIGUOUS:
                self.report.add(ScrubFinding(
                    stripe, "unfixable", None, False, fraction,
                    "syndrome pattern matches no unique element",
                ))
                self._remap_unreadable(stripe, grid, unreadable)
                return
            # Clean syndromes: commit reconstructed erasures (failed
            # columns stay un-written — rebuilding them is the repair
            # loop's job, and the store drops those writes anyway).
            pending = sorted(
                unreadable,
                key=lambda pos: (code.kind(*pos) == Cell.PARITY, pos),
            )
            if not pending:
                return
            for pos in pending:
                store.write_element(stripe, pos, grid[pos[0], pos[1]])
                self.report.add(ScrubFinding(
                    stripe, "erasure", pos, True, fraction,
                ))
            logger.info(
                "scrub: stripe %d reconstructed %d unreadable chunks",
                stripe, len(pending),
            )
            # One more round trip proves the rewrites took (and that the
            # remapped sectors now read back clean).
        else:
            self.report.add(ScrubFinding(
                stripe, "unfixable", None, False, fraction,
                f"not clean after {self.max_attempts} repair attempts",
            ))
            if grid is not None:
                self._remap_unreadable(stripe, grid, unreadable)
