"""X-code: the vertical RAID-6 MDS code with optimal update complexity.

Xu & Bruck, "X-Code: MDS array codes with optimal encoding" (IEEE TIT
1999) — reference [44]. X-code is the double-fault ancestor of TIP-code's
design philosophy: parities are placed *inside* the array (two parity
rows) and no parity ever participates in another parity, so every single
write touches exactly two parities — the RAID-6 optimum, just as TIP
achieves the 3DFT optimum.

Layout: ``p x p`` for a prime ``p``. Rows ``0..p-3`` hold data; row
``p-2`` holds the diagonal parities and row ``p-1`` the anti-diagonal
parities:

``C[p-2][i] = XOR_k C[k][(i+k+2) mod p]``,
``C[p-1][i] = XOR_k C[k][(i-k-2) mod p]``  for ``k = 0..p-3``.
"""

from __future__ import annotations

from repro._util import is_prime
from repro.codes.base import ArrayCode, Cell, Position

__all__ = ["XCode", "make_xcode"]


class XCode(ArrayCode):
    """X-code over ``p`` disks (``p`` an odd prime), 2-fault tolerant."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 5:
            raise ValueError(f"X-code requires a prime p >= 5, got {p}")
        self.p = p
        kinds: dict[Position, Cell] = {}
        chains: dict[Position, tuple[Position, ...]] = {}
        for i in range(p):
            kinds[(p - 2, i)] = Cell.PARITY
            kinds[(p - 1, i)] = Cell.PARITY
            chains[(p - 2, i)] = tuple(
                (k, (i + k + 2) % p) for k in range(p - 2)
            )
            chains[(p - 1, i)] = tuple(
                (k, (i - k - 2) % p) for k in range(p - 2)
            )
        super().__init__(
            name=f"x-code-p{p}", rows=p, cols=p, kinds=kinds, chains=chains,
            faults=2,
        )


def make_xcode(n: int) -> XCode:
    """X-code for exactly ``n`` disks; ``n`` must be a prime >= 5.

    X-code is a vertical code: every column carries both data and parity,
    so plain column shortening is impossible (the same constraint that
    motivates TIP's adjusters in Sec. VII).
    """
    return XCode(n)
