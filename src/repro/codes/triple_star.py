"""Triple-Star code (Wang et al. 2012) — the Rotary-code triple extension.

Reference [41] of the TIP paper. Unlike STAR there are no S1/S2 adjusters;
instead the horizontal parity column lies inside the span of both the
diagonal and anti-diagonal chains, so every horizontal parity update
cascades into one diagonal and one anti-diagonal parity (Fig. 2(d) of the
TIP paper: a single write touches 5 parity elements). The patented
Triple-Parity code [9] is this layout with the two diagonal columns
swapped, which is why the paper's evaluation treats them as equivalent.

Layout: ``(p-1) x (p+2)``; columns ``0..p-2`` data, column ``p-1``
horizontal parity, column ``p`` anti-diagonal parity, column ``p+1``
diagonal parity (matching Fig. 2's examples).
"""

from __future__ import annotations

from repro._util import is_prime
from repro.codes.base import ArrayCode, Cell, Position, shorten

__all__ = ["TripleStarCode", "make_triple_star"]


class TripleStarCode(ArrayCode):
    """Triple-Star over ``p + 2`` disks (``p`` an odd prime)."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 3:
            raise ValueError(f"Triple-Star requires an odd prime p, got {p}")
        self.p = p
        rows = p - 1
        kinds: dict[Position, Cell] = {}
        chains: dict[Position, tuple[Position, ...]] = {}
        for i in range(rows):
            kinds[(i, p - 1)] = Cell.PARITY  # horizontal
            kinds[(i, p)] = Cell.PARITY      # anti-diagonal
            kinds[(i, p + 1)] = Cell.PARITY  # diagonal
            chains[(i, p - 1)] = tuple((i, j) for j in range(p - 1))
            # Both diagonal directions span columns 0..p-1, i.e. they
            # include the horizontal parity column (the chained layout
            # inherited from RDP/Rotary-code).
            chains[(i, p)] = tuple(
                ((i + j) % p, j) for j in range(p) if (i + j) % p != p - 1
            )
            chains[(i, p + 1)] = tuple(
                ((i - j) % p, j) for j in range(p) if (i - j) % p != p - 1
            )
        super().__init__(
            name=f"triple-star-p{p}", rows=rows, cols=p + 2, kinds=kinds,
            chains=chains, faults=3,
        )


def make_triple_star(n: int) -> ArrayCode:
    """Triple-Star for ``n`` disks via shortening."""
    if n < 4:
        raise ValueError(f"Triple-Star needs n >= 4, got {n}")
    p = 3
    while p + 2 < n or not is_prime(p):
        p += 2
    code = TripleStarCode(p)
    if p + 2 == n:
        return code
    removed = tuple(range(n - 3, p - 1))
    return shorten(code, removed, name=f"triple-star-n{n}")
