"""HDD1 (Tau & Wang, AINA'03) — reconstructed triple-fault baseline.

Reference [39] of the TIP paper. The original AINA 2003 paper is not
available in this environment, so this module *reconstructs* a code that
matches every property the TIP paper attributes to HDD1:

* XOR-based MDS code tolerating triple disk failures;
* usable only with ``p + 1`` disks for a prime ``p``;
* horizontal, diagonal and anti-diagonal parities;
* the **highest update complexity** of all compared codes, approaching a
  constant of ~8-10 modified elements per single write as ``n`` grows
  (the TIP paper reports TIP improving on HDD1 by 32.2 % at n=6 up to
  46.6 % at n=24);
* high decoding complexity.

Construction used here: a ``(p-1) x (p+1)`` array with data columns
``0..p-3``, a horizontal parity column ``p-2``, a diagonal parity column
``p-1`` and an anti-diagonal parity column ``p``. Both diagonal-direction
chains span columns ``0..p-2`` — *including the horizontal parities* — and
each carries an EVENODD-style adjuster diagonal (``S1``/``S2``). The
combination of chained horizontal parity (Triple-Star's problem) and
adjuster diagonals (STAR's problem) yields an average single-write cost of
``2 + 8(p-1)/p`` elements, the worst of the evaluated codes, while
remaining provably MDS (verified exhaustively in the test suite for every
evaluation size). EXPERIMENTS.md records where this reconstruction's
absolute numbers sit relative to the paper's HDD1 curve.
"""

from __future__ import annotations

from repro._util import is_prime
from repro.codes.base import ArrayCode, Cell, Position
from repro.codes.evenodd import anti_s_diagonal, s_diagonal

__all__ = ["Hdd1Code", "make_hdd1"]


class Hdd1Code(ArrayCode):
    """HDD1 reconstruction over ``p + 1`` disks (``p`` an odd prime)."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 5:
            raise ValueError(f"HDD1 requires an odd prime p >= 5, got {p}")
        self.p = p
        rows = p - 1
        span = p - 1  # both diagonal directions cover data + horizontal
        kinds: dict[Position, Cell] = {}
        chains: dict[Position, tuple[Position, ...]] = {}
        s1 = s_diagonal(p, span)
        s2 = anti_s_diagonal(p, span)
        for i in range(rows):
            kinds[(i, p - 2)] = Cell.PARITY  # horizontal
            kinds[(i, p - 1)] = Cell.PARITY  # diagonal
            kinds[(i, p)] = Cell.PARITY      # anti-diagonal
            chains[(i, p - 2)] = tuple((i, j) for j in range(p - 2))
            diagonal = tuple(
                ((i - j) % p, j) for j in range(span) if (i - j) % p != p - 1
            )
            chains[(i, p - 1)] = diagonal + s1
            anti = tuple(
                ((i + j) % p, j) for j in range(span) if (i + j) % p != p - 1
            )
            chains[(i, p)] = anti + s2
        super().__init__(
            name=f"hdd1-p{p}", rows=rows, cols=p + 1, kinds=kinds,
            chains=chains, faults=3,
        )


def make_hdd1(n: int) -> ArrayCode:
    """HDD1 for ``n = p + 1`` disks; other sizes are rejected.

    The TIP paper notes HDD1 "can only be used with p + 1 disks"; its
    evaluation accordingly picks array sizes where ``n - 1`` is prime.
    """
    if not is_prime(n - 1) or n - 1 < 5:
        raise ValueError(
            f"HDD1 supports only n = p + 1 with p a prime >= 5; got n={n}"
        )
    return Hdd1Code(n - 1)
