"""Name-based construction of the codes compared in the paper.

``make_code("tip", n=12)`` returns the TIP instance the evaluation would
use for a 12-disk array, and likewise for every baseline. Families map to
the constructors' own size rules (TIP: adjuster shortening; STAR /
Triple-Star / EVENODD / RDP: plain shortening; Cauchy-RS: any size; HDD1:
``n = p + 1`` only).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.codes.base import ArrayCode
from repro.codes.cauchy import make_cauchy_rs
from repro.codes.evenodd import make_evenodd
from repro.codes.hdd1 import make_hdd1
from repro.codes.rdp import make_rdp
from repro.codes.star import make_star
from repro.codes.tip import make_tip
from repro.codes.triple_star import make_triple_star
from repro.codes.weaver import make_weaver
from repro.codes.xcode import make_xcode

__all__ = [
    "CODE_FAMILIES",
    "EVALUATED_FAMILIES",
    "make_code",
    "available_codes",
    "supports_size",
]

CODE_FAMILIES: dict[str, Callable[[int], ArrayCode]] = {
    "tip": make_tip,
    "star": make_star,
    "triple-star": make_triple_star,
    "cauchy-rs": make_cauchy_rs,
    "hdd1": make_hdd1,
    "evenodd": make_evenodd,
    "rdp": make_rdp,
    "x-code": make_xcode,
    "weaver": make_weaver,
}

#: The 3-fault-tolerant codes of the paper's evaluation (Sec. VI-A).
EVALUATED_FAMILIES: tuple[str, ...] = (
    "tip", "triple-star", "star", "cauchy-rs", "hdd1",
)


def make_code(family: str, n: int) -> ArrayCode:
    """Construct a code of ``family`` for an ``n``-disk array.

    Raises KeyError for unknown families and ValueError when the family
    does not support ``n`` disks (e.g. HDD1 with ``n - 1`` composite).
    """
    try:
        factory = CODE_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown code family {family!r}; available: {available_codes()}"
        ) from None
    return factory(n)


def available_codes() -> list[str]:
    """Names of all registered code families."""
    return sorted(CODE_FAMILIES)


def supports_size(family: str, n: int) -> bool:
    """True iff ``family`` can be instantiated for ``n`` disks."""
    try:
        make_code(family, n)
    except (ValueError, KeyError):
        return False
    return True
