"""Cauchy Reed-Solomon codes projected to bit matrices.

Bloemer et al., "An XOR-based erasure-resilient coding scheme" (ICSI
TR-95-048) — reference [4] of the TIP paper; the construction Jerasure 2.0
implements and the paper benchmarks.

A ``m x k`` Cauchy matrix over GF(2^w) (every square submatrix invertible)
is projected element-wise to a ``mw x kw`` bit matrix; each disk then
stores a *word* of ``w`` packets and all arithmetic becomes XOR. The
density of the projected matrix is what gives Cauchy-RS its high update
complexity: a data packet typically feeds ``~w/2`` parity packets per
parity disk instead of one.

The row-scaling optimization of Plank & Xu (NCA'06, reference [32]) is
applied by default to minimize the bit matrix's ones count.
"""

from __future__ import annotations

from repro.codes.base import ArrayCode, Cell, Position
from repro.gf import GF2w, cauchy_matrix, gf_matrix_to_bitmatrix
from repro.gf.matrices import optimize_cauchy_ones

__all__ = ["CauchyRSCode", "make_cauchy_rs", "min_word_size"]


def min_word_size(n: int) -> int:
    """Smallest ``w`` with ``2^w >= n`` (the Cauchy construction needs
    ``n`` distinct field elements split into two disjoint sets)."""
    w = 1
    while (1 << w) < n:
        w += 1
    return w


class CauchyRSCode(ArrayCode):
    """Cauchy-RS over ``n`` disks with ``m`` parity disks and word size ``w``.

    Args:
        n: total disks.
        m: parity disks (3 for the paper's comparisons).
        w: word size in packets per disk; defaults to the minimum feasible.
        optimize: apply the ones-minimizing row scaling of [32].
    """

    def __init__(
        self, n: int, m: int = 3, w: int | None = None, optimize: bool = True
    ) -> None:
        if m <= 0 or n <= m:
            raise ValueError(f"need n > m > 0, got n={n} m={m}")
        w = min_word_size(n) if w is None else w
        if (1 << w) < n:
            raise ValueError(f"w={w} too small for n={n}")
        k = n - m
        field = GF2w(w)
        cauchy = cauchy_matrix(field, m, k)
        if optimize:
            cauchy = optimize_cauchy_ones(field, cauchy)
        bits = gf_matrix_to_bitmatrix(field, cauchy)
        self.w = w
        self.field = field
        self.cauchy = cauchy
        kinds: dict[Position, Cell] = {}
        chains: dict[Position, tuple[Position, ...]] = {}
        for a in range(m):
            for b in range(w):
                parity: Position = (b, k + a)
                kinds[parity] = Cell.PARITY
                members = tuple(
                    (bit, disk)
                    for disk in range(k)
                    for bit in range(w)
                    if bits[a * w + b, disk * w + bit]
                )
                chains[parity] = members
        super().__init__(
            name=f"cauchy-rs-n{n}-w{w}", rows=w, cols=n, kinds=kinds,
            chains=chains, faults=m,
        )


def make_cauchy_rs(n: int, m: int = 3) -> CauchyRSCode:
    """Cauchy-RS for ``n`` disks with the minimum feasible word size."""
    return CauchyRSCode(n, m=m)
