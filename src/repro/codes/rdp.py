"""RDP: Row-Diagonal Parity (Corbett et al., FAST'04) — RAID-6 substrate.

Reference [8] of the TIP paper. RDP's signature design choice — the
diagonal parity chains *include the row-parity column* — is the direct
ancestor of Triple-Star's and Triple-Parity's layouts, and the canonical
example of the chained-parity update-complexity cost that TIP avoids.

Layout: ``(p-1) x (p+1)`` for a prime ``p``; columns ``0..p-2`` data,
column ``p-1`` row parity, column ``p`` diagonal parity. Diagonal ``d``
collects the cells with ``(row + col) mod p == d`` over columns
``0..p-1``; diagonal ``p-1`` is the missing diagonal.
"""

from __future__ import annotations

from repro._util import is_prime
from repro.codes.base import ArrayCode, Cell, Position, shorten

__all__ = ["RdpCode", "make_rdp"]


class RdpCode(ArrayCode):
    """RDP over ``p + 1`` disks (``p`` an odd prime), 2-fault tolerant."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 3:
            raise ValueError(f"RDP requires an odd prime p, got {p}")
        self.p = p
        rows = p - 1
        kinds: dict[Position, Cell] = {}
        chains: dict[Position, tuple[Position, ...]] = {}
        for i in range(rows):
            kinds[(i, p - 1)] = Cell.PARITY
            kinds[(i, p)] = Cell.PARITY
            chains[(i, p - 1)] = tuple((i, j) for j in range(p - 1))
            # Diagonal i spans the row-parity column: the chained layout.
            chains[(i, p)] = tuple(
                ((i - j) % p, j) for j in range(p) if (i - j) % p != p - 1
            )
        super().__init__(
            name=f"rdp-p{p}", rows=rows, cols=p + 1, kinds=kinds,
            chains=chains, faults=2,
        )


def make_rdp(n: int) -> ArrayCode:
    """RDP for ``n`` disks via shortening of the smallest fitting prime."""
    if n < 4:
        raise ValueError(f"RDP needs n >= 4, got {n}")
    p = 3
    while p + 1 < n or not is_prime(p):
        p += 2
    code = RdpCode(p)
    if p + 1 == n:
        return code
    removed = tuple(range(n - 2, p - 1))
    return shorten(code, removed, name=f"rdp-n{n}")
