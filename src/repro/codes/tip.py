"""TIP-code: three independent parities for triple-fault tolerance.

Implements Sec. III, IV and VII of the paper:

* :class:`TipCode` — the native ``(p-1) x (p+1)`` layout with horizontal,
  diagonal and anti-diagonal parities per encoding Eqs. (1)-(3). Every
  data element belongs to exactly one chain of each kind, which is the
  *three independent parities* property giving optimal update complexity.
* :class:`TipAlgebraicDecoder` — the paper's own reconstruction algorithm
  (Sec. III-C/III-D): the equivalent layout *D* (Fig. 4), the symmetrized
  matrix *E* (Eq. 9), syndromes, cross patterns (Fig. 6), the 4-tuple →
  2-tuple reduction with ``k = v/u`` over F_p, and the empty-element
  starting points. Runs in O(p^2) XORs; tests cross-check it against the
  generic parity-check decoder.
* :func:`make_tip` — arbitrary array sizes via codeword shortening with
  *adjusters* (Sec. VII, Fig. 16).
"""

from __future__ import annotations

import numpy as np

from repro._util import is_prime, next_prime
from repro.codes.base import ArrayCode, Cell, Position

__all__ = ["TipCode", "TipAlgebraicDecoder", "make_tip", "tip_parameters"]


def _tip_structure(p: int) -> tuple[dict[Position, Cell], dict[Position, tuple[Position, ...]]]:
    """Build the kinds and parity chains of the native TIP layout.

    Grid: rows ``0..p-2``, columns ``0..p``. Parity placement:
    horizontal in column ``p``; diagonal parity of chain ``i`` at
    ``(i, i+1)``; anti-diagonal parity of chain ``i`` at ``(i, p-1-i)``.
    """
    rows = p - 1
    kinds: dict[Position, Cell] = {}
    for i in range(rows):
        kinds[(i, p)] = Cell.PARITY        # horizontal
        kinds[(i, i + 1)] = Cell.PARITY    # diagonal
        kinds[(i, p - 1 - i)] = Cell.PARITY  # anti-diagonal

    chains: dict[Position, tuple[Position, ...]] = {}
    for i in range(rows):
        # Eq. (1): row i minus the two embedded parity cells.
        members = tuple(
            (i, j)
            for j in range(p)
            if j != i + 1 and i + j != p - 1
        )
        chains[(i, p)] = members
        # Eq. (2): diagonal chain i — cells (<i-j>_p, j), skipping the
        # imaginary row p-1 and other diagonal-parity cells.
        members = tuple(
            ((i - j) % p, j)
            for j in range(p)
            if (i - j) % p != p - 1 and (i - j) % p + 1 != j
        )
        chains[(i, i + 1)] = members
        # Eq. (3): anti-diagonal chain i — cells (<i+j>_p, j), skipping the
        # imaginary row and other anti-diagonal-parity cells.
        members = tuple(
            ((i + j) % p, j)
            for j in range(p)
            if (i + j) % p != p - 1 and (i + j) % p + j != p - 1
        )
        chains[(i, p - 1 - i)] = members
    return kinds, chains


class TipCode(ArrayCode):
    """Native TIP-code over ``p + 1`` disks (``p`` an odd prime).

    The layout is a ``(p-1) x (p+1)`` element grid. Column ``p`` holds the
    horizontal parities; the diagonal and anti-diagonal parities live on
    the main and anti diagonals of the inner square (columns ``1..p-1``),
    so parities never participate in other parities — the defining
    property of the code.
    """

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 3:
            raise ValueError(f"TIP-code requires an odd prime p, got {p}")
        self.p = p
        kinds, chains = _tip_structure(p)
        super().__init__(
            name=f"tip-p{p}", rows=p - 1, cols=p + 1, kinds=kinds,
            chains=chains, faults=3,
        )

    def algebraic_decoder(self) -> "TipAlgebraicDecoder":
        """Return the paper's specialized decoder for this stripe shape."""
        return TipAlgebraicDecoder(self)


def tip_parameters(n: int) -> tuple[int, int]:
    """Choose ``(p, removed_columns)`` for an ``n``-disk TIP array.

    Uses the smallest odd prime with ``p + 1 >= n``; Sec. VII constrains
    valid sizes to ``(p+3)/2 <= n <= p+1``, which the smallest such prime
    always satisfies (Bertrand's postulate).
    """
    if n < 4:
        raise ValueError(f"a 3-fault-tolerant array needs n >= 4, got {n}")
    p = next_prime(max(n - 1, 3))
    if n < (p + 3) // 2:  # pragma: no cover - unreachable for smallest p
        raise ValueError(f"no valid TIP prime for n={n}")
    return p, p + 1 - n


def make_tip(n: int | None = None, p: int | None = None) -> ArrayCode:
    """Construct a TIP-code for ``n`` disks (or natively for prime ``p``).

    For ``n == p + 1`` this is the native layout; for ``n == p`` column 0
    (all data) is simply shortened; smaller sizes use the *adjuster*
    technique of Sec. VII: each diagonal/anti-diagonal parity lost with a
    removed column is re-homed onto the chain's data element in column
    ``p - 1`` (the second-to-last column), which then stores the XOR of
    the chain's surviving data elements.
    """
    if (n is None) == (p is None):
        raise ValueError("pass exactly one of n or p")
    if n is None:
        return TipCode(p)  # type: ignore[arg-type]
    chosen_p, removed = tip_parameters(n)
    if removed == 0:
        return TipCode(chosen_p)
    return _shorten_tip(chosen_p, removed, name=f"tip-n{n}")


def _shorten_tip(p: int, removed: int, name: str) -> ArrayCode:
    """Shorten TIP(p) by its leftmost ``removed`` columns with adjusters."""
    if removed >= (p + 1) // 2:
        raise ValueError(
            f"TIP(p={p}) supports at most {(p - 1) // 2} removed columns"
        )
    kinds, chains = _tip_structure(p)
    removed_cols = set(range(removed))

    # Column 0 is all data; columns 1..removed-1 each contain one diagonal
    # parity at (c-1, c) and one anti-diagonal parity at (p-1-c, c). Each
    # such chain gets an adjuster: its member in column p-1.
    adjusters: dict[Position, Position] = {}  # removed parity -> adjuster
    for col in range(1, removed):
        for parity in ((col - 1, col), (p - 1 - col, col)):
            members = chains[parity]
            homes = [pos for pos in members if pos[1] == p - 1]
            if len(homes) != 1:  # pragma: no cover - structural invariant
                raise RuntimeError(f"chain of {parity} lacks a unique adjuster")
            adjusters[parity] = homes[0]

    new_kinds: dict[Position, Cell] = {}
    new_chains: dict[Position, tuple[Position, ...]] = {}

    def survives(pos: Position) -> bool:
        return pos[1] not in removed_cols

    def shift(pos: Position) -> Position:
        return (pos[0], pos[1] - removed)

    adjuster_cells = set(adjusters.values())
    for parity, members in chains.items():
        kept = tuple(shift(m) for m in members if survives(m))
        if survives(parity):
            new_kinds[shift(parity)] = Cell.PARITY
            new_chains[shift(parity)] = kept
        else:
            # Re-home the chain on its adjuster: adjuster = XOR of the
            # chain's other surviving members (Fig. 16's C1,6 example).
            home = shift(adjusters[parity])
            new_kinds[home] = Cell.PARITY
            new_chains[home] = tuple(m for m in kept if m != home)
    # Sanity: adjusters must not collide with native parity cells.
    for cell in adjuster_cells:
        if kinds.get(cell) == Cell.PARITY:  # pragma: no cover - invariant
            raise RuntimeError(f"adjuster {cell} collides with a parity cell")
    return ArrayCode(
        name=name, rows=p - 1, cols=p + 1 - removed, kinds=new_kinds,
        chains=new_chains, faults=3,
    )


class TipAlgebraicDecoder:
    """The paper's reconstruction algorithm for native TIP stripes.

    Handles any three distinct failed columns:

    * **Case 1** (horizontal column ``p`` among the failures, Sec. III-C):
      the two remaining failures are recovered by zig-zag peeling over the
      diagonal and anti-diagonal chains of the equivalent layout *D*
      (the two-sequence construction of Eq. 8), then column ``p`` is
      re-encoded.
    * **Case 2** (three failures among columns ``0..p-1``, Sec. III-D):
      build ``E[i] = D[i] ^ D[p-2-i]``, compute the three syndrome
      families, combine them in cross patterns (Eq. 13), reduce 4-tuples
      to 2-tuples with ``k = v/u`` over F_p (Eq. 15), sweep each failed
      column from its structurally-empty element, then repeat the same
      sweep on *D* itself using Eq. 16, and finally re-encode the parity
      cells of the failed columns.
    """

    def __init__(self, code: TipCode) -> None:
        if not isinstance(code, TipCode):
            raise TypeError("TipAlgebraicDecoder requires a native TipCode")
        self.code = code
        self.p = code.p

    # ------------------------------------------------------------------
    def decode(self, stripe: np.ndarray, failed: tuple[int, ...] | list[int]) -> np.ndarray:
        """Reconstruct up to three failed columns of ``stripe`` in place."""
        p = self.p
        failed_key = tuple(sorted(set(failed)))
        if not failed_key:
            raise ValueError("need at least one failed column")
        if len(failed_key) > 3:
            raise ValueError("TIP-code tolerates at most 3 failures")
        for col in failed_key:
            if not 0 <= col <= p:
                raise ValueError(f"column {col} out of range 0..{p}")
        self.code.erase_columns(stripe, failed_key)
        if len(failed_key) < 3:
            # Fewer erasures are a strict sub-case; the generic scheduled
            # decoder is already optimal there (Sec. IV-C1).
            self.code.decode(stripe, failed_key)
            return stripe
        if failed_key[-1] == p:
            self._decode_case1(stripe, failed_key[0], failed_key[1])
        else:
            self._decode_case2(stripe, failed_key)
        return stripe

    # ------------------------------------------------------------------
    # the equivalent layout D (Fig. 4): rows -1..p-1 stored at index r+1
    # ------------------------------------------------------------------
    def _build_d(self, stripe: np.ndarray) -> np.ndarray:
        """Return D as a ``(p+1, p, packet)`` array (rows -1..p-1, cols 0..p-1).

        Data cells stay in place; the diagonal parity of column ``c``
        moves to row ``p-1``; the anti-diagonal parity moves to row
        ``-1``; vacated positions become zero.
        """
        p = self.p
        packet = stripe.shape[2]
        d_matrix = np.zeros((p + 1, p, packet), dtype=np.uint8)
        for r in range(p - 1):
            for c in range(p):
                kind = self.code.kind(r, c)
                if kind == Cell.DATA:
                    d_matrix[r + 1, c] = stripe[r, c]
        for i in range(p - 1):
            d_matrix[p, i + 1] = stripe[i, i + 1]          # diagonal -> row p-1
            d_matrix[0, p - 1 - i] = stripe[i, p - 1 - i]  # anti-diag -> row -1
        return d_matrix

    @staticmethod
    def _d_row(d_matrix: np.ndarray, row: int) -> np.ndarray:
        """Index D by its mathematical row in ``-1..p-1``."""
        return d_matrix[row + 1]

    # ------------------------------------------------------------------
    # Case 1: column p failed; peel the two data-side failures over D
    # ------------------------------------------------------------------
    def _decode_case1(self, stripe: np.ndarray, f1: int, f2: int) -> None:
        p = self.p
        d_matrix = self._build_d(stripe)
        packet = stripe.shape[2]
        failed = {f1, f2}

        # Structural zeros of D in the failed columns are known.
        empties = {
            (row, col)
            for col in failed
            for row in self._empty_rows_of_column(col)
        }
        unknown = {
            (row, col)
            for col in failed
            for row in range(-1, p)
            if (row, col) not in empties
        }

        # Chains over D: diagonal chains use rows 0..p-1 (Eq. 6),
        # anti-diagonal chains use rows -1..p-2 (Eq. 7); both sum to zero.
        chains: list[list[tuple[int, int]]] = []
        for i in range(p):
            chains.append([((i - j) % p, j) for j in range(p)])
            chains.append([(p - 2 - (i - j) % p, j) for j in range(p)])

        values: dict[tuple[int, int], np.ndarray] = {}
        pending: list[tuple[list[tuple[int, int]], np.ndarray]] = []
        for chain in chains:
            acc = np.zeros(packet, dtype=np.uint8)
            missing: list[tuple[int, int]] = []
            for row, col in chain:
                if (row, col) in unknown:
                    missing.append((row, col))
                else:
                    np.bitwise_xor(acc, self._d_row(d_matrix, row)[col], out=acc)
            pending.append((missing, acc))

        resolved = True
        while unknown and resolved:
            resolved = False
            for missing, acc in pending:
                live = [pos for pos in missing if pos in unknown]
                if len(live) != 1:
                    continue
                target = live[0]
                value = acc.copy()
                for pos in missing:
                    if pos != target and pos in values:
                        np.bitwise_xor(value, values[pos], out=value)
                values[target] = value
                self._d_row(d_matrix, target[0])[target[1]] = value
                unknown.discard(target)
                resolved = True
        if unknown:  # pragma: no cover - contradicts Theorem 1
            raise RuntimeError(f"Case-1 peeling stalled with {len(unknown)} unknowns")

        self._write_back_from_d(stripe, d_matrix, failed)
        self._reencode_columns(stripe, failed | {p})

    def _empty_rows_of_column(self, col: int) -> list[int]:
        """Rows of D that are structurally zero in ``col`` (0..p-1)."""
        p = self.p
        empties: list[int] = []
        if col == 0:
            empties.extend([-1, p - 1])  # column 0 has no embedded parities
        else:
            empties.append(col - 1)       # vacated diagonal-parity cell
            empties.append(p - 1 - col)   # vacated anti-diagonal-parity cell
        return empties

    # ------------------------------------------------------------------
    # Case 2: three failures among columns 0..p-1 (Sec. III-D)
    # ------------------------------------------------------------------
    def _decode_case2(self, stripe: np.ndarray, failed: tuple[int, int, int]) -> None:
        p = self.p
        packet = stripe.shape[2]
        d_matrix = self._build_d(stripe)
        surviving = [c for c in range(p) if c not in failed]

        # S: XOR of all horizontal parities (Eq. 4).
        total = np.zeros(packet, dtype=np.uint8)
        for i in range(p - 1):
            np.bitwise_xor(total, stripe[i, p], out=total)

        # Step 1: E[i] = D[i] ^ D[p-2-i] for rows 0..p-1 (Eq. 9).
        e_matrix = np.zeros((p, p, packet), dtype=np.uint8)
        for i in range(p):
            e_matrix[i] = self._d_row(d_matrix, i) ^ self._d_row(d_matrix, p - 2 - i)

        # Step 2: the three syndrome families of E. Row chains have known
        # right-hand sides (Eq. 10); diagonal/anti-diagonal sum to zero.
        def row_rhs_e(r: int) -> np.ndarray:
            if r == p - 1:
                return np.zeros(packet, dtype=np.uint8)
            rhs = stripe[r, p].copy()
            np.bitwise_xor(rhs, stripe[p - 2 - r, p], out=rhs)
            return rhs

        synd = self._syndromes(e_matrix, surviving, row_rhs_e,
                               lambda i: np.zeros(packet, dtype=np.uint8))

        # Steps 3-5: recover each failed column of E via cross patterns.
        for middle in failed:
            others = [c for c in failed if c != middle]
            self._recover_column(e_matrix, synd, others[0], middle, others[1])

        # Step 7: decode the p x p sub-matrix of D (rows 0..p-1) the same
        # way; anti-diagonal chains now have RHS E[p-1, p-1-i] (Eq. 16).
        def row_rhs_d(r: int) -> np.ndarray:
            if r == p - 1:
                return total
            return stripe[r, p]

        def anti_rhs_d(i: int) -> np.ndarray:
            return e_matrix[p - 1, (p - 1 - i) % p]

        sub_d = d_matrix[1:]  # rows 0..p-1
        synd_d = self._syndromes(sub_d, surviving, row_rhs_d, anti_rhs_d)
        for middle in failed:
            others = [c for c in failed if c != middle]
            self._recover_column(sub_d, synd_d, others[0], middle, others[1])

        self._write_back_from_d(stripe, d_matrix, set(failed))
        self._reencode_columns(stripe, set(failed))

    def _syndromes(
        self,
        grid: np.ndarray,
        surviving: list[int],
        row_rhs,
        anti_rhs,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compute (S_{r,0}, S_{r,1}, S_{r,2}) for a p x p chain system.

        Each syndrome equals the XOR of the chain's *erased* elements:
        the XOR of its surviving elements plus the chain's known RHS.
        """
        p = self.p
        packet = grid.shape[2]
        s_row = np.zeros((p, packet), dtype=np.uint8)
        s_diag = np.zeros((p, packet), dtype=np.uint8)
        s_anti = np.zeros((p, packet), dtype=np.uint8)
        for r in range(p):
            np.bitwise_xor(s_row[r], row_rhs(r), out=s_row[r])
            np.bitwise_xor(s_anti[r], anti_rhs(r), out=s_anti[r])
        for j in surviving:
            for r in range(p):
                np.bitwise_xor(s_row[r], grid[r, j], out=s_row[r])
                np.bitwise_xor(s_diag[r], grid[(r - j) % p, j], out=s_diag[r])
                np.bitwise_xor(s_anti[r], grid[(r + j) % p, j], out=s_anti[r])
        return s_row, s_diag, s_anti

    def _recover_column(
        self,
        grid: np.ndarray,
        synd: tuple[np.ndarray, np.ndarray, np.ndarray],
        before: int,
        middle: int,
        after: int,
    ) -> None:
        """Recover ``grid[:, middle]`` with ``before``/``after`` also failed.

        Implements Eqs. 13-15: the cross pattern cancels the two outer
        columns; accumulating ``k = v/u (mod p)`` consecutive cross
        patterns cancels two of the four middle-column terms, leaving the
        2-tuple ``grid[r] ^ grid[r + 2v]``; the sweep starts from the
        structurally-empty element ``grid[p-1-middle, middle]``.
        """
        p = self.p
        packet = grid.shape[2]
        s_row, s_diag, s_anti = synd
        u = (middle - before) % p
        v = (after - middle) % p
        # Cross patterns (Eq. 13).
        cross = np.zeros((p, packet), dtype=np.uint8)
        for r in range(p):
            cross[r] = s_row[r].copy()
            np.bitwise_xor(cross[r], s_row[(r + u + v) % p], out=cross[r])
            np.bitwise_xor(cross[r], s_diag[(r + after) % p], out=cross[r])
            np.bitwise_xor(cross[r], s_anti[(r - before) % p], out=cross[r])
        # 4-tuple -> 2-tuple: k = v / u over F_p (Eq. 15).
        k = (v * pow(u, p - 2, p)) % p
        pair = np.zeros((p, packet), dtype=np.uint8)
        for r in range(p):
            acc = pair[r]
            for j in range(k):
                np.bitwise_xor(acc, cross[(r + j * u) % p], out=acc)
        # Sweep from the empty element: grid[r] ^ grid[r+2v] = pair[r].
        start = (p - 1 - middle) % p
        grid[start, middle] = 0
        r = start
        for _ in range(p - 1):
            nxt = (r + 2 * v) % p
            grid[nxt, middle] = grid[r, middle] ^ pair[r]
            r = nxt

    # ------------------------------------------------------------------
    def _write_back_from_d(
        self, stripe: np.ndarray, d_matrix: np.ndarray, failed: set[int]
    ) -> None:
        """Copy recovered *data* cells of failed columns from D to the stripe."""
        p = self.p
        for col in failed:
            if col >= p:
                continue
            for row in range(p - 1):
                if self.code.kind(row, col) == Cell.DATA:
                    stripe[row, col] = self._d_row(d_matrix, row)[col]

    def _reencode_columns(self, stripe: np.ndarray, failed: set[int]) -> None:
        """Recompute every parity cell of the failed columns from its chain.

        All TIP chains contain only data elements, so once the data cells
        are back this closes the reconstruction.
        """
        for parity, members in self.code.chains.items():
            if parity[1] not in failed:
                continue
            acc = stripe[parity[0], parity[1]]
            acc[:] = 0
            for row, col in members:
                np.bitwise_xor(acc, stripe[row, col], out=acc)
