"""EVENODD: the classic double-fault-tolerant horizontal code.

Blaum et al., "EVENODD: an efficient scheme for tolerating double disk
failures in RAID architectures" (IEEE ToC 1995) — reference [1] of the TIP
paper. STAR (the paper's main XOR baseline) is the triple-fault extension
of EVENODD, so this module is both a RAID-6 substrate in its own right and
the foundation :mod:`repro.codes.star` builds on.

Layout: ``(p-1) x (p+2)`` for a prime ``p``; columns ``0..p-1`` hold data,
column ``p`` the horizontal parities and column ``p+1`` the diagonal
parities. The diagonal parities all share the *EVENODD adjuster* ``S``
(the XOR of the diagonal through the imaginary row), which is why a write
to an S-diagonal element updates every diagonal parity — the update
complexity problem TIP-code eliminates.
"""

from __future__ import annotations

from repro._util import is_prime
from repro.codes.base import ArrayCode, Cell, Position, shorten

__all__ = ["EvenOddCode", "make_evenodd", "s_diagonal", "anti_s_diagonal"]


def s_diagonal(p: int, span: int | None = None) -> tuple[Position, ...]:
    """Cells of the adjuster diagonal ``S`` (chain ``p-1``, direction ``i-j``).

    ``span`` limits the columns considered (defaults to ``p``); the cell in
    the imaginary row ``p-1`` is skipped.
    """
    span = p if span is None else span
    return tuple(
        ((p - 1 - j) % p, j) for j in range(span) if (p - 1 - j) % p != p - 1
    )


def anti_s_diagonal(p: int, span: int | None = None) -> tuple[Position, ...]:
    """Cells of the anti-diagonal adjuster ``S2`` (chain ``p-1``, ``i+j``)."""
    span = p if span is None else span
    return tuple(
        ((p - 1 + j) % p, j) for j in range(span) if (p - 1 + j) % p != p - 1
    )


class EvenOddCode(ArrayCode):
    """EVENODD over ``p + 2`` disks (``p`` an odd prime), 2-fault tolerant."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 3:
            raise ValueError(f"EVENODD requires an odd prime p, got {p}")
        self.p = p
        rows = p - 1
        kinds: dict[Position, Cell] = {}
        chains: dict[Position, tuple[Position, ...]] = {}
        adjuster = s_diagonal(p)
        for i in range(rows):
            kinds[(i, p)] = Cell.PARITY
            kinds[(i, p + 1)] = Cell.PARITY
            chains[(i, p)] = tuple((i, j) for j in range(p))
            diagonal = tuple(
                ((i - j) % p, j) for j in range(p) if (i - j) % p != p - 1
            )
            # C_{i,p+1} = S xor (diagonal i); S and diagonal i are disjoint
            # (distinct diagonals), so concatenation is the exact XOR set.
            chains[(i, p + 1)] = diagonal + adjuster
        super().__init__(
            name=f"evenodd-p{p}", rows=rows, cols=p + 2, kinds=kinds,
            chains=chains, faults=2,
        )


def make_evenodd(n: int) -> ArrayCode:
    """EVENODD for ``n`` disks via shortening of the smallest fitting prime."""
    if n < 4:
        raise ValueError(f"EVENODD needs n >= 4, got {n}")
    p = 3
    while p + 2 < n or not is_prime(p):
        p += 2
    code = EvenOddCode(p)
    if p + 2 == n:
        return code
    removed = tuple(range(n - 2, p))  # drop the highest data columns
    return shorten(code, removed, name=f"evenodd-n{n}")
