"""WEAVER codes: the non-MDS vertical baseline of Table II.

Hafner, "WEAVER codes: highly fault tolerant erasure codes for storage
systems" (FAST'05) — reference [14]. WEAVER(n, k=1, t=3) stores one data
symbol and one parity symbol per disk; the parity on disk ``i`` is the
XOR of the data symbols of disks ``i + o`` for a fixed offset set ``o``.

Properties (all verified in tests):

* 3-fault tolerant for every supported ``n``;
* *optimal update complexity* — each data symbol feeds exactly 3
  parities, like TIP;
* storage efficiency fixed at 50% — the "very low" entry of the paper's
  Table II, and the reason WEAVER's full-stripe writes cost far more than
  an MDS code's.

The offset sets below were found by exhaustive search with the
framework's 3-fault decodability check (Hafner's paper lists designs of
the same shape); the constructor falls back to a live search for sizes
not in the table.
"""

from __future__ import annotations

import itertools

from repro.codes.base import ArrayCode, Cell, Position

__all__ = ["WeaverCode", "make_weaver"]

#: Verified offset sets for WEAVER(n, 1, 3).
_KNOWN_OFFSETS: dict[int, tuple[int, ...]] = {
    6: (2, 3, 4),
    7: (1, 2, 6),
}
_DEFAULT_OFFSETS: tuple[int, ...] = (1, 2, 4)  # valid for every n >= 8


def _build(n: int, offsets: tuple[int, ...]) -> tuple[
    dict[Position, Cell], dict[Position, tuple[Position, ...]]
]:
    kinds: dict[Position, Cell] = {(1, i): Cell.PARITY for i in range(n)}
    chains = {
        (1, i): tuple((0, (i + o) % n) for o in offsets) for i in range(n)
    }
    return kinds, chains


class WeaverCode(ArrayCode):
    """WEAVER(n, 1, 3): one data + one parity symbol per disk."""

    def __init__(self, n: int, offsets: tuple[int, ...] | None = None) -> None:
        if n < 6:
            raise ValueError(f"WEAVER(n,1,3) needs n >= 6, got {n}")
        if offsets is None:
            offsets = _KNOWN_OFFSETS.get(n, _DEFAULT_OFFSETS)
            if n >= 8:
                offsets = _DEFAULT_OFFSETS
        self.offsets = tuple(offsets)
        kinds, chains = _build(n, self.offsets)
        super().__init__(
            name=f"weaver-n{n}", rows=2, cols=n, kinds=kinds, chains=chains,
            faults=3,
        )
        if not self.is_mds():
            # "MDS" here means the fault-tolerance check: every triple of
            # columns decodable. Search for a working offset set.
            found = self._search_offsets(n)
            if found is None:
                raise ValueError(f"no WEAVER(n=1,t=3) design found for n={n}")
            self.offsets = found
            kinds, chains = _build(n, found)
            super().__init__(
                name=f"weaver-n{n}", rows=2, cols=n, kinds=kinds,
                chains=chains, faults=3,
            )

    @staticmethod
    def _search_offsets(n: int) -> tuple[int, ...] | None:
        for candidate in itertools.combinations(range(1, n), 3):
            kinds, chains = _build(n, candidate)
            try:
                code = ArrayCode("probe", 2, n, kinds, chains, faults=3)
            except ValueError:
                continue
            if code.is_mds():
                return candidate
        return None


def make_weaver(n: int) -> WeaverCode:
    """WEAVER(n, 1, 3) for ``n >= 6`` disks."""
    return WeaverCode(n)
