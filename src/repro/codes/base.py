"""The array-code framework: element grids, parity chains, bit matrices.

Every XOR code compared in the TIP paper fits one model:

* a stripe is a ``rows x cols`` grid of *elements* (Sec. III terminology);
  a column is a disk; an element is :attr:`Cell.DATA`, :attr:`Cell.PARITY`
  or :attr:`Cell.EMPTY` (a structural zero);
* each parity element is the XOR of a set of member elements — its *parity
  chain*. Members may themselves be parities (STAR's S1/S2 diagonals,
  Triple-Star's horizontal parities inside diagonal chains), which is
  exactly what creates the update-complexity problem the paper attacks.

From that description this module derives, with no per-code decoder logic:

* the generator bit matrix (Fig. 7) and parity-check bit matrix (Fig. 8);
* a generic encoder following the chains' topological order;
* a generic decoder that solves the erased-column linear system by
  inverting the relevant parity-check submatrix (Fig. 9), optimized with
  bit-matrix scheduling (Sec. IV-C1) and optional iterative reconstruction
  (Sec. IV-C2);
* update-penalty closures for the write-complexity analysis of Sec. VI-B;
* exhaustive MDS verification.

Specialized decoders (e.g. TIP's algebraic cross-pattern decoder) live in
their code's module and are checked against this generic path in tests.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass
from enum import IntEnum
from functools import cached_property

import numpy as np

from repro.bitmatrix import (
    CompiledPlan,
    XorSchedule,
    bm_inv,
    bm_mul,
    bm_rank,
    fuse_stages,
    smart_schedule,
)

__all__ = [
    "Cell",
    "Position",
    "ArrayCode",
    "Decoder",
    "shorten",
    "DEFAULT_DECODER_CACHE_SIZE",
]

#: Default cap on per-code cached decoders. Each decoder holds a solved
#: recovery system plus its compiled plans; exhaustive MDS sweeps over a
#: large code visit C(n, faults) failure sets, so an unbounded cache would
#: retain every one of them for the code's lifetime.
DEFAULT_DECODER_CACHE_SIZE = 64

Position = tuple[int, int]
"""Grid coordinate ``(row, col)`` of an element."""


class Cell(IntEnum):
    """Role of a grid element."""

    DATA = 0
    PARITY = 1
    EMPTY = 2


class ArrayCode:
    """An XOR array code defined by a grid of cells and parity chains.

    Args:
        name: human-readable identifier (used by the registry/benchmarks).
        rows: elements per disk (the word size ``w`` of Sec. IV-A).
        cols: number of disks ``n``.
        kinds: mapping of position to :class:`Cell` for PARITY and EMPTY
            cells; unlisted positions are DATA.
        chains: mapping of each parity position to the tuple of member
            positions whose XOR equals the parity.
        faults: number of arbitrary whole-disk failures the code claims to
            tolerate (3 for the codes in this paper, 2 for the RAID-6
            substrates).
        decoder_cache_size: LRU cap on cached per-failure-set decoders
            (least recently used decoders are evicted beyond this).

    Subclasses populate ``kinds``/``chains`` from the published encoding
    equations and pass them here; this class owns all generic machinery.
    """

    def __init__(
        self,
        name: str,
        rows: int,
        cols: int,
        kinds: dict[Position, Cell],
        chains: dict[Position, tuple[Position, ...]],
        faults: int = 3,
        decoder_cache_size: int = DEFAULT_DECODER_CACHE_SIZE,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("rows and cols must be positive")
        if faults <= 0 or faults >= cols:
            raise ValueError(f"faults must be in 1..cols-1, got {faults}")
        if decoder_cache_size <= 0:
            raise ValueError("decoder_cache_size must be positive")
        self.name = name
        self.rows = rows
        self.cols = cols
        self.faults = faults
        self._grid = np.full((rows, cols), Cell.DATA, dtype=np.int8)
        for (row, col), kind in kinds.items():
            self._check_pos(row, col)
            self._grid[row, col] = kind
        self.chains: dict[Position, tuple[Position, ...]] = {}
        for parity, members in chains.items():
            self.chains[parity] = tuple(members)
        self._validate()
        self.decoder_cache_size = decoder_cache_size
        self._decoder_cache: OrderedDict[tuple[int, ...], Decoder] = (
            OrderedDict()
        )
        # Plan caches that outlive decoder eviction: solving the recovery
        # system (bit-matrix inversion + scheduling) and lowering it to a
        # CompiledPlan are the expensive parts of building a Decoder, and
        # both are pure functions of (failure set[, column subset]). When
        # the decoder LRU evicts and later re-creates a Decoder, these
        # hand back the solved/compiled artifacts instead of re-paying
        # the algebra. Caps scale with the decoder cache so exhaustive
        # MDS sweeps stay bounded.
        self._recovery_plan_cache: OrderedDict[tuple[int, ...], _RecoveryPlan]
        self._recovery_plan_cache = OrderedDict()
        self._compiled_plan_cache: OrderedDict[tuple, CompiledPlan]
        self._compiled_plan_cache = OrderedDict()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _check_pos(self, row: int, col: int) -> None:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(
                f"position ({row},{col}) outside {self.rows}x{self.cols} grid"
            )

    def _validate(self) -> None:
        parity_cells = {
            (r, c)
            for r in range(self.rows)
            for c in range(self.cols)
            if self._grid[r, c] == Cell.PARITY
        }
        if set(self.chains) != parity_cells:
            missing = parity_cells - set(self.chains)
            extra = set(self.chains) - parity_cells
            raise ValueError(
                f"chain/parity mismatch: missing chains {sorted(missing)}, "
                f"chains on non-parity cells {sorted(extra)}"
            )
        for parity, members in self.chains.items():
            if len(set(members)) != len(members):
                raise ValueError(f"duplicate members in chain of {parity}")
            for row, col in members:
                self._check_pos(row, col)
                if self._grid[row, col] == Cell.EMPTY:
                    raise ValueError(
                        f"chain of {parity} references EMPTY cell ({row},{col})"
                    )
                if (row, col) == parity:
                    raise ValueError(f"chain of {parity} references itself")
        # The parity dependency graph must be acyclic so encoding is
        # well-defined; encoding_order raises on cycles.
        self.encoding_order  # noqa: B018 - evaluated for its validation

    def kind(self, row: int, col: int) -> Cell:
        """Return the role of the element at ``(row, col)``."""
        self._check_pos(row, col)
        return Cell(int(self._grid[row, col]))

    @property
    def n(self) -> int:
        """Number of disks."""
        return self.cols

    @property
    def k(self) -> int:
        """Equivalent number of data disks: ``num_data / rows``."""
        return self.num_data // self.rows

    @cached_property
    def data_positions(self) -> tuple[Position, ...]:
        """Data cells in logical (row-major) order.

        This order defines logical block addressing: consecutive logical
        chunks occupy consecutive data cells of a row, then wrap to the
        next row — standard striping, and the meaning of "consecutive"
        in the paper's partial-stripe-write experiments.
        """
        return tuple(
            (r, c)
            for r in range(self.rows)
            for c in range(self.cols)
            if self._grid[r, c] == Cell.DATA
        )

    @cached_property
    def parity_positions(self) -> tuple[Position, ...]:
        """Parity cells in row-major order."""
        return tuple(
            (r, c)
            for r in range(self.rows)
            for c in range(self.cols)
            if self._grid[r, c] == Cell.PARITY
        )

    @property
    def num_data(self) -> int:
        """Number of data elements per stripe."""
        return len(self.data_positions)

    @property
    def num_parity(self) -> int:
        """Number of parity elements per stripe."""
        return len(self.parity_positions)

    @cached_property
    def nonempty_positions(self) -> tuple[Position, ...]:
        """All stored (non-EMPTY) cells, in per-disk (column-major) order —
        the codeword order of Figs. 7-8."""
        return tuple(
            (r, c)
            for c in range(self.cols)
            for r in range(self.rows)
            if self._grid[r, c] != Cell.EMPTY
        )

    @cached_property
    def storage_efficiency(self) -> float:
        """Fraction of stored elements that hold data (1 - overhead)."""
        return self.num_data / len(self.nonempty_positions)

    @property
    def is_storage_optimal(self) -> bool:
        """True iff the parity volume is the MDS minimum: ``faults`` disks'
        worth. Together with :meth:`is_mds` (decodability of every
        ``faults``-column erasure) this is the full MDS property; non-MDS
        codes like WEAVER pass the decodability check but fail this one.
        """
        return self.num_data == (self.cols - self.faults) * self.rows - sum(
            1
            for r in range(self.rows)
            for c in range(self.cols)
            if self._grid[r, c] == Cell.EMPTY
        )

    @cached_property
    def encoding_order(self) -> tuple[Position, ...]:
        """Parity positions in dependency (topological) order.

        A parity whose chain contains another parity must be computed
        after it. Raises ValueError if the chains are cyclic.
        """
        order: list[Position] = []
        state: dict[Position, int] = {}  # 0 visiting, 1 done

        def visit(parity: Position, stack: tuple[Position, ...]) -> None:
            status = state.get(parity)
            if status == 1:
                return
            if status == 0:
                raise ValueError(f"cyclic parity chains through {parity}")
            state[parity] = 0
            for member in self.chains[parity]:
                if self._grid[member] == Cell.PARITY:
                    visit(member, stack + (parity,))
            state[parity] = 1
            order.append(parity)

        for parity in self.chains:
            visit(parity, ())
        return tuple(order)

    @cached_property
    def expanded_chains(self) -> dict[Position, frozenset[Position]]:
        """Each parity as a pure-data XOR set (transitively expanded).

        Expansion uses symmetric difference: a data element reached an even
        number of times cancels, exactly as the XORs would.
        """
        expanded: dict[Position, frozenset[Position]] = {}
        for parity in self.encoding_order:
            terms: set[Position] = set()
            for member in self.chains[parity]:
                if self._grid[member] == Cell.PARITY:
                    terms ^= expanded[member]
                else:
                    terms ^= {member}
            expanded[parity] = frozenset(terms)
        return expanded

    # ------------------------------------------------------------------
    # bit matrices (Sec. IV)
    # ------------------------------------------------------------------
    @cached_property
    def element_index(self) -> dict[Position, int]:
        """Codeword index of every stored cell (per-disk order)."""
        return {pos: i for i, pos in enumerate(self.nonempty_positions)}

    @cached_property
    def data_index(self) -> dict[Position, int]:
        """Logical index of every data cell."""
        return {pos: i for i, pos in enumerate(self.data_positions)}

    def generator_matrix(self) -> np.ndarray:
        """The ``(stored elements) x (data elements)`` generator bit matrix.

        Row ``e`` gives the data elements whose XOR produces codeword
        element ``e`` (Fig. 7): a unit row for data cells, the expanded
        chain for parity cells.
        """
        total = len(self.nonempty_positions)
        out = np.zeros((total, self.num_data), dtype=np.uint8)
        expanded = self.expanded_chains
        for pos, row in self.element_index.items():
            if self._grid[pos] == Cell.DATA:
                out[row, self.data_index[pos]] = 1
            else:
                for member in expanded[pos]:
                    out[row, self.data_index[member]] = 1
        return out

    def parity_check_matrix(self) -> np.ndarray:
        """The ``(parity chains) x (stored elements)`` parity-check matrix.

        Each row has ones on a parity element and its (direct) chain
        members; every codeword satisfies ``H @ codeword = 0`` (Fig. 8).
        """
        chains = list(self.chains.items())
        out = np.zeros((len(chains), len(self.nonempty_positions)), dtype=np.uint8)
        index = self.element_index
        for row, (parity, members) in enumerate(chains):
            out[row, index[parity]] = 1
            for member in members:
                out[row, index[member]] ^= 1
        return out

    # ------------------------------------------------------------------
    # stripes of packets
    # ------------------------------------------------------------------
    def make_stripe(
        self, data_packets: list[np.ndarray] | np.ndarray, packet_size: int | None = None
    ) -> np.ndarray:
        """Assemble and encode a stripe from logical data packets.

        Args:
            data_packets: ``num_data`` equal-length uint8 packets in
                logical order (or a ``(num_data, packet_size)`` array).
            packet_size: required only when ``data_packets`` is empty.

        Returns:
            A ``(rows, cols, packet_size)`` uint8 stripe with parities
            computed.
        """
        packets = np.asarray(data_packets, dtype=np.uint8)
        if packets.ndim != 2 or packets.shape[0] != self.num_data:
            raise ValueError(
                f"need {self.num_data} data packets, got shape {packets.shape}"
            )
        size = packets.shape[1] if packet_size is None else packet_size
        stripe = np.zeros((self.rows, self.cols, size), dtype=np.uint8)
        for pos, packet in zip(self.data_positions, packets):
            stripe[pos[0], pos[1]] = packet
        self.encode(stripe)
        return stripe

    def random_stripe(
        self, packet_size: int = 16, seed: int | None = None
    ) -> np.ndarray:
        """Encode a stripe of random data (deterministic given ``seed``)."""
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 256, size=(self.num_data, packet_size), dtype=np.uint8)
        return self.make_stripe(data)

    def encode(self, stripe: np.ndarray) -> np.ndarray:
        """Fill all parity elements of ``stripe`` in place (Eqs. 1-3 etc.).

        Parities are evaluated in chain-dependency order so chained codes
        (STAR, Triple-Star) encode correctly.
        """
        self._check_stripe(stripe)
        for parity in self.encoding_order:
            acc = stripe[parity[0], parity[1]]
            acc[:] = 0
            for row, col in self.chains[parity]:
                np.bitwise_xor(acc, stripe[row, col], out=acc)
        return stripe

    def extract_data(self, stripe: np.ndarray) -> np.ndarray:
        """Return the ``(num_data, packet_size)`` logical data packets."""
        self._check_stripe(stripe)
        return np.stack([stripe[r, c] for r, c in self.data_positions])

    def verify_stripe(self, stripe: np.ndarray) -> bool:
        """True iff every parity chain XORs to zero and EMPTY cells are 0."""
        self._check_stripe(stripe)
        for row in range(self.rows):
            for col in range(self.cols):
                if self._grid[row, col] == Cell.EMPTY and stripe[row, col].any():
                    return False
        for parity, members in self.chains.items():
            acc = stripe[parity[0], parity[1]].copy()
            for row, col in members:
                np.bitwise_xor(acc, stripe[row, col], out=acc)
            if acc.any():
                return False
        return True

    def erase_columns(self, stripe: np.ndarray, failed: tuple[int, ...]) -> np.ndarray:
        """Zero the failed columns in place (simulating disk loss)."""
        self._check_stripe(stripe)
        for col in failed:
            if not 0 <= col < self.cols:
                raise ValueError(f"column {col} out of range")
            stripe[:, col, :] = 0
        return stripe

    def _check_stripe(self, stripe: np.ndarray) -> None:
        if (
            not isinstance(stripe, np.ndarray)
            or stripe.ndim != 3
            or stripe.shape[:2] != (self.rows, self.cols)
            or stripe.dtype != np.uint8
        ):
            raise ValueError(
                f"stripe must be uint8 of shape ({self.rows},{self.cols},S)"
            )

    # ------------------------------------------------------------------
    # decoding (Sec. IV-B / IV-C)
    # ------------------------------------------------------------------
    def decoder_for(self, failed: tuple[int, ...] | list[int]) -> "Decoder":
        """Build (or fetch from the LRU cache) the decoder for failed disks.

        The cache holds at most :attr:`decoder_cache_size` decoders per
        code, evicting the least recently used — exhaustive sweeps over
        every failure combination of a large code stay bounded while the
        handful of patterns a store or benchmark replays stay hot.
        """
        key = tuple(sorted(set(failed)))
        if not key:
            raise ValueError("need at least one failed column")
        if len(key) > self.faults:
            raise ValueError(
                f"{self.name} tolerates {self.faults} failures, got {len(key)}"
            )
        cache = self._decoder_cache
        decoder = cache.get(key)
        if decoder is None:
            decoder = Decoder(self, key)
            cache[key] = decoder
            while len(cache) > self.decoder_cache_size:
                cache.popitem(last=False)
        else:
            cache.move_to_end(key)
        return decoder

    def decode(
        self,
        stripe: np.ndarray,
        failed: tuple[int, ...] | list[int],
        iterative: bool = False,
    ) -> np.ndarray:
        """Reconstruct the failed columns of ``stripe`` in place.

        Args:
            stripe: stripe with the failed columns' contents arbitrary.
            failed: indices of the failed disks (at most ``faults``).
            iterative: use iterative reconstruction (Sec. IV-C2): recover
                one disk from the full system, then the remaining disks
                with the cheaper smaller-erasure schedule.
        """
        self._check_stripe(stripe)
        key = tuple(sorted(set(failed)))
        if iterative and len(key) > 1:
            first = key[0]
            self.decoder_for(key).decode_columns(stripe, only_cols=(first,))
            remaining = key[1:]
            self.decoder_for(remaining).decode_columns(stripe)
        else:
            self.decoder_for(key).decode_columns(stripe)
        return stripe

    def is_mds(self) -> bool:
        """Exhaustively verify ``faults``-disk decodability.

        Checks that for every combination of ``faults`` columns the erased
        unknowns are uniquely determined by the parity-check system (the
        criterion of Fig. 9: every coefficient matrix invertible).
        """
        h_matrix = self.parity_check_matrix()
        index = self.element_index
        for combo in itertools.combinations(range(self.cols), self.faults):
            unknown_cols = [
                index[(r, c)]
                for c in combo
                for r in range(self.rows)
                if self._grid[r, c] != Cell.EMPTY
            ]
            sub = h_matrix[:, unknown_cols]
            if bm_rank(sub) != len(unknown_cols):
                return False
        return True

    # ------------------------------------------------------------------
    # update-penalty analysis (substrate for Sec. VI-B)
    # ------------------------------------------------------------------
    @cached_property
    def _membership(self) -> dict[Position, tuple[Position, ...]]:
        """For each cell, the parities whose *direct* chain contains it."""
        out: dict[Position, list[Position]] = {}
        for parity, members in self.chains.items():
            for member in members:
                out.setdefault(member, []).append(parity)
        return {pos: tuple(parents) for pos, parents in out.items()}

    @cached_property
    def parity_dependents(self) -> dict[Position, tuple[Position, ...]]:
        """For each data cell, the parity cells whose *value* depends on it.

        Read straight off the generator matrix (Fig. 7): parity ``p``
        depends on data cell ``d`` iff the generator row of ``p`` has a one
        in column ``d``. This is the exact set a delta write must XOR
        through — change ``d`` by ``Δ`` and precisely these parities change
        (each by ``Δ`` as well, since the code is XOR-based).

        Subtly different from :meth:`update_penalty`: the penalty closure
        follows *direct chain membership* transitively, so a data element
        that reaches a chained parity an even number of times is still
        counted there, while it cancels out of the generator row (the
        parity's value does not actually change). Delta writes must use
        this map; the penalty closure is the paper's rewrite-cost metric.
        For independent-parity codes like TIP the two coincide.
        """
        dependents: dict[Position, list[Position]] = {
            pos: [] for pos in self.data_positions
        }
        generator = self.generator_matrix()
        index = self.element_index
        data_positions = self.data_positions
        for parity in self.parity_positions:
            row = generator[index[parity]]
            for data_idx in np.flatnonzero(row):
                dependents[data_positions[data_idx]].append(parity)
        return {pos: tuple(parities) for pos, parities in dependents.items()}

    def update_penalty(self, pos: Position) -> frozenset[Position]:
        """Parity elements that must be rewritten when ``pos`` changes.

        Follows chain membership transitively: if a horizontal parity
        participates in diagonal chains (Triple-Star) or a data element
        feeds an adjuster/S-diagonal (STAR, shortened TIP), the dependent
        parities are included — this closure is precisely the paper's
        notion of update cost.
        """
        if self._grid[pos] == Cell.EMPTY:
            raise ValueError(f"cell {pos} is EMPTY")
        affected: set[Position] = set()
        frontier = [pos]
        membership = self._membership
        while frontier:
            cell = frontier.pop()
            for parity in membership.get(cell, ()):
                if parity not in affected:
                    affected.add(parity)
                    frontier.append(parity)
        return frozenset(affected)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name}: n={self.cols} w={self.rows} "
            f"data={self.num_data} parity={self.num_parity} faults={self.faults}>"
        )


@dataclass
class _RecoveryPlan:
    """Solved linear system for one erasure pattern.

    ``schedule`` executes the dense recovery matrix directly — the
    interpreted reference (and the paper's decode XOR-count metric).
    ``fused_schedule`` computes the same bytes as a two-stage
    factorization, ``unknowns = inv(square) @ (H_known[pivots] @
    knowns)``: a sparse syndrome stage fused (:func:`fuse_stages`) with
    the dense back-substitution over those syndromes. The factored form
    typically needs ~2x fewer XORs than scheduling the dense product,
    because the density that ``bm_mul`` bakes into the recovery matrix
    never materializes; its outputs ``0..len(unknown_positions)-1``
    coincide with ``schedule``'s, so compiled consumers index
    ``unknown_positions`` identically.
    """

    unknown_positions: list[Position]
    known_positions: list[Position]
    matrix: np.ndarray  # unknowns = matrix @ knowns over GF(2)
    schedule: XorSchedule
    fused_schedule: XorSchedule


def _lru_get_or_set(cache, key, factory, cap):
    """Fetch ``key`` from an ``OrderedDict`` LRU, building via
    ``factory()`` and evicting the least recently used past ``cap``."""
    value = cache.get(key)
    if value is not None:
        cache.move_to_end(key)
        return value
    value = factory()
    cache[key] = value
    while len(cache) > cap:
        cache.popitem(last=False)
    return value


class Decoder:
    """Parity-check-matrix decoder for one set of failed columns (Fig. 9).

    Construction solves the bit-level system once; :meth:`decode_columns`
    then replays the resulting XOR schedule on packets, so repeated stripes
    with the same failure pattern pay no algebra.
    """

    def __init__(self, code: ArrayCode, failed: tuple[int, ...]) -> None:
        self.code = code
        self.failed = failed
        # 4x the decoder cap so solved systems outlive decoder eviction
        # (the point of the cache) while staying bounded for MDS sweeps.
        self.plan = _lru_get_or_set(
            code._recovery_plan_cache,
            failed,
            self._solve,
            4 * code.decoder_cache_size,
        )

    def _solve(self) -> _RecoveryPlan:
        code = self.code
        failed_set = set(self.failed)
        unknown_positions = [
            pos for pos in code.nonempty_positions if pos[1] in failed_set
        ]
        known_positions = [
            pos for pos in code.nonempty_positions if pos[1] not in failed_set
        ]
        h_matrix = code.parity_check_matrix()
        index = code.element_index
        unknown_cols = [index[pos] for pos in unknown_positions]
        known_cols = [index[pos] for pos in known_positions]
        h_unknown = h_matrix[:, unknown_cols]
        h_known = h_matrix[:, known_cols]
        pivot_rows = self._independent_rows(h_unknown, len(unknown_positions))
        if pivot_rows is None:
            raise ValueError(
                f"{code.name}: failure of columns {self.failed} is not decodable"
            )
        square = h_unknown[pivot_rows, :]
        # unknowns = inv(square) @ (h_known[pivot_rows] @ knowns): the
        # syndromes of Fig. 9 followed by the coefficient-matrix inverse.
        syndrome_matrix = np.ascontiguousarray(h_known[pivot_rows, :])
        inverse = bm_inv(square)
        recovery = bm_mul(inverse, syndrome_matrix)
        schedule = smart_schedule(recovery)
        # Two-stage factorization for the compiled engine: schedule each
        # factor separately (the syndrome stage is sparse — parity-check
        # rows, not their dense product) and fuse. Syndromes that are
        # identically zero (their check touches no surviving element)
        # produce no ops, so drop their back-substitution columns.
        back_sub = inverse.copy()
        zero_syndromes = ~syndrome_matrix.any(axis=1)
        if zero_syndromes.any():
            back_sub[:, zero_syndromes] = 0
        fused = fuse_stages(
            smart_schedule(syndrome_matrix), smart_schedule(back_sub)
        )
        return _RecoveryPlan(
            unknown_positions, known_positions, recovery, schedule, fused
        )

    @staticmethod
    def _independent_rows(matrix: np.ndarray, needed: int) -> list[int] | None:
        """Return indices of ``needed`` rows forming a full-rank square, or
        None if the matrix's rank is insufficient."""
        work = matrix.astype(np.uint8).copy()
        rows, cols = work.shape
        if needed > rows or needed != cols:
            return None
        chosen: list[int] = []
        available = list(range(rows))
        for col in range(cols):
            pivot = next((r for r in available if work[r, col]), None)
            if pivot is None:
                return None
            chosen.append(pivot)
            available.remove(pivot)
            for r in available:
                if work[r, col]:
                    work[r] ^= work[pivot]
        return chosen

    @property
    def xor_count(self) -> int:
        """Packet XORs of the dense recovery schedule (the paper's decode
        cost metric; the interpreted engine executes exactly this)."""
        return self.plan.schedule.xor_count

    @property
    def fused_xor_count(self) -> int:
        """Packet XORs of the fused two-stage schedule the compiled
        engine executes (before per-subset DCE)."""
        return self.plan.fused_schedule.xor_count

    @property
    def num_recovered(self) -> int:
        """Elements reconstructed per stripe."""
        return len(self.plan.unknown_positions)

    def compiled_plan(
        self, only_cols: tuple[int, ...] | None = None
    ) -> CompiledPlan:
        """The compiled recovery plan, cached per recovered-column subset.

        Compiles the *fused two-stage* schedule (syndromes + back-
        substitution in one blocked sweep) — byte-identical to the dense
        ``plan.schedule`` but typically ~2x fewer XORs. The fused
        schedule's trailing syndrome outputs are never requested, so DCE
        lowers them into recycled workspace rows; the plan's ``outputs``
        stay indices into ``plan.unknown_positions``. With ``only_cols``,
        compilation further eliminates the steps feeding other columns'
        elements. Compilation happens once per ``(code, failure set,
        subset)`` — repeated degraded reads and rebuilds replay the same
        plan. The cache lives on the code, not the decoder, so it
        survives decoder-LRU eviction: a re-created decoder for a
        recently seen failure set skips schedule lowering entirely.
        """
        key = tuple(sorted(set(only_cols))) if only_cols is not None else None

        def lower() -> CompiledPlan:
            num_unknowns = len(self.plan.unknown_positions)
            if key is None:
                needed = range(num_unknowns)
            else:
                needed = [
                    i
                    for i, pos in enumerate(self.plan.unknown_positions)
                    if pos[1] in key
                ]
            return self.plan.fused_schedule.compile(needed)

        return _lru_get_or_set(
            self.code._compiled_plan_cache,
            (self.failed, key),
            lower,
            4 * self.code.decoder_cache_size,
        )

    def recovered_positions(
        self, only_cols: tuple[int, ...] | None = None
    ) -> list[Position]:
        """Positions :meth:`decode_columns` writes for this subset."""
        plan = self.compiled_plan(only_cols)
        return [self.plan.unknown_positions[i] for i in plan.outputs]

    def decode_columns(
        self,
        stripe: np.ndarray,
        only_cols: tuple[int, ...] | None = None,
        workers: int = 1,
        tile_bytes: int | None = None,
    ) -> None:
        """Reconstruct erased elements of ``stripe`` in place.

        Runs the compiled recovery plan directly into the stripe's erased
        element buffers — no intermediate packet allocation. Byte-
        identical to replaying ``plan.schedule.apply`` and copying the
        results back.

        Args:
            stripe: the damaged stripe.
            only_cols: if given, write back only these columns' elements
                (used by iterative reconstruction to recover one disk from
                the full-system solution).
            workers: fan the packet width out over this many processes
                (see :mod:`repro.codec.parallel`); 1 = in-process.
            tile_bytes: cache-tile override for the compiled plan.
        """
        compiled = self.compiled_plan(only_cols)
        positions = [
            self.plan.unknown_positions[i] for i in compiled.outputs
        ]
        if not positions:
            return
        knowns = [stripe[r, c] for r, c in self.plan.known_positions]
        outs = [stripe[r, c] for r, c in positions]
        if workers > 1:
            from repro.codec.parallel import parallel_execute

            parallel_execute(
                compiled, knowns, outs, workers=workers, tile_bytes=tile_bytes
            )
        else:
            compiled.execute_into(knowns, outs, tile_bytes=tile_bytes)


def shorten(
    code: ArrayCode,
    remove_cols: tuple[int, ...] | list[int],
    name: str | None = None,
) -> ArrayCode:
    """Codeword shortening (Sec. VII): drop all-data columns.

    The removed columns' elements are fixed at zero and deleted from every
    chain; remaining columns are renumbered left to right. Valid only when
    each removed column contains no parity elements — TIP needs the
    adjuster construction instead (see :func:`repro.codes.tip.make_tip`).

    Returns a standalone :class:`ArrayCode` over the surviving columns.
    """
    removed = sorted(set(remove_cols))
    for col in removed:
        if not 0 <= col < code.cols:
            raise ValueError(f"column {col} out of range")
        for row in range(code.rows):
            if code.kind(row, col) == Cell.PARITY:
                raise ValueError(
                    f"column {col} holds parity at row {row}; plain shortening "
                    f"only removes all-data columns"
                )
    if code.cols - len(removed) <= code.faults:
        raise ValueError("cannot shorten below faults + 1 columns")
    col_map = {}
    new_col = 0
    for col in range(code.cols):
        if col not in removed:
            col_map[col] = new_col
            new_col += 1

    def translate(pos: Position) -> Position | None:
        row, col = pos
        if col in col_map:
            return (row, col_map[col])
        return None

    kinds: dict[Position, Cell] = {}
    for row in range(code.rows):
        for col in range(code.cols):
            kind = code.kind(row, col)
            if col in col_map and kind != Cell.DATA:
                kinds[(row, col_map[col])] = kind
    chains: dict[Position, tuple[Position, ...]] = {}
    for parity, members in code.chains.items():
        new_parity = translate(parity)
        assert new_parity is not None  # removed columns are all-data
        new_members = tuple(
            translated
            for member in members
            if (translated := translate(member)) is not None
        )
        chains[new_parity] = new_members
    return ArrayCode(
        name=name or f"{code.name}-shortened{code.cols - len(removed)}",
        rows=code.rows,
        cols=code.cols - len(removed),
        kinds=kinds,
        chains=chains,
        faults=code.faults,
    )
