"""STAR code: EVENODD extended to triple-fault tolerance.

Huang & Xu, "STAR: an efficient coding scheme for correcting triple
storage node failures" (IEEE ToC 2008) — reference [19] and the primary
XOR-based MDS baseline of the TIP paper.

Layout: ``(p-1) x (p+3)``; columns ``0..p-1`` data, column ``p``
horizontal parity, ``p+1`` diagonal parity, ``p+2`` anti-diagonal parity.
Both the diagonal and anti-diagonal parity columns carry an EVENODD-style
adjuster (``S1`` and ``S2``, Fig. 1 of the TIP paper): every diagonal
parity element XORs in the whole ``S1`` diagonal, so a write to an
S1-diagonal data element dirties *all* ``p-1`` diagonal parities — the
update-complexity problem quantified in Fig. 1(d).
"""

from __future__ import annotations

from repro._util import is_prime
from repro.codes.base import ArrayCode, Cell, Position, shorten
from repro.codes.evenodd import anti_s_diagonal, s_diagonal

__all__ = ["StarCode", "make_star"]


class StarCode(ArrayCode):
    """STAR over ``p + 3`` disks (``p`` an odd prime), 3-fault tolerant."""

    def __init__(self, p: int) -> None:
        if not is_prime(p) or p < 3:
            raise ValueError(f"STAR requires an odd prime p, got {p}")
        self.p = p
        rows = p - 1
        kinds: dict[Position, Cell] = {}
        chains: dict[Position, tuple[Position, ...]] = {}
        s1 = s_diagonal(p)
        s2 = anti_s_diagonal(p)
        for i in range(rows):
            kinds[(i, p)] = Cell.PARITY
            kinds[(i, p + 1)] = Cell.PARITY
            kinds[(i, p + 2)] = Cell.PARITY
            chains[(i, p)] = tuple((i, j) for j in range(p))
            diagonal = tuple(
                ((i - j) % p, j) for j in range(p) if (i - j) % p != p - 1
            )
            chains[(i, p + 1)] = diagonal + s1
            anti = tuple(
                ((i + j) % p, j) for j in range(p) if (i + j) % p != p - 1
            )
            chains[(i, p + 2)] = anti + s2
        super().__init__(
            name=f"star-p{p}", rows=rows, cols=p + 3, kinds=kinds,
            chains=chains, faults=3,
        )


def make_star(n: int) -> ArrayCode:
    """STAR for ``n`` disks via shortening of the smallest fitting prime."""
    if n < 4:
        raise ValueError(f"STAR needs n >= 4, got {n}")
    p = 3
    while p + 3 < n or not is_prime(p):
        p += 2
    code = StarCode(p)
    if p + 3 == n:
        return code
    removed = tuple(range(n - 3, p))
    return shorten(code, removed, name=f"star-n{n}")
