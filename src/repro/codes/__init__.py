"""Erasure-code constructions.

The framework (:mod:`repro.codes.base`) expresses every array code as an
element grid plus parity chains, from which it derives the generator and
parity-check bit matrices (Sec. IV of the TIP paper), a generic scheduled
decoder, update-penalty analysis, and MDS verification.

Constructions:

* :mod:`repro.codes.tip` — **TIP-code**, the paper's contribution.
* :mod:`repro.codes.star` — STAR (Huang & Xu), EVENODD extension.
* :mod:`repro.codes.triple_star` — Triple-Star (Wang et al.).
* :mod:`repro.codes.cauchy` — Cauchy Reed-Solomon (Bloemer et al.).
* :mod:`repro.codes.hdd1` — HDD1 (Tau & Wang), reconstructed.
* :mod:`repro.codes.evenodd`, :mod:`repro.codes.rdp` — RAID-6 substrates.
* :mod:`repro.codes.reed_solomon` — classic word-based RS over GF(2^8).
"""

from repro.codes.base import ArrayCode, Cell, Decoder, shorten
from repro.codes.registry import make_code, available_codes, CODE_FAMILIES

__all__ = [
    "ArrayCode",
    "Cell",
    "Decoder",
    "shorten",
    "make_code",
    "available_codes",
    "CODE_FAMILIES",
]
