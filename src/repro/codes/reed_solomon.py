"""Classic word-based Reed-Solomon over GF(2^8).

Reed & Solomon (1960) — reference [33]. The TIP paper uses RS as the
example of a code whose *computational* cost (Galois-field multiply per
byte) rather than I/O cost limits performance; it is excluded from the
XOR-complexity figures but included here as the library's general-purpose
``(n, k)`` erasure code and as a correctness oracle for the structured
codes.

Unlike the :class:`~repro.codes.base.ArrayCode` family this codec works on
whole per-disk packets (one symbol column per disk) with a systematic
Vandermonde generator.
"""

from __future__ import annotations

import numpy as np

from repro.gf import GF2w, systematic_vandermonde

__all__ = ["ReedSolomonCode"]


class ReedSolomonCode:
    """Systematic RS over GF(2^8): ``k`` data disks, ``m`` parity disks."""

    def __init__(self, n: int, m: int = 3) -> None:
        if m <= 0 or n <= m:
            raise ValueError(f"need n > m > 0, got n={n} m={m}")
        if n > 255:
            raise ValueError("GF(2^8) RS supports at most 255 disks")
        self.n = n
        self.m = m
        self.k = n - m
        self.field = GF2w(8)
        self.generator = systematic_vandermonde(self.field, n, self.k)
        self.faults = m

    def encode(self, data: np.ndarray) -> np.ndarray:
        """Encode ``k`` data packets into ``n`` codeword packets.

        Args:
            data: ``(k, packet_size)`` uint8 array.

        Returns:
            ``(n, packet_size)`` uint8 array; rows ``0..k-1`` equal the
            input (systematic code).
        """
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[0] != self.k:
            raise ValueError(f"expected ({self.k}, S) data, got {data.shape}")
        out = np.zeros((self.n, data.shape[1]), dtype=np.uint8)
        out[: self.k] = data
        for row in range(self.k, self.n):
            acc = out[row]
            for col in range(self.k):
                coeff = int(self.generator[row, col])
                if coeff:
                    np.bitwise_xor(
                        acc, self.field.mul_region(coeff, data[col]), out=acc
                    )
        return out

    def decode(self, shards: np.ndarray, erased: list[int]) -> np.ndarray:
        """Reconstruct the full codeword from any ``>= k`` surviving shards.

        Args:
            shards: ``(n, packet_size)`` array whose ``erased`` rows are
                garbage/zero.
            erased: indices of the lost shards (at most ``m``).

        Returns:
            The repaired ``(n, packet_size)`` codeword array (a new array;
            the input is not modified).
        """
        erased_set = set(erased)
        if len(erased_set) > self.m:
            raise ValueError(f"cannot repair {len(erased_set)} > m={self.m} losses")
        shards = np.asarray(shards, dtype=np.uint8)
        if shards.ndim != 2 or shards.shape[0] != self.n:
            raise ValueError(f"expected ({self.n}, S) shards, got {shards.shape}")
        survivors = [i for i in range(self.n) if i not in erased_set][: self.k]
        sub = self.generator[survivors, :]
        inverse = self.field.mat_inv(sub)
        # data[j] = sum_i inverse[j][i] * shards[survivors[i]]
        out = shards.copy()
        data = np.zeros((self.k, shards.shape[1]), dtype=np.uint8)
        for j in range(self.k):
            acc = data[j]
            for i, row in enumerate(survivors):
                coeff = int(inverse[j, i])
                if coeff:
                    np.bitwise_xor(
                        acc, self.field.mul_region(coeff, shards[row]), out=acc
                    )
        out[: self.k] = data
        for row in range(self.k, self.n):
            if row in erased_set:
                acc = np.zeros(shards.shape[1], dtype=np.uint8)
                for col in range(self.k):
                    coeff = int(self.generator[row, col])
                    if coeff:
                        np.bitwise_xor(
                            acc, self.field.mul_region(coeff, data[col]), out=acc
                        )
                out[row] = acc
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ReedSolomonCode n={self.n} k={self.k} m={self.m} GF(2^8)>"
