"""GF(2) bit-matrix linear algebra and XOR scheduling.

The TIP paper implements every compared code in the *bit matrix* framework
(Sec. IV): encoding multiplies a generator bit matrix by the data vector,
decoding solves the linear system defined by the parity-check matrix's
erased columns. This subpackage provides that machinery:

* :mod:`repro.bitmatrix.ops` — dense GF(2) matrices as numpy uint8 arrays
  with multiplication, inversion, rank and solving.
* :mod:`repro.bitmatrix.schedule` — *bit matrix scheduling* (Plank,
  FAST'08, the paper's [28] and Sec. IV-C1): turning a matrix-vector
  product into an XOR schedule that reuses intermediate results to lower
  the XOR count.
* :mod:`repro.bitmatrix.plan` — compiled execution: schedules lowered to
  flat zero-allocation plans (in-place XORs, dead-code elimination,
  liveness-based workspace reuse, cache-blocked tiling) for the
  steady-state encode/decode/rebuild hot paths.
"""

from repro.bitmatrix.ops import (
    bm_mul,
    bm_mat_vec,
    bm_inv,
    bm_rank,
    bm_solve,
    bm_identity,
    bm_is_invertible,
)
from repro.bitmatrix.plan import CompiledPlan, compile_schedule, round_tile_bytes
from repro.bitmatrix.schedule import (
    XorSchedule,
    fuse_stages,
    naive_schedule,
    smart_schedule,
)
from repro.bitmatrix.tuning import HostProfile, host_profile, set_host_profile

__all__ = [
    "CompiledPlan",
    "compile_schedule",
    "round_tile_bytes",
    "HostProfile",
    "host_profile",
    "set_host_profile",
    "fuse_stages",
    "bm_mul",
    "bm_mat_vec",
    "bm_inv",
    "bm_rank",
    "bm_solve",
    "bm_identity",
    "bm_is_invertible",
    "XorSchedule",
    "naive_schedule",
    "smart_schedule",
]
