"""XOR scheduling for bit-matrix products (Sec. IV-C1 of the TIP paper).

A bit-matrix/vector product over packets computes each output packet as
the XOR of the input packets selected by the ones of its row. Done
naively, a row with ``o`` ones costs ``o - 1`` XORs. *Bit matrix
scheduling* (Plank, "The RAID-6 Liberation codes", FAST'08) lowers the
total by deriving an output from an already-computed output that shares
most of its terms: if a computed row ``b`` differs from the target row in
``d`` bit positions, the target costs ``d`` XORs instead of ``o - 1``.

:func:`smart_schedule` implements a greedy version of that optimization;
it provably reaches the optimal schedule whenever rows form chains that
differ pairwise in few positions — which covers the "at most 2 erasures on
data disks" cases the paper singles out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "XorOp",
    "XorSchedule",
    "naive_schedule",
    "smart_schedule",
    "fuse_stages",
]


@dataclass(frozen=True)
class XorOp:
    """One step of a schedule: ``dest (op)= source``.

    ``source_kind`` is ``"in"`` (an input packet) or ``"out"`` (an already
    computed output packet); ``assign`` True means plain copy (the first
    term), False means XOR-accumulate.
    """

    dest: int
    source_kind: str
    source: int
    assign: bool


@dataclass
class XorSchedule:
    """An executable XOR program computing ``matrix @ inputs`` over GF(2).

    Attributes:
        num_inputs: number of input packets expected.
        num_outputs: number of output packets produced.
        ops: the program; XOR cost is the number of non-assign ops.
    """

    num_inputs: int
    num_outputs: int
    ops: list[XorOp] = field(default_factory=list)

    @property
    def xor_count(self) -> int:
        """Number of packet XOR operations the schedule performs."""
        return sum(1 for op in self.ops if not op.assign)

    def apply(self, inputs: list[np.ndarray]) -> list[np.ndarray]:
        """Execute the schedule on numpy packets; returns output packets."""
        if len(inputs) != self.num_inputs:
            raise ValueError(
                f"expected {self.num_inputs} input packets, got {len(inputs)}"
            )
        if not inputs:
            return [None] * self.num_outputs  # type: ignore[list-item]
        outputs: list[np.ndarray | None] = [None] * self.num_outputs
        shape, dtype = inputs[0].shape, inputs[0].dtype
        for op in self.ops:
            source = (
                inputs[op.source]
                if op.source_kind == "in"
                else outputs[op.source]
            )
            if source is None:
                raise RuntimeError(f"schedule uses output {op.source} before set")
            if op.assign:
                outputs[op.dest] = source.copy()
            else:
                dest = outputs[op.dest]
                if dest is None:
                    raise RuntimeError(f"XOR into unset output {op.dest}")
                np.bitwise_xor(dest, source, out=dest)
        for idx, out in enumerate(outputs):
            if out is None:  # all-zero row: produce a zero packet
                outputs[idx] = np.zeros(shape, dtype=dtype)
        return outputs  # type: ignore[return-value]

    def apply_bits(self, bits: np.ndarray) -> np.ndarray:
        """Execute the schedule on a plain 0/1 vector (for verification)."""
        packets = [np.array([b], dtype=np.uint8) for b in bits]
        return np.array([p[0] for p in self.apply(packets)], dtype=np.uint8)

    def compile(self, needed_outputs: list[int] | tuple[int, ...] | None = None):
        """Lower to a :class:`~repro.bitmatrix.plan.CompiledPlan`.

        The compiled plan executes the same XOR program with zero
        per-step allocation (in-place ``out=`` ops into preallocated
        buffers), cache-blocked tiling, and — when ``needed_outputs``
        restricts the result — dead-code elimination plus workspace reuse
        for the intermediate outputs that remain. Output bytes are
        identical to :meth:`apply`.
        """
        from repro.bitmatrix.plan import CompiledPlan

        return CompiledPlan(self, needed_outputs)


def naive_schedule(matrix: np.ndarray) -> XorSchedule:
    """Schedule computing each output row independently, left to right."""
    matrix = np.asarray(matrix, dtype=np.uint8)
    rows, cols = matrix.shape
    schedule = XorSchedule(num_inputs=cols, num_outputs=rows)
    for row in range(rows):
        first = True
        for col in range(cols):
            if matrix[row, col]:
                schedule.ops.append(XorOp(row, "in", col, assign=first))
                first = False
    return schedule


def fuse_stages(first: XorSchedule, second: XorSchedule) -> XorSchedule:
    """Fuse two schedules where ``second``'s inputs are ``first``'s outputs.

    The fused program reads ``first``'s inputs and produces
    ``second``'s outputs at indices ``0..second.num_outputs-1``;
    ``first``'s outputs ride along as trailing outputs (indices
    ``second.num_outputs..``) so the result is still a complete,
    independently executable :class:`XorSchedule`. Compiling the fusion
    with ``needed_outputs=range(second.num_outputs)`` dead-code-
    eliminates the trailing intermediates into recycled workspace rows —
    one blocked sweep instead of two full passes with a materialized
    intermediate matrix between them.

    This is how the decoder joins its sparse syndrome stage to the dense
    back-substitution stage: each cache tile computes syndromes and
    consumes them while they are still resident.

    ``second`` must not read an input that ``first`` never writes (an
    all-zero first-stage row produces no ops); callers zero the
    corresponding columns of the second stage's matrix before
    scheduling it.
    """
    if second.num_inputs != first.num_outputs:
        raise ValueError(
            f"stage mismatch: first produces {first.num_outputs} outputs, "
            f"second expects {second.num_inputs} inputs"
        )
    offset = second.num_outputs
    written = {op.dest for op in first.ops}
    fused = XorSchedule(
        num_inputs=first.num_inputs,
        num_outputs=offset + first.num_outputs,
    )
    for op in first.ops:
        source = op.source if op.source_kind == "in" else op.source + offset
        fused.ops.append(XorOp(op.dest + offset, op.source_kind, source, op.assign))
    for op in second.ops:
        if op.source_kind == "in":
            if op.source not in written:
                raise ValueError(
                    f"second stage reads input {op.source}, which the "
                    f"first stage never writes (all-zero row); zero that "
                    f"column of the second stage's matrix instead"
                )
            fused.ops.append(XorOp(op.dest, "out", op.source + offset, op.assign))
        else:
            fused.ops.append(XorOp(op.dest, "out", op.source, op.assign))
    return fused


def smart_schedule(matrix: np.ndarray) -> XorSchedule:
    """Greedy bit-matrix scheduling.

    At each step, choose the uncomputed output row whose cheapest
    derivation (from scratch, or by patching any already computed output
    row) costs the fewest XORs, and emit that derivation. Patching a base
    row ``b`` into target ``t`` costs ``hamming(b, t)`` XORs plus a copy.
    """
    matrix = np.asarray(matrix, dtype=np.uint8)
    rows, cols = matrix.shape
    schedule = XorSchedule(num_inputs=cols, num_outputs=rows)
    remaining = set(range(rows))
    computed: list[int] = []
    row_ones = matrix.sum(axis=1)

    while remaining:
        best: tuple[int, int, int | None] | None = None  # (cost, target, base)
        for target in remaining:
            scratch_cost = max(int(row_ones[target]) - 1, 0)
            cost, base = scratch_cost, None
            for done in computed:
                distance = int(np.bitwise_xor(matrix[target], matrix[done]).sum())
                if distance < cost:
                    cost, base = distance, done
            if best is None or cost < best[0]:
                best = (cost, target, base)
        assert best is not None
        _, target, base = best
        remaining.discard(target)
        if base is None:
            first = True
            for col in range(cols):
                if matrix[target, col]:
                    schedule.ops.append(XorOp(target, "in", col, assign=first))
                    first = False
        else:
            schedule.ops.append(XorOp(target, "out", base, assign=True))
            diff = np.bitwise_xor(matrix[target], matrix[base])
            for col in range(cols):
                if diff[col]:
                    schedule.ops.append(XorOp(target, "in", col, assign=False))
        if row_ones[target]:
            computed.append(target)
    return schedule
