"""Compiled XOR plans: run-fused, wide-word, cache-blocked execution.

:meth:`XorSchedule.apply` is the *interpreted* reference executor: it
allocates a fresh packet per assign step and a zero packet per empty row,
which is fine for verification but wasteful on the steady-state encode /
decode / rebuild paths where the same schedule runs thousands of times
over large buffers. :class:`CompiledPlan` lowers a schedule once into a
flat program that executes with **zero per-step allocation**:

* **dead-code elimination**: when only a subset of outputs is needed
  (``Decoder.decode_columns(only_cols=...)``), steps that feed no needed
  output are dropped entirely;
* **liveness-based workspace reuse**: outputs that are only intermediate
  bases for other outputs live in a small workspace arena whose slots are
  recycled once their last reader has run;
* **run fusion**: consecutive ops sharing a destination lower into one
  *run* — a multi-source XOR accumulate. A run with sources
  ``s1 ^ s2 ^ ... ^ sk`` opens with the three-address form
  ``bitwise_xor(s1, s2, out=dest)`` instead of ``copyto`` + XOR, saving
  one full memory pass over the destination per run and one numpy
  dispatch;
* **wide-word execution**: 8-byte-aligned spans execute as ``uint64``
  views (numpy moves whole machine words per element either way, but the
  8x-shorter loops cut per-op shape handling); ragged widths fall back
  to ``uint8`` only for the sub-8-byte tail span;
* **measured cache blocking**: execution is chunked into column tiles
  sized from the host calibration in :mod:`repro.bitmatrix.tuning` —
  the measured effective cache divided by the plan's row footprint,
  floored so per-call dispatch overhead stays amortized — instead of a
  hard-coded footprint guess. All tile boundaries are 64-byte multiples
  so ``uint64`` views never fall back mid-sweep; an explicit
  ``tile_bytes`` is rounded **up** to the next 64-byte multiple.

Plans are self-contained and picklable, which is what lets
:mod:`repro.codec.parallel` ship them to worker processes that execute
disjoint column ranges of shared-memory buffers.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.bitmatrix.tuning import host_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.bitmatrix.schedule import XorSchedule

__all__ = ["CompiledPlan", "compile_schedule", "round_tile_bytes"]

#: Buffer codes used in lowered ops: input packet, output row, workspace.
BUF_IN, BUF_OUT, BUF_WS = 0, 1, 2

#: All tile boundaries are multiples of this, so every interior tile of
#: an 8-aligned buffer stays ``uint64``-viewable (and cache-line whole).
TILE_ALIGN = 64

#: Auto-tile clamp range (both 64-byte multiples).
_TILE_MIN = 32 << 10
_TILE_MAX = 4 << 20

#: The auto tile is floored so measured per-call dispatch overhead is at
#: most ~1/this of the cached per-op XOR time.
_DISPATCH_AMORTIZE = 16

#: Below this width, building per-row ``uint64`` views costs more than
#: the shorter inner loops save; stay on the uint8 path.
_WIDE_WORD_MIN = 1 << 14


def round_tile_bytes(tile_bytes: int) -> int:
    """Round an explicit tile request **up** to a 64-byte multiple.

    The documented rule: tiles are always 64-byte multiples so that
    8-byte-aligned buffers never lose their ``uint64`` view mid-sweep
    (and no tile splits a cache line). Non-positive requests are
    rejected rather than silently clamped.
    """
    if tile_bytes <= 0:
        raise ValueError("tile_bytes must be positive")
    return -(-tile_bytes // TILE_ALIGN) * TILE_ALIGN


def compile_schedule(
    schedule: "XorSchedule",
    needed_outputs: Sequence[int] | None = None,
) -> "CompiledPlan":
    """Lower ``schedule`` to a :class:`CompiledPlan`.

    Args:
        schedule: the XOR program to lower.
        needed_outputs: schedule output indices that must be produced;
            ``None`` means all of them. Steps feeding only unneeded
            outputs are eliminated.
    """
    return CompiledPlan(schedule, needed_outputs)


class CompiledPlan:
    """A lowered XOR program executing into caller-provided buffers.

    Attributes:
        num_inputs: input packets the plan consumes.
        outputs: schedule output indices produced, in the row order of the
            ``outputs`` buffer passed to :meth:`execute_into`.
        num_workspace: arena rows needed for intermediate outputs (after
            liveness-based slot reuse).
        ops: the lowered program as ``(dest_buf, dest_idx, src_buf,
            src_idx, assign)`` tuples with buffer codes ``BUF_IN`` /
            ``BUF_OUT`` / ``BUF_WS``.
    """

    def __init__(
        self,
        schedule: "XorSchedule",
        needed_outputs: Sequence[int] | None = None,
    ) -> None:
        self.num_inputs = schedule.num_inputs
        if needed_outputs is None:
            needed = tuple(range(schedule.num_outputs))
        else:
            needed = tuple(sorted(set(needed_outputs)))
            for out in needed:
                if not 0 <= out < schedule.num_outputs:
                    raise ValueError(
                        f"needed output {out} outside 0..{schedule.num_outputs - 1}"
                    )
        self.outputs: tuple[int, ...] = needed
        self._lower(schedule, needed)
        self._ws_local = threading.local()

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def _lower(self, schedule: "XorSchedule", needed: tuple[int, ...]) -> None:
        # Dead-code elimination, backwards: a step survives iff its dest
        # is needed or (transitively) feeds a needed output as a base.
        required = set(needed)
        keep = [False] * len(schedule.ops)
        for i in range(len(schedule.ops) - 1, -1, -1):
            op = schedule.ops[i]
            if op.dest in required:
                keep[i] = True
                if op.source_kind == "out":
                    required.add(op.source)
        kept = [op for op, k in zip(schedule.ops, keep) if k]

        # Needed outputs map to rows of the caller's output buffer; the
        # remaining required outputs (pure intermediates) get workspace
        # slots, recycled after their final read/write.
        out_row = {out: row for row, out in enumerate(needed)}
        last_event: dict[int, int] = {}
        for idx, op in enumerate(kept):
            if op.dest not in out_row:
                last_event[op.dest] = idx
            if op.source_kind == "out" and op.source not in out_row:
                last_event[op.source] = idx

        ws_slot: dict[int, int] = {}
        free_slots: list[int] = []
        num_slots = 0
        ops: list[tuple[int, int, int, int, bool]] = []
        written: set[int] = set()
        for idx, op in enumerate(kept):
            if op.dest in out_row:
                dbuf, didx = BUF_OUT, out_row[op.dest]
            else:
                slot = ws_slot.get(op.dest)
                if slot is None:
                    if free_slots:
                        slot = free_slots.pop()
                    else:
                        slot = num_slots
                        num_slots += 1
                    ws_slot[op.dest] = slot
                dbuf, didx = BUF_WS, slot
            if op.source_kind == "in":
                sbuf, sidx = BUF_IN, op.source
            elif op.source in out_row:
                sbuf, sidx = BUF_OUT, out_row[op.source]
            else:
                sbuf, sidx = BUF_WS, ws_slot[op.source]
            ops.append((dbuf, didx, sbuf, sidx, op.assign))
            written.add(op.dest)
            # Recycle workspace slots whose output has no later use.
            for out in (op.dest, op.source if op.source_kind == "out" else None):
                if (
                    out is not None
                    and out in ws_slot
                    and last_event.get(out) == idx
                ):
                    free_slots.append(ws_slot.pop(out))

        self.ops = ops
        self.num_workspace = num_slots
        # Needed outputs never written are all-zero rows: memset targets.
        self.zero_rows: tuple[int, ...] = tuple(
            row for out, row in out_row.items() if out not in written
        )
        self.runs = self._fuse_runs(ops)

    @staticmethod
    def _fuse_runs(
        ops: list[tuple[int, int, int, int, bool]],
    ) -> list[tuple]:
        """Group the flat op list into multi-source accumulate runs.

        Each run is ``(dest, head, sources)`` with ``dest`` a
        ``(buffer, index)`` pair, ``head`` the assigning source (or
        ``None`` for a run that re-accumulates into an already-written
        destination), and ``sources`` the XOR-accumulated ``(buffer,
        index)`` pairs. A new run opens on every assign and whenever the
        destination changes — two distinct intermediates recycled into
        the same workspace slot can never merge, because the second one
        always begins with an assign.
        """
        runs: list[tuple] = []
        current: tuple[int, int] | None = None
        for dbuf, didx, sbuf, sidx, assign in ops:
            dest = (dbuf, didx)
            if assign:
                runs.append((dest, (sbuf, sidx), []))
                current = dest
            elif dest == current and runs:
                runs[-1][2].append((sbuf, sidx))
            else:  # accumulate into a dest this program never assigned
                runs.append((dest, None, [(sbuf, sidx)]))
                current = dest
        return [
            (dest, head, tuple(sources)) for dest, head, sources in runs
        ]

    # ------------------------------------------------------------------
    @property
    def xor_count(self) -> int:
        """Packet XORs per execution (excludes copies), after DCE."""
        return sum(1 for op in self.ops if not op[4])

    @property
    def memory_passes(self) -> int:
        """Full-width buffer sweeps per execution after run fusion.

        Each XOR source is streamed once; a run's head costs nothing
        extra (the opening three-address XOR folds it into the first
        accumulate) unless the run is a bare copy. The roofline stage of
        ``bench_engine.py`` uses this to convert payload throughput into
        achieved XOR-stream bandwidth.
        """
        passes = 0
        for _dest, head, sources in self.runs:
            if sources:
                passes += len(sources) + (head is not None)
            else:
                passes += 2  # bare copy: read head, write dest
        return passes

    def default_tile(self, width: int) -> int:
        """Tile width (bytes) from the measured host calibration.

        The measured effective cache divided by the plan's total row
        footprint, floored so per-call dispatch overhead stays under
        ~1/:data:`_DISPATCH_AMORTIZE` of cached per-op XOR time, clamped
        to [:data:`_TILE_MIN`, :data:`_TILE_MAX`] and rounded to a
        64-byte multiple. Hosts whose caches swallow the whole working
        set naturally get large tiles (fewer dispatches); small-cache
        hosts get tiles that actually fit.
        """
        rows = self.num_inputs + len(self.outputs) + self.num_workspace
        profile = host_profile()
        cache_tile = profile.effective_cache_bytes // max(rows, 1)
        floor = int(
            profile.dispatch_overhead_s
            * profile.xor_cached_gib_s
            * (1 << 30)
            * _DISPATCH_AMORTIZE
        )
        tile = min(max(cache_tile, floor, _TILE_MIN), _TILE_MAX)
        if width > 0:
            tile = min(tile, -(-width // TILE_ALIGN) * TILE_ALIGN)
        return max(tile - tile % TILE_ALIGN, TILE_ALIGN)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @staticmethod
    def _as_rows(
        buffers: np.ndarray | Sequence[np.ndarray], count: int, what: str
    ) -> list[np.ndarray]:
        """Normalize a 2-D matrix or sequence of 1-D packets to row views."""
        if isinstance(buffers, np.ndarray):
            if buffers.ndim != 2:
                raise ValueError(
                    f"{what} matrix must be 2-D, got shape {buffers.shape}"
                )
            rows = list(buffers)
        else:
            rows = list(buffers)
        if len(rows) != count:
            raise ValueError(f"expected {count} {what} rows, got {len(rows)}")
        width: int | None = None
        for i, row in enumerate(rows):
            if not isinstance(row, np.ndarray) or row.ndim != 1:
                raise ValueError(f"{what} row {i} must be a 1-D numpy array")
            if row.dtype != np.uint8:
                raise ValueError(
                    f"{what} row {i} must have dtype uint8, got {row.dtype}"
                )
            if width is None:
                width = row.shape[0]
            elif row.shape[0] != width:
                raise ValueError(
                    f"{what} row {i} has width {row.shape[0]}, row 0 has "
                    f"{width}; all rows must match"
                )
        return rows

    def execute(
        self,
        inputs: np.ndarray | Sequence[np.ndarray],
        tile_bytes: int | None = None,
    ) -> np.ndarray:
        """Run the plan, allocating and returning the output matrix."""
        ins = self._as_rows(inputs, self.num_inputs, "input")
        width = ins[0].shape[0] if ins else 0
        out = np.empty((len(self.outputs), width), dtype=np.uint8)
        self.execute_into(ins, out, tile_bytes=tile_bytes)
        return out

    def execute_into(
        self,
        inputs: np.ndarray | Sequence[np.ndarray],
        outputs: np.ndarray | Sequence[np.ndarray],
        tile_bytes: int | None = None,
    ) -> None:
        """Run the plan into caller-owned output rows, tile by tile.

        ``inputs`` / ``outputs`` are 2-D uint8 matrices or sequences of
        equal-width 1-D uint8 packets; output rows are overwritten in
        place and must not alias input rows. ``tile_bytes`` overrides the
        auto-chosen cache tile (``None`` = auto).
        """
        ins = self._as_rows(inputs, self.num_inputs, "input")
        outs = self._as_rows(outputs, len(self.outputs), "output")
        if not outs:
            return
        width = outs[0].shape[0]
        if ins and ins[0].shape[0] != width:
            raise ValueError(
                f"input width {ins[0].shape[0]} != output width {width}"
            )
        for row in self.zero_rows:
            outs[row][:] = 0
        if not self.runs:
            return
        if tile_bytes is None:
            tile = self.default_tile(width)
        else:
            tile = round_tile_bytes(tile_bytes)
        ws_rows = list(self._workspace(min(tile, width)))
        runs = self.runs
        wide = (
            width >= _WIDE_WORD_MIN
            and _rows_u64_viewable(ins)
            and _rows_u64_viewable(outs)
            and _rows_u64_viewable(ws_rows)
        )
        for lo in range(0, width, tile):
            hi = min(lo + tile, width)
            span = hi - lo
            if wide and span >= 8:
                # Tile starts are 64-byte multiples, so lo preserves the
                # rows' 8-byte base alignment; only the final tile can
                # carry a ragged sub-8-byte tail.
                w8 = span - (span & 7)
                self._run_tile(
                    (
                        [r[lo : lo + w8].view(np.uint64) for r in ins],
                        [r[lo : lo + w8].view(np.uint64) for r in outs],
                        [r[:w8].view(np.uint64) for r in ws_rows],
                    ),
                    runs,
                )
                if w8 != span:
                    self._run_tile(
                        (
                            [r[lo + w8 : hi] for r in ins],
                            [r[lo + w8 : hi] for r in outs],
                            [r[w8:span] for r in ws_rows],
                        ),
                        runs,
                    )
            else:
                self._run_tile(
                    (
                        [r[lo:hi] for r in ins],
                        [r[lo:hi] for r in outs],
                        [r[:span] for r in ws_rows],
                    ),
                    runs,
                )

    @staticmethod
    def _run_tile(bufs: tuple[list, list, list], runs: list[tuple]) -> None:
        """Execute the fused runs over one tile's resolved row views.

        ``bufs`` is indexed by buffer code (``BUF_IN``/``BUF_OUT``/
        ``BUF_WS``). Each run with a head opens with the three-address
        ``bitwise_xor(head, first_source, out=dest)`` — destination is
        written, never read — then chains in-place XOR accumulates.
        """
        xor = np.bitwise_xor
        for (dbuf, didx), head, sources in runs:
            dest = bufs[dbuf][didx]
            if head is not None:
                harr = bufs[head[0]][head[1]]
                if sources:
                    first = sources[0]
                    xor(harr, bufs[first[0]][first[1]], out=dest)
                    rest = sources[1:]
                else:
                    np.copyto(dest, harr)
                    continue
            else:
                rest = sources
            for sbuf, sidx in rest:
                xor(dest, bufs[sbuf][sidx], out=dest)

    def _workspace(self, tile: int) -> np.ndarray:
        """The reusable intermediate arena, grown on demand.

        Row width is rounded up to a 64-byte multiple so every workspace
        row stays 8-byte aligned (``uint64``-viewable) regardless of the
        requested tile. The arena is **thread-local**: plans are cached
        and shared (``ArrayCode._compiled_plan_cache``, the store's
        decoder), so concurrent ``execute_into`` calls — e.g. degraded
        writes to two different stripes under their own stripe locks —
        must not share intermediate syndrome rows. A shared arena lets
        one thread overwrite another's partial syndromes, yielding a
        silently wrong (but parity-consistent, scrub-clean) decode.
        """
        if self.num_workspace == 0:
            return _EMPTY_WS
        want = -(-tile // TILE_ALIGN) * TILE_ALIGN
        ws = getattr(self._ws_local, "arena", None)
        if ws is None or ws.shape[1] < want:
            ws = np.empty((self.num_workspace, want), dtype=np.uint8)
            self._ws_local.arena = ws
        return ws

    # ------------------------------------------------------------------
    # pickling (the workspace arena is per-process scratch, not state)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_ws_local"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._ws_local = threading.local()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompiledPlan in={self.num_inputs} out={len(self.outputs)} "
            f"ws={self.num_workspace} ops={len(self.ops)} "
            f"xors={self.xor_count}>"
        )


_EMPTY_WS = np.empty((0, 0), dtype=np.uint8)


def _rows_u64_viewable(rows: Sequence[np.ndarray]) -> bool:
    """True when every row is contiguous and 8-byte aligned at its base.

    Tile offsets are 64-byte multiples, so base alignment is the only
    per-row condition needed for interior ``uint64`` views."""
    return all(
        row.strides[0] == 1 and row.ctypes.data % 8 == 0 for row in rows
    )
