"""Compiled XOR plans: zero-allocation, cache-blocked schedule execution.

:meth:`XorSchedule.apply` is the *interpreted* reference executor: it
allocates a fresh packet per assign step and a zero packet per empty row,
which is fine for verification but wasteful on the steady-state encode /
decode / rebuild paths where the same schedule runs thousands of times
over large buffers. :class:`CompiledPlan` lowers a schedule once into a
flat program that executes with **zero per-step allocation**:

* every XOR runs as ``numpy.bitwise_xor(dest, src, out=dest)`` on
  preallocated buffers; assigns are ``numpy.copyto`` into caller-owned
  output rows (no intermediate ``ndarray.copy()``);
* **dead-code elimination**: when only a subset of outputs is needed
  (``Decoder.decode_columns(only_cols=...)``), steps that feed no needed
  output are dropped entirely;
* **liveness-based workspace reuse**: outputs that are only intermediate
  bases for other outputs live in a small workspace arena whose slots are
  recycled once their last reader has run;
* **cache blocking**: execution is chunked into column tiles so the full
  set of input/output/workspace rows for one tile stays cache-resident
  while each tile's XOR chain runs — on wide buffers this keeps the hot
  working set out of DRAM.

Plans are self-contained and picklable, which is what lets
:mod:`repro.codec.parallel` ship them to worker processes that execute
disjoint column ranges of shared-memory buffers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.bitmatrix.schedule import XorSchedule

__all__ = ["CompiledPlan", "compile_schedule"]

#: Buffer codes used in lowered ops: input packet, output row, workspace.
BUF_IN, BUF_OUT, BUF_WS = 0, 1, 2

#: Aggregate tile footprint (all rows of one tile) the auto-tiler aims
#: for. Large enough that per-tile Python dispatch overhead is amortized,
#: small enough that one tile's rows fit comfortably in the outer cache
#: levels of every machine we care about.
_TILE_TARGET_BYTES = 32 << 20

#: Auto-tile clamp range; tiles are multiples of 4 KiB (packet alignment).
_TILE_MIN = 32 << 10
_TILE_MAX = 1 << 20


def compile_schedule(
    schedule: "XorSchedule",
    needed_outputs: Sequence[int] | None = None,
) -> "CompiledPlan":
    """Lower ``schedule`` to a :class:`CompiledPlan`.

    Args:
        schedule: the XOR program to lower.
        needed_outputs: schedule output indices that must be produced;
            ``None`` means all of them. Steps feeding only unneeded
            outputs are eliminated.
    """
    return CompiledPlan(schedule, needed_outputs)


class CompiledPlan:
    """A lowered XOR program executing into caller-provided buffers.

    Attributes:
        num_inputs: input packets the plan consumes.
        outputs: schedule output indices produced, in the row order of the
            ``outputs`` buffer passed to :meth:`execute_into`.
        num_workspace: arena rows needed for intermediate outputs (after
            liveness-based slot reuse).
        ops: the lowered program as ``(dest_buf, dest_idx, src_buf,
            src_idx, assign)`` tuples with buffer codes ``BUF_IN`` /
            ``BUF_OUT`` / ``BUF_WS``.
    """

    def __init__(
        self,
        schedule: "XorSchedule",
        needed_outputs: Sequence[int] | None = None,
    ) -> None:
        self.num_inputs = schedule.num_inputs
        if needed_outputs is None:
            needed = tuple(range(schedule.num_outputs))
        else:
            needed = tuple(sorted(set(needed_outputs)))
            for out in needed:
                if not 0 <= out < schedule.num_outputs:
                    raise ValueError(
                        f"needed output {out} outside 0..{schedule.num_outputs - 1}"
                    )
        self.outputs: tuple[int, ...] = needed
        self._lower(schedule, needed)
        self._ws: np.ndarray | None = None

    # ------------------------------------------------------------------
    # lowering
    # ------------------------------------------------------------------
    def _lower(self, schedule: "XorSchedule", needed: tuple[int, ...]) -> None:
        # Dead-code elimination, backwards: a step survives iff its dest
        # is needed or (transitively) feeds a needed output as a base.
        required = set(needed)
        keep = [False] * len(schedule.ops)
        for i in range(len(schedule.ops) - 1, -1, -1):
            op = schedule.ops[i]
            if op.dest in required:
                keep[i] = True
                if op.source_kind == "out":
                    required.add(op.source)
        kept = [op for op, k in zip(schedule.ops, keep) if k]

        # Needed outputs map to rows of the caller's output buffer; the
        # remaining required outputs (pure intermediates) get workspace
        # slots, recycled after their final read/write.
        out_row = {out: row for row, out in enumerate(needed)}
        last_event: dict[int, int] = {}
        for idx, op in enumerate(kept):
            if op.dest not in out_row:
                last_event[op.dest] = idx
            if op.source_kind == "out" and op.source not in out_row:
                last_event[op.source] = idx

        ws_slot: dict[int, int] = {}
        free_slots: list[int] = []
        num_slots = 0
        ops: list[tuple[int, int, int, int, bool]] = []
        written: set[int] = set()
        for idx, op in enumerate(kept):
            if op.dest in out_row:
                dbuf, didx = BUF_OUT, out_row[op.dest]
            else:
                slot = ws_slot.get(op.dest)
                if slot is None:
                    if free_slots:
                        slot = free_slots.pop()
                    else:
                        slot = num_slots
                        num_slots += 1
                    ws_slot[op.dest] = slot
                dbuf, didx = BUF_WS, slot
            if op.source_kind == "in":
                sbuf, sidx = BUF_IN, op.source
            elif op.source in out_row:
                sbuf, sidx = BUF_OUT, out_row[op.source]
            else:
                sbuf, sidx = BUF_WS, ws_slot[op.source]
            ops.append((dbuf, didx, sbuf, sidx, op.assign))
            written.add(op.dest)
            # Recycle workspace slots whose output has no later use.
            for out in (op.dest, op.source if op.source_kind == "out" else None):
                if (
                    out is not None
                    and out in ws_slot
                    and last_event.get(out) == idx
                ):
                    free_slots.append(ws_slot.pop(out))

        self.ops = ops
        self.num_workspace = num_slots
        # Needed outputs never written are all-zero rows: memset targets.
        self.zero_rows: tuple[int, ...] = tuple(
            row for out, row in out_row.items() if out not in written
        )

    # ------------------------------------------------------------------
    @property
    def xor_count(self) -> int:
        """Packet XORs per execution (excludes copies), after DCE."""
        return sum(1 for op in self.ops if not op[4])

    def default_tile(self, width: int) -> int:
        """Tile width (bytes) targeting a cache-resident per-tile footprint."""
        rows = self.num_inputs + len(self.outputs) + self.num_workspace
        tile = _TILE_TARGET_BYTES // max(rows, 1)
        tile -= tile % 4096
        return int(min(max(tile, _TILE_MIN), _TILE_MAX, max(width, 1)))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @staticmethod
    def _as_rows(
        buffers: np.ndarray | Sequence[np.ndarray], count: int, what: str
    ) -> list[np.ndarray]:
        """Normalize a 2-D matrix or sequence of 1-D packets to row views."""
        if isinstance(buffers, np.ndarray):
            if buffers.ndim != 2:
                raise ValueError(
                    f"{what} matrix must be 2-D, got shape {buffers.shape}"
                )
            rows = list(buffers)
        else:
            rows = list(buffers)
        if len(rows) != count:
            raise ValueError(f"expected {count} {what} rows, got {len(rows)}")
        width: int | None = None
        for i, row in enumerate(rows):
            if not isinstance(row, np.ndarray) or row.ndim != 1:
                raise ValueError(f"{what} row {i} must be a 1-D numpy array")
            if row.dtype != np.uint8:
                raise ValueError(
                    f"{what} row {i} must have dtype uint8, got {row.dtype}"
                )
            if width is None:
                width = row.shape[0]
            elif row.shape[0] != width:
                raise ValueError(
                    f"{what} row {i} has width {row.shape[0]}, row 0 has "
                    f"{width}; all rows must match"
                )
        return rows

    def execute(
        self,
        inputs: np.ndarray | Sequence[np.ndarray],
        tile_bytes: int | None = None,
    ) -> np.ndarray:
        """Run the plan, allocating and returning the output matrix."""
        ins = self._as_rows(inputs, self.num_inputs, "input")
        width = ins[0].shape[0] if ins else 0
        out = np.empty((len(self.outputs), width), dtype=np.uint8)
        self.execute_into(ins, out, tile_bytes=tile_bytes)
        return out

    def execute_into(
        self,
        inputs: np.ndarray | Sequence[np.ndarray],
        outputs: np.ndarray | Sequence[np.ndarray],
        tile_bytes: int | None = None,
    ) -> None:
        """Run the plan into caller-owned output rows, tile by tile.

        ``inputs`` / ``outputs`` are 2-D uint8 matrices or sequences of
        equal-width 1-D uint8 packets; output rows are overwritten in
        place and must not alias input rows. ``tile_bytes`` overrides the
        auto-chosen cache tile (``None`` = auto).
        """
        ins = self._as_rows(inputs, self.num_inputs, "input")
        outs = self._as_rows(outputs, len(self.outputs), "output")
        if not outs:
            return
        width = outs[0].shape[0]
        if ins and ins[0].shape[0] != width:
            raise ValueError(
                f"input width {ins[0].shape[0]} != output width {width}"
            )
        for row in self.zero_rows:
            outs[row][:] = 0
        if not self.ops:
            return
        if tile_bytes is None:
            tile = self.default_tile(width)
        elif tile_bytes <= 0:
            raise ValueError("tile_bytes must be positive")
        else:
            tile = tile_bytes
        ws = self._workspace(min(tile, width))
        ops = self.ops
        xor, copyto = np.bitwise_xor, np.copyto
        for lo in range(0, width, tile):
            hi = min(lo + tile, width)
            span = hi - lo
            for dbuf, didx, sbuf, sidx, assign in ops:
                if sbuf == BUF_IN:
                    src = ins[sidx][lo:hi]
                elif sbuf == BUF_OUT:
                    src = outs[sidx][lo:hi]
                else:
                    src = ws[sidx][:span]
                dest = outs[didx][lo:hi] if dbuf == BUF_OUT else ws[didx][:span]
                if assign:
                    copyto(dest, src)
                else:
                    xor(dest, src, out=dest)

    def _workspace(self, tile: int) -> np.ndarray:
        """The reusable intermediate arena, grown on demand."""
        if self.num_workspace == 0:
            return _EMPTY_WS
        ws = self._ws
        if ws is None or ws.shape[1] < tile:
            ws = np.empty((self.num_workspace, tile), dtype=np.uint8)
            self._ws = ws
        return ws

    # ------------------------------------------------------------------
    # pickling (the workspace arena is per-process scratch, not state)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_ws"] = None
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CompiledPlan in={self.num_inputs} out={len(self.outputs)} "
            f"ws={self.num_workspace} ops={len(self.ops)} "
            f"xors={self.xor_count}>"
        )


_EMPTY_WS = np.empty((0, 0), dtype=np.uint8)
