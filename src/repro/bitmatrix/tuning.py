"""Host memory-hierarchy calibration for the compiled XOR engine.

The compiled engine's tile size used to come from a hard-coded "32 MiB
aggregate footprint" heuristic — a guess about commodity cache sizes
that was wrong on both sides: on hosts with small effective caches it
thrashed, and on hosts where the whole working set fits a large L3 it
paid per-tile dispatch overhead for nothing. This module replaces the
guess with three one-time measurements:

* **streaming XOR bandwidth** — one in-place ``np.bitwise_xor`` over a
  buffer far larger than any cache. This is the roofline for XOR-bound
  kernels: a schedule that reads every source from DRAM can never beat
  it per op.
* **memcpy bandwidth** — ``np.copyto`` at the same size; the roofline
  for pure data movement (gather/scatter in the parallel fan-out).
* **effective cache size** — the largest working-set footprint whose
  repeated in-place XOR still runs clearly above the streaming rate.
  Virtualized hosts lie in ``/sys`` (a vCPU may see the machine's full
  L3 while being entitled to a slice), so we trust timing, not topology.
* **dispatch overhead** — the fixed per-``np.bitwise_xor``-call cost
  (ufunc setup + slicing), which puts a floor under useful tile sizes:
  below it, tiling time goes to the interpreter instead of the bus.

Results are cached per process in a :class:`HostProfile`;
:func:`host_profile` is what :meth:`CompiledPlan.default_tile` and the
roofline stage of ``benchmarks/bench_engine.py`` consume. Tests pin the
profile with :func:`set_host_profile` to make tile policy deterministic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "HostProfile",
    "host_profile",
    "set_host_profile",
    "measure_memcpy_gib_s",
    "measure_xor_gib_s",
    "measure_dispatch_overhead_s",
    "measure_effective_cache_bytes",
]

#: Buffer size for the streaming measurements: large enough to defeat
#: any per-core cache slice, small enough to allocate instantly.
_STREAM_BYTES = 32 << 20

#: Working-set ladder probed for the effective cache edge.
_CACHE_LADDER = (128 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20, 8 << 20)

#: A footprint counts as cache-resident when its repeated-XOR bandwidth
#: beats streaming by at least this factor; below it, reuse isn't
#: actually being served by a cache.
_CACHE_EDGE_RATIO = 1.3

_GIB = 1 << 30


@dataclass(frozen=True)
class HostProfile:
    """One host's measured memory/dispatch characteristics.

    Attributes:
        memcpy_gib_s: streaming ``np.copyto`` bandwidth.
        xor_gib_s: streaming in-place XOR bandwidth (bytes of destination
            per second; actual bus traffic is ~3x). The engine roofline.
        xor_cached_gib_s: the same XOR on a cache-resident working set —
            what a well-tiled kernel sees after first touch.
        dispatch_overhead_s: fixed seconds per numpy XOR call.
        effective_cache_bytes: largest measured cache-resident footprint.
    """

    memcpy_gib_s: float
    xor_gib_s: float
    xor_cached_gib_s: float
    dispatch_overhead_s: float
    effective_cache_bytes: int


_profile: HostProfile | None = None


def _best_seconds(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return max(best, 1e-9)


def measure_memcpy_gib_s(nbytes: int = _STREAM_BYTES, reps: int = 3) -> float:
    """Streaming ``np.copyto`` bandwidth in GiB/s."""
    src = np.ones(nbytes, dtype=np.uint8)
    dst = np.empty(nbytes, dtype=np.uint8)
    dst[:] = 0  # fault the pages outside the timed region
    return nbytes / _best_seconds(lambda: np.copyto(dst, src), reps) / _GIB


def measure_xor_gib_s(nbytes: int = _STREAM_BYTES, reps: int = 3) -> float:
    """Streaming in-place XOR bandwidth in GiB/s (destination bytes)."""
    src = np.full(nbytes, 0x5A, dtype=np.uint8)
    dst = np.ones(nbytes, dtype=np.uint8)
    return (
        nbytes
        / _best_seconds(lambda: np.bitwise_xor(dst, src, out=dst), reps)
        / _GIB
    )


def measure_dispatch_overhead_s(reps: int = 2000) -> float:
    """Fixed per-call cost of one tiny sliced numpy XOR.

    A 1 KiB in-place XOR is compute-free at memory speeds; what remains
    is ufunc dispatch plus the slice construction a tiled executor pays
    per op. That fixed cost is what caps how small a useful tile can be.
    """
    dst = np.ones(2048, dtype=np.uint8)
    src = np.full(2048, 0x5A, dtype=np.uint8)

    def one_op() -> None:
        np.bitwise_xor(dst[:1024], src[:1024], out=dst[:1024])

    one_op()  # warm the ufunc loop lookup
    start = time.perf_counter()
    for _ in range(reps):
        one_op()
    return max((time.perf_counter() - start) / reps, 1e-8)


def _footprint_xor_gib_s(footprint: int, reps: int = 3) -> float:
    """Repeated in-place XOR over a two-buffer working set of
    ``footprint`` bytes; cache-resident footprints run far above the
    streaming rate."""
    half = max(footprint // 2, 4096)
    dst = np.ones(half, dtype=np.uint8)
    src = np.full(half, 0x5A, dtype=np.uint8)
    sweeps = max(1, (8 << 20) // half)

    def run() -> None:
        for _ in range(sweeps):
            np.bitwise_xor(dst, src, out=dst)

    run()  # first touch outside the timed region
    return half * sweeps / _best_seconds(run, reps) / _GIB


def measure_effective_cache_bytes(
    stream_gib_s: float | None = None,
) -> tuple[int, float]:
    """Measured cache capacity as ``(bytes, cached_xor_gib_s)``.

    Walks the footprint ladder and returns the largest footprint that
    still beats streaming bandwidth by :data:`_CACHE_EDGE_RATIO`, plus
    the bandwidth observed at the smallest (fully resident) rung.
    """
    if stream_gib_s is None:
        stream_gib_s = measure_xor_gib_s()
    cached = _footprint_xor_gib_s(_CACHE_LADDER[0])
    edge = _CACHE_LADDER[0]
    for footprint in _CACHE_LADDER[1:]:
        rate = _footprint_xor_gib_s(footprint)
        if rate < _CACHE_EDGE_RATIO * stream_gib_s:
            break
        edge = footprint
    return edge, cached


def host_profile() -> HostProfile:
    """The cached per-process host calibration (measured on first call).

    Total measurement cost is tens of milliseconds, paid once; every
    subsequent call returns the cached profile.
    """
    global _profile
    if _profile is None:
        xor = measure_xor_gib_s()
        cache_bytes, cached_rate = measure_effective_cache_bytes(xor)
        _profile = HostProfile(
            memcpy_gib_s=measure_memcpy_gib_s(),
            xor_gib_s=xor,
            xor_cached_gib_s=cached_rate,
            dispatch_overhead_s=measure_dispatch_overhead_s(),
            effective_cache_bytes=cache_bytes,
        )
    return _profile


def set_host_profile(profile: HostProfile | None) -> None:
    """Pin (or with ``None`` reset) the cached profile — test hook."""
    global _profile
    _profile = profile
