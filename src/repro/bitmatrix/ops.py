"""Dense GF(2) matrix operations on numpy uint8 arrays.

All matrices are 2-D ``numpy.uint8`` arrays containing only 0/1. Addition
is XOR; multiplication is AND; a matrix product is the ordinary product
reduced mod 2. Matrices here are small (a stripe has at most a few hundred
elements), so dense Gaussian elimination is more than fast enough and far
easier to audit than bit-packing tricks.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "as_bitmatrix",
    "bm_identity",
    "bm_mul",
    "bm_mat_vec",
    "bm_rank",
    "bm_inv",
    "bm_is_invertible",
    "bm_solve",
]


def as_bitmatrix(matrix: np.ndarray) -> np.ndarray:
    """Validate and normalize a 0/1 matrix to ``uint8``."""
    out = np.asarray(matrix, dtype=np.uint8)
    if out.ndim != 2:
        raise ValueError(f"bit matrix must be 2-D, got shape {out.shape}")
    if not np.isin(out, (0, 1)).all():
        raise ValueError("bit matrix entries must be 0 or 1")
    return out


def bm_identity(size: int) -> np.ndarray:
    """Return the ``size x size`` identity bit matrix."""
    return np.eye(size, dtype=np.uint8)


def bm_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product over GF(2)."""
    a = as_bitmatrix(a)
    b = as_bitmatrix(b)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
    return (a.astype(np.int64) @ b.astype(np.int64) % 2).astype(np.uint8)


def bm_mat_vec(a: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Matrix-vector product over GF(2); ``v`` is a 1-D 0/1 vector."""
    a = as_bitmatrix(a)
    v = np.asarray(v, dtype=np.int64).ravel()
    if a.shape[1] != v.shape[0]:
        raise ValueError(f"shape mismatch: {a.shape} x {v.shape}")
    return ((a.astype(np.int64) @ v) % 2).astype(np.uint8)


def _eliminate(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Row-reduce a copy of ``matrix``; return (echelon form, pivot cols)."""
    work = as_bitmatrix(matrix).copy()
    rows, cols = work.shape
    pivots: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        pivot = next((r for r in range(row, rows) if work[r, col]), None)
        if pivot is None:
            continue
        if pivot != row:
            work[[row, pivot]] = work[[pivot, row]]
        below = [r for r in range(rows) if r != row and work[r, col]]
        if below:
            work[below] ^= work[row]
        pivots.append(col)
        row += 1
    return work, pivots


def bm_rank(matrix: np.ndarray) -> int:
    """Rank over GF(2)."""
    _, pivots = _eliminate(matrix)
    return len(pivots)


def bm_is_invertible(matrix: np.ndarray) -> bool:
    """True iff ``matrix`` is square and full-rank over GF(2)."""
    matrix = as_bitmatrix(matrix)
    return matrix.shape[0] == matrix.shape[1] and bm_rank(matrix) == matrix.shape[0]


def bm_inv(matrix: np.ndarray) -> np.ndarray:
    """Invert a square bit matrix (Gauss-Jordan on ``[M | I]``).

    Raises ValueError if singular. This is the decoder's coefficient-matrix
    inversion of Fig. 9 in the paper ("A typical algorithm to calculate
    H'^-1 is presented in [13]").
    """
    matrix = as_bitmatrix(matrix)
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    work = np.concatenate([matrix.copy(), bm_identity(size)], axis=1)
    for col in range(size):
        pivot = next((r for r in range(col, size) if work[r, col]), None)
        if pivot is None:
            raise ValueError("bit matrix is singular")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
        others = [r for r in range(size) if r != col and work[r, col]]
        if others:
            work[others] ^= work[col]
    return work[:, size:].copy()


def bm_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve ``matrix @ x = rhs`` over GF(2) for a square invertible matrix.

    ``rhs`` may be a vector or a matrix of stacked right-hand sides (one
    per column); the result has the same shape as ``rhs``. Solving via
    elimination on the augmented system avoids forming the inverse when
    only one solve is needed.
    """
    matrix = as_bitmatrix(matrix)
    size = matrix.shape[0]
    if matrix.shape != (size, size):
        raise ValueError(f"matrix must be square, got {matrix.shape}")
    rhs_arr = np.asarray(rhs, dtype=np.uint8)
    vector_input = rhs_arr.ndim == 1
    if vector_input:
        rhs_arr = rhs_arr.reshape(-1, 1)
    if rhs_arr.shape[0] != size:
        raise ValueError("rhs row count must match matrix size")
    work = np.concatenate([matrix.copy(), rhs_arr.copy()], axis=1)
    for col in range(size):
        pivot = next((r for r in range(col, size) if work[r, col]), None)
        if pivot is None:
            raise ValueError("bit matrix is singular")
        if pivot != col:
            work[[col, pivot]] = work[[pivot, col]]
        others = [r for r in range(size) if r != col and work[r, col]]
        if others:
            work[others] ^= work[col]
    solution = work[:, size:]
    return solution[:, 0].copy() if vector_input else solution.copy()
