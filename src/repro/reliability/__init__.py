"""Array reliability modeling — the quantitative case for 3DFTs.

The paper's introduction motivates triple-fault tolerance with field
studies showing concurrent disk failures are common at datacenter scale
[26][35]. This subpackage makes that argument runnable:

* :mod:`repro.reliability.markov` — closed-form MTTDL of an ``n``-disk
  array tolerating ``m`` failures (absorbing birth-death Markov chain
  with exponential failure/rebuild times);
* :mod:`repro.reliability.montecarlo` — discrete-event failure-injection
  simulation of the same process, cross-validating the Markov model and
  supporting non-instantaneous rebuild policies;
* :mod:`repro.reliability.distributions` — the shared lifetime and
  repair-time sampling laws (exponential, Weibull, fixed), consumed by
  both the single-array Monte Carlo and the fleet simulator
  (:mod:`repro.fleet`) so the two stay cross-validatable.
"""

from repro.reliability.distributions import (
    Distribution,
    Exponential,
    Fixed,
    Weibull,
    as_generator,
    make_distribution,
    spawn_generators,
)
from repro.reliability.markov import ArrayReliability, mttdl
from repro.reliability.montecarlo import MonteCarloResult, simulate_mttdl

__all__ = [
    "ArrayReliability",
    "Distribution",
    "Exponential",
    "Fixed",
    "MonteCarloResult",
    "Weibull",
    "as_generator",
    "make_distribution",
    "mttdl",
    "simulate_mttdl",
    "spawn_generators",
]
