"""Monte-Carlo failure injection cross-validating the Markov MTTDL model.

Simulates the exact stochastic process of :mod:`repro.reliability.markov`
(exponential failures, exponential rebuilds) with a discrete-event loop,
plus alternative rebuild laws the closed form cannot express (fixed
duration, Weibull). Used in tests to confirm the two models agree within
sampling error, by the fleet simulator's oracle test as the single-array
reference, and by the reliability example to show how drastically a
third parity extends MTTDL.

Sampling goes through :mod:`repro.reliability.distributions` — the same
laws the fleet simulator draws from — and the RNG is injectable: pass a
:class:`numpy.random.Generator` (or a :class:`numpy.random.SeedSequence`)
to run many arrays on independent spawned streams without any global
seeding.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.reliability.distributions import (
    Distribution,
    Exponential,
    Fixed,
    as_generator,
)

__all__ = ["MonteCarloResult", "simulate_mttdl"]


@dataclass
class MonteCarloResult:
    """Aggregate of the simulated data-loss times."""

    trials: int
    mean_hours: float
    min_hours: float
    max_hours: float
    #: Trials lost to an undetected latent sector error surfacing during
    #: a critical-state rebuild (0 unless the sector-error model is on).
    sector_losses: int = 0

    @property
    def mean_years(self) -> float:
        """Estimated MTTDL in years."""
        return self.mean_hours / (24 * 365)


def simulate_mttdl(
    disks: int,
    faults_tolerated: int,
    disk_mttf_hours: float = 1_000_000.0,
    rebuild_hours: float = 24.0,
    trials: int = 200,
    seed: int = 0,
    deterministic_rebuild: bool = False,
    latent_error_rate: float = 0.0,
    scrub_interval_hours: float = 0.0,
    latent_detection_fraction: float = 0.5,
    rng: np.random.Generator | np.random.SeedSequence | None = None,
    rebuild_time: Distribution | None = None,
) -> MonteCarloResult:
    """Estimate MTTDL by simulating the failure/rebuild process to loss.

    Args:
        disks: array width ``n``.
        faults_tolerated: survivable concurrent failures ``m``.
        disk_mttf_hours: per-disk exponential MTTF.
        rebuild_hours: mean (or fixed) rebuild duration.
        trials: independent runs to average.
        seed: RNG seed; results are deterministic given it. Ignored
            when ``rng`` is supplied.
        deterministic_rebuild: rebuilds take exactly ``rebuild_hours``
            instead of exponentially distributed time (shorthand for
            ``rebuild_time=Fixed(rebuild_hours)``).
        latent_error_rate: latent sector errors per disk per hour; 0
            (default) disables the sector-error model — the RNG stream,
            and therefore every seeded result, is identical to the
            pre-sector-model simulator.
        scrub_interval_hours: background scrub period bounding how long
            a latent error survives undetected (0 with a nonzero rate:
            never scrubbed).
        latent_detection_fraction: mean fraction of the scrub interval
            before detection (the scrubber's measured
            :meth:`~repro.faults.scrub.ScrubReport.detection_fraction`).
        rng: injected randomness — a ready ``numpy.random.Generator``
            (shared and advanced by this call) or a ``SeedSequence``
            to derive one. Fleet-level trials spawn one independent
            child per array and pass it here, so no caller ever touches
            global RNG state.
        rebuild_time: explicit rebuild-duration distribution from
            :mod:`repro.reliability.distributions`; overrides
            ``rebuild_hours``/``deterministic_rebuild`` when given.

    A critical-state rebuild (all redundancy spent) absorbs into data
    loss with the same probability the Markov model uses
    (:meth:`~repro.reliability.markov.ArrayReliability.
    critical_sector_loss_probability`), keeping the two models
    cross-validatable under identical parameters.
    """
    if disks <= faults_tolerated or faults_tolerated < 0:
        raise ValueError("need disks > faults_tolerated >= 0")
    if trials <= 0:
        raise ValueError("trials must be positive")
    from repro.reliability.markov import ArrayReliability

    sector_p = ArrayReliability(
        disks=disks,
        faults_tolerated=faults_tolerated,
        disk_mttf_hours=disk_mttf_hours,
        rebuild_hours=rebuild_hours,
        latent_error_rate=latent_error_rate,
        scrub_interval_hours=scrub_interval_hours,
        latent_detection_fraction=latent_detection_fraction,
    ).critical_sector_loss_probability()
    if rebuild_time is None:
        rebuild_time = (
            Fixed(rebuild_hours)
            if deterministic_rebuild
            else Exponential(rebuild_hours)
        )
    lifetime = Exponential(disk_mttf_hours)
    generator = as_generator(seed if rng is None else rng)
    losses: list[float] = []
    sector_losses = 0
    for _ in range(trials):
        hours, by_sector = _one_trial(
            generator, disks, faults_tolerated, lifetime,
            rebuild_time, sector_p,
        )
        losses.append(hours)
        sector_losses += by_sector
    return MonteCarloResult(
        trials=trials,
        mean_hours=sum(losses) / trials,
        min_hours=min(losses),
        max_hours=max(losses),
        sector_losses=sector_losses,
    )


def _one_trial(
    rng: np.random.Generator,
    disks: int,
    faults: int,
    lifetime: Exponential,
    rebuild_time: Distribution,
    sector_p: float = 0.0,
) -> tuple[float, int]:
    """Simulate one array until ``faults + 1`` disks are down at once
    (or a critical rebuild trips a latent sector error); returns
    ``(hours, lost_to_sector_error)``.

    Memorylessness of the exponential failure law lets us redraw each
    healthy disk's residual lifetime after every event, so the event queue
    holds only the next failure and the in-flight rebuild completions:
    the minimum of ``healthy`` exponentials is an exponential with the
    pooled mean, sampled as one draw scaled by the population.
    The sector-error draw is guarded by ``sector_p > 0`` so the default
    (off) configuration consumes exactly the historical RNG stream.
    """
    now = 0.0
    failed = 0
    rebuild_queue: list[float] = []  # completion times of ongoing rebuilds
    while True:
        healthy = disks - failed
        next_failure = now + lifetime.sample(rng) / healthy
        if rebuild_queue and rebuild_queue[0] <= next_failure:
            now = heapq.heappop(rebuild_queue)
            if (
                sector_p > 0.0
                and failed == faults
                and rng.random() < sector_p
            ):
                # The rebuild that would have left the critical state
                # hit an undetected latent error with no redundancy
                # left to reconstruct around it.
                return now, 1
            failed -= 1
            continue
        now = next_failure
        failed += 1
        if failed > faults:
            return now, 0
        heapq.heappush(rebuild_queue, now + rebuild_time.sample(rng))
