"""Monte-Carlo failure injection cross-validating the Markov MTTDL model.

Simulates the exact stochastic process of :mod:`repro.reliability.markov`
(exponential failures, exponential rebuilds) with a discrete-event loop,
plus an optional fixed (deterministic) rebuild-time mode the closed form
cannot express. Used in tests to confirm the two models agree within
sampling error, and by the reliability example to show how drastically a
third parity extends MTTDL.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass

__all__ = ["MonteCarloResult", "simulate_mttdl"]


@dataclass
class MonteCarloResult:
    """Aggregate of the simulated data-loss times."""

    trials: int
    mean_hours: float
    min_hours: float
    max_hours: float

    @property
    def mean_years(self) -> float:
        """Estimated MTTDL in years."""
        return self.mean_hours / (24 * 365)


def simulate_mttdl(
    disks: int,
    faults_tolerated: int,
    disk_mttf_hours: float = 1_000_000.0,
    rebuild_hours: float = 24.0,
    trials: int = 200,
    seed: int = 0,
    deterministic_rebuild: bool = False,
) -> MonteCarloResult:
    """Estimate MTTDL by simulating the failure/rebuild process to loss.

    Args:
        disks: array width ``n``.
        faults_tolerated: survivable concurrent failures ``m``.
        disk_mttf_hours: per-disk exponential MTTF.
        rebuild_hours: mean (or fixed) rebuild duration.
        trials: independent runs to average.
        seed: RNG seed; results are deterministic given it.
        deterministic_rebuild: rebuilds take exactly ``rebuild_hours``
            instead of exponentially distributed time.
    """
    if disks <= faults_tolerated or faults_tolerated < 0:
        raise ValueError("need disks > faults_tolerated >= 0")
    if trials <= 0:
        raise ValueError("trials must be positive")
    rng = random.Random(seed)
    losses: list[float] = []
    for _ in range(trials):
        losses.append(
            _one_trial(
                rng, disks, faults_tolerated, disk_mttf_hours,
                rebuild_hours, deterministic_rebuild,
            )
        )
    return MonteCarloResult(
        trials=trials,
        mean_hours=sum(losses) / trials,
        min_hours=min(losses),
        max_hours=max(losses),
    )


def _one_trial(
    rng: random.Random,
    disks: int,
    faults: int,
    mttf: float,
    rebuild: float,
    deterministic: bool,
) -> float:
    """Simulate one array until ``faults + 1`` disks are down at once.

    Memorylessness of the exponential failure law lets us redraw each
    healthy disk's residual lifetime after every event, so the event queue
    holds only the next failure and the in-flight rebuild completions.
    """
    now = 0.0
    failed = 0
    rebuild_queue: list[float] = []  # completion times of ongoing rebuilds
    while True:
        healthy = disks - failed
        next_failure = now + rng.expovariate(healthy / mttf)
        if rebuild_queue and rebuild_queue[0] <= next_failure:
            now = heapq.heappop(rebuild_queue)
            failed -= 1
            continue
        now = next_failure
        failed += 1
        if failed > faults:
            return now
        duration = rebuild if deterministic else rng.expovariate(1.0 / rebuild)
        heapq.heappush(rebuild_queue, now + duration)
