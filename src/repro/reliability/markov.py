"""Closed-form MTTDL via an absorbing birth-death Markov chain.

States ``0..m`` count failed disks; state ``m+1`` (data loss) is
absorbing. From state ``k`` the array fails at rate ``(n-k) * lambda``
(surviving disks) and repairs at rate ``k * mu`` (failed disks rebuilding
in parallel; set ``parallel_rebuild=False`` for one-at-a-time rebuild).
MTTDL is the expected absorption time from state 0, solved exactly from
the fundamental-matrix linear system — no simulation, no approximation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArrayReliability", "mttdl"]

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class ArrayReliability:
    """Reliability parameters of one array configuration.

    Args:
        disks: number of disks ``n``.
        faults_tolerated: failures survivable without data loss ``m``.
        disk_mttf_hours: mean time to failure of one disk (1/lambda).
        rebuild_hours: mean rebuild time of one disk (1/mu).
        parallel_rebuild: rebuild all failed disks concurrently.
    """

    disks: int
    faults_tolerated: int
    disk_mttf_hours: float = 1_000_000.0
    rebuild_hours: float = 24.0
    parallel_rebuild: bool = True

    def __post_init__(self) -> None:
        if self.disks <= self.faults_tolerated:
            raise ValueError("need more disks than tolerated faults")
        if self.faults_tolerated < 0:
            raise ValueError("faults_tolerated must be >= 0")
        if self.disk_mttf_hours <= 0 or self.rebuild_hours <= 0:
            raise ValueError("MTTF and rebuild time must be positive")

    def mttdl_hours(self) -> float:
        """Mean time to data loss in hours (exact chain solution)."""
        m = self.faults_tolerated
        n = self.disks
        lam = 1.0 / self.disk_mttf_hours
        mu = 1.0 / self.rebuild_hours
        # T[k] = expected time to absorption from state k, k = 0..m.
        # (rates_out[k]) * T[k] = 1 + fail_rate*T[k+1] + repair_rate*T[k-1]
        size = m + 1
        matrix = np.zeros((size, size))
        rhs = np.ones(size)
        for k in range(size):
            fail = (n - k) * lam
            repair = (k * mu if self.parallel_rebuild else (mu if k else 0.0))
            matrix[k, k] = fail + repair
            if k + 1 < size:
                matrix[k, k + 1] = -fail
            # k == m: failure leads to absorption (T = 0 contribution)
            if k > 0:
                matrix[k, k - 1] = -repair
        times = np.linalg.solve(matrix, rhs)
        return float(times[0])

    def mttdl_years(self) -> float:
        """Mean time to data loss in years."""
        return self.mttdl_hours() / HOURS_PER_YEAR

    def annual_loss_probability(self) -> float:
        """Probability of data loss within one year (exponential approx)."""
        return 1.0 - float(np.exp(-HOURS_PER_YEAR / self.mttdl_hours()))


def mttdl(
    disks: int,
    faults_tolerated: int,
    disk_mttf_hours: float = 1_000_000.0,
    rebuild_hours: float = 24.0,
) -> float:
    """Convenience wrapper: MTTDL in hours for the default rebuild model."""
    return ArrayReliability(
        disks=disks,
        faults_tolerated=faults_tolerated,
        disk_mttf_hours=disk_mttf_hours,
        rebuild_hours=rebuild_hours,
    ).mttdl_hours()
