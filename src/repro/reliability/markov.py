"""Closed-form MTTDL via an absorbing birth-death Markov chain.

States ``0..m`` count failed disks; state ``m+1`` (data loss) is
absorbing. From state ``k`` the array fails at rate ``(n-k) * lambda``
(surviving disks) and repairs at rate ``k * mu`` (failed disks rebuilding
in parallel; set ``parallel_rebuild=False`` for one-at-a-time rebuild).
MTTDL is the expected absorption time from state 0, solved exactly from
the fundamental-matrix linear system — no simulation, no approximation.

**Sector-error extension** (default off): with a nonzero
``latent_error_rate``, a rebuild completing in the *critical* state (all
``m`` redundancy exhausted) must read every surviving disk with no
redundancy left to cover an unreadable sector, so with probability
:meth:`ArrayReliability.critical_sector_loss_probability` the rebuild
absorbs into data loss instead of recovering — the mixed failure mode
(disk + latent sector) that motivates scrubbing. The exposure window of
an undetected latent error is ``scrub_interval_hours *
latent_detection_fraction``; the detection fraction is exactly what the
online scrubber measures (:meth:`repro.faults.scrub.ScrubReport.
detection_fraction`), closing the loop from injected fault to MTTDL. In
sub-critical states a latent error is repaired from remaining redundancy
and does not absorb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ArrayReliability", "mttdl"]

HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class ArrayReliability:
    """Reliability parameters of one array configuration.

    Args:
        disks: number of disks ``n``.
        faults_tolerated: failures survivable without data loss ``m``.
        disk_mttf_hours: mean time to failure of one disk (1/lambda).
        rebuild_hours: mean rebuild time of one disk (1/mu).
        parallel_rebuild: rebuild all failed disks concurrently.
        latent_error_rate: latent sector errors developing per disk per
            hour (0, the default, disables the sector-error model and
            reproduces the pure disk-failure chain exactly).
        scrub_interval_hours: period of the background scrub pass that
            detects and repairs latent errors; 0 with a nonzero
            ``latent_error_rate`` means *never scrubbed* — the exposure
            window becomes the disk MTTF.
        latent_detection_fraction: mean fraction of the scrub interval a
            latent error survives before the scanning scrubber reaches
            it (0.5 for a uniformly arriving error under a linear scan;
            feed the measured :meth:`repro.faults.scrub.ScrubReport.
            detection_fraction` here).
    """

    disks: int
    faults_tolerated: int
    disk_mttf_hours: float = 1_000_000.0
    rebuild_hours: float = 24.0
    parallel_rebuild: bool = True
    latent_error_rate: float = 0.0
    scrub_interval_hours: float = 0.0
    latent_detection_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.disks <= self.faults_tolerated:
            raise ValueError("need more disks than tolerated faults")
        if self.faults_tolerated < 0:
            raise ValueError("faults_tolerated must be >= 0")
        if self.disk_mttf_hours <= 0 or self.rebuild_hours <= 0:
            raise ValueError("MTTF and rebuild time must be positive")
        if self.latent_error_rate < 0:
            raise ValueError("latent_error_rate must be >= 0")
        if self.scrub_interval_hours < 0:
            raise ValueError("scrub_interval_hours must be >= 0")
        if not 0.0 <= self.latent_detection_fraction <= 1.0:
            raise ValueError("latent_detection_fraction must be in [0, 1]")

    def critical_sector_loss_probability(self) -> float:
        """P(a critical-state rebuild hits an undetected latent error).

        A latent error lives undetected for ``scrub_interval_hours *
        latent_detection_fraction`` on average (no scrubbing: the disk's
        whole lifetime), so one disk is carrying one at the moment of
        truth with probability ``1 - exp(-rate * exposure)``; a critical
        rebuild reads all ``n - m`` survivors and any one bad disk kills
        it.
        """
        if self.latent_error_rate == 0.0:
            return 0.0
        exposure = (
            self.scrub_interval_hours * self.latent_detection_fraction
            if self.scrub_interval_hours > 0
            else self.disk_mttf_hours
        )
        per_disk = 1.0 - float(np.exp(-self.latent_error_rate * exposure))
        survivors = self.disks - self.faults_tolerated
        return 1.0 - (1.0 - per_disk) ** survivors

    def mttdl_hours(self) -> float:
        """Mean time to data loss in hours (exact chain solution)."""
        m = self.faults_tolerated
        n = self.disks
        lam = 1.0 / self.disk_mttf_hours
        mu = 1.0 / self.rebuild_hours
        # T[k] = expected time to absorption from state k, k = 0..m.
        # (rates_out[k]) * T[k] = 1 + fail_rate*T[k+1] + repair_rate*T[k-1]
        size = m + 1
        matrix = np.zeros((size, size))
        rhs = np.ones(size)
        sector_p = self.critical_sector_loss_probability()
        for k in range(size):
            fail = (n - k) * lam
            repair = (k * mu if self.parallel_rebuild else (mu if k else 0.0))
            matrix[k, k] = fail + repair
            if k + 1 < size:
                matrix[k, k + 1] = -fail
            # k == m: failure leads to absorption (T = 0 contribution)
            if k > 0:
                # In the critical state a completing rebuild absorbs
                # with probability sector_p (unreadable sector, no
                # redundancy left) instead of recovering to k-1.
                recovered = 1.0 - (sector_p if k == m else 0.0)
                matrix[k, k - 1] = -repair * recovered
        times = np.linalg.solve(matrix, rhs)
        return float(times[0])

    def mttdl_years(self) -> float:
        """Mean time to data loss in years."""
        return self.mttdl_hours() / HOURS_PER_YEAR

    def annual_loss_probability(self) -> float:
        """Probability of data loss within one year (exponential approx)."""
        return 1.0 - float(np.exp(-HOURS_PER_YEAR / self.mttdl_hours()))


def mttdl(
    disks: int,
    faults_tolerated: int,
    disk_mttf_hours: float = 1_000_000.0,
    rebuild_hours: float = 24.0,
    latent_error_rate: float = 0.0,
    scrub_interval_hours: float = 0.0,
    latent_detection_fraction: float = 0.5,
) -> float:
    """Convenience wrapper: MTTDL in hours for the default rebuild model
    (sector-error parameters default off)."""
    return ArrayReliability(
        disks=disks,
        faults_tolerated=faults_tolerated,
        disk_mttf_hours=disk_mttf_hours,
        rebuild_hours=rebuild_hours,
        latent_error_rate=latent_error_rate,
        scrub_interval_hours=scrub_interval_hours,
        latent_detection_fraction=latent_detection_fraction,
    ).mttdl_hours()
