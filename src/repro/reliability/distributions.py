"""Shared lifetime/repair-time distributions for the reliability models.

Both the single-array Monte-Carlo simulator
(:func:`repro.reliability.montecarlo.simulate_mttdl`) and the fleet
simulator (:mod:`repro.fleet`) sample disk lifetimes and repair
durations from the same small family of distributions. This module is
the single definition of that sampling so the two models stay
cross-validatable: a fleet cell configured with ``Exponential(mttf)``
lifetimes draws from exactly the law the Markov chain prices.

Every distribution samples from an injected
:class:`numpy.random.Generator`, never from global state — fleet trials
spawn independent per-trial streams from one
:class:`numpy.random.SeedSequence` and stay reproducible under any
interleaving (see :func:`spawn_generators`).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import gamma as _gamma_fn

import numpy as np

__all__ = [
    "Distribution",
    "Exponential",
    "Weibull",
    "Fixed",
    "make_distribution",
    "as_generator",
    "spawn_generators",
]


@dataclass(frozen=True)
class Exponential:
    """Memoryless lifetime with the given mean (the Markov chain's law)."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ValueError("mean must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """One draw; ``rng`` is consumed exactly once."""
        return float(rng.exponential(self.mean))

    @property
    def mean_value(self) -> float:
        """The distribution's mean (``E[X]``)."""
        return self.mean


@dataclass(frozen=True)
class Weibull:
    """Weibull lifetime: ``shape < 1`` models infant mortality,
    ``shape > 1`` wear-out — the field-study alternative to the
    memoryless exponential (shape 1 recovers it exactly)."""

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or self.scale <= 0:
            raise ValueError("shape and scale must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """One draw; ``rng`` is consumed exactly once."""
        return float(self.scale * rng.weibull(self.shape))

    @property
    def mean_value(self) -> float:
        """``scale * Gamma(1 + 1/shape)``."""
        return self.scale * _gamma_fn(1.0 + 1.0 / self.shape)


@dataclass(frozen=True)
class Fixed:
    """Deterministic duration (the fixed-rebuild mode); consumes no RNG."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise ValueError("value must be positive")

    def sample(self, rng: np.random.Generator) -> float:
        """Always ``value``; ``rng`` is untouched (stream-preserving)."""
        return self.value

    @property
    def mean_value(self) -> float:
        """The constant itself."""
        return self.value


Distribution = Exponential | Weibull | Fixed
"""Any of the supported sampling laws (all expose ``sample``/``mean_value``)."""


def make_distribution(spec: str | float | Distribution) -> Distribution:
    """Parse a compact distribution spec.

    Accepts an existing distribution (returned unchanged), a bare number
    (exponential with that mean — the historical default), or a string:

    * ``"exp:MEAN"`` — exponential;
    * ``"weibull:SHAPE:SCALE"`` — Weibull;
    * ``"fixed:VALUE"`` — deterministic.
    """
    if isinstance(spec, (Exponential, Weibull, Fixed)):
        return spec
    if isinstance(spec, (int, float)):
        return Exponential(float(spec))
    kind, _, body = spec.partition(":")
    try:
        if kind == "exp":
            return Exponential(float(body))
        if kind == "weibull":
            shape, _, scale = body.partition(":")
            return Weibull(float(shape), float(scale))
        if kind == "fixed":
            return Fixed(float(body))
    except ValueError as exc:
        if "must be positive" in str(exc):
            raise
        raise ValueError(f"malformed distribution spec {spec!r}") from None
    raise ValueError(
        f"unknown distribution kind {kind!r} (expected exp:MEAN, "
        f"weibull:SHAPE:SCALE, or fixed:VALUE)"
    )


def as_generator(
    seed: int | np.random.SeedSequence | np.random.Generator,
) -> np.random.Generator:
    """Coerce a seed, seed sequence, or ready generator to a Generator.

    The common entry point for every simulator that accepts injected
    randomness: passing a ``Generator`` shares (and advances) the
    caller's stream; anything else derives a fresh independent one.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.SeedSequence, count: int
) -> list[np.random.Generator]:
    """``count`` statistically independent generators from one seed.

    Built on :meth:`numpy.random.SeedSequence.spawn`, so per-trial (or
    per-array) streams never overlap regardless of how many draws each
    consumer makes — the fleet simulator's per-trial isolation.
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return [np.random.default_rng(child) for child in root.spawn(count)]
