"""Small shared utilities: primality, prime selection, argument checking.

These helpers are used across the code constructions, which are all
parameterized by a prime ``p`` (TIP, STAR, Triple-Star, HDD1, EVENODD, RDP
are array codes over Z_p diagonals).
"""

from __future__ import annotations

from collections.abc import Iterable

__all__ = [
    "is_prime",
    "next_prime",
    "primes_up_to",
    "smallest_prime_for",
    "check_positive",
    "mod",
]


def is_prime(value: int) -> bool:
    """Return True if ``value`` is a prime number.

    Deterministic trial division; the primes used by array codes are tiny
    (p < 200 in every practical stripe), so this is never a bottleneck.
    """
    if value < 2:
        return False
    if value < 4:
        return True
    if value % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= value:
        if value % divisor == 0:
            return False
        divisor += 2
    return True


def next_prime(value: int) -> int:
    """Return the smallest prime >= ``value``."""
    if value <= 2:
        return 2
    candidate = value | 1  # first odd >= value
    while not is_prime(candidate):
        candidate += 2
    return candidate


def primes_up_to(limit: int) -> list[int]:
    """Return all primes <= ``limit`` (inclusive), smallest first."""
    return [value for value in range(2, limit + 1) if is_prime(value)]


def smallest_prime_for(disks: int, native_sizes: Iterable[int]) -> int:
    """Find the smallest prime ``p`` whose native array sizes cover ``disks``.

    ``native_sizes`` maps a candidate prime to the sizes the code natively
    supports; it is evaluated lazily as a callable-free protocol: the caller
    passes an iterable of offsets, i.e. a code natively supporting
    ``p + k`` disks for each ``k`` in ``native_sizes``. The returned prime
    is the smallest one with ``p + max(offsets) >= disks``: shortening can
    then remove data columns to reach ``disks`` exactly.
    """
    offsets = list(native_sizes)
    if not offsets:
        raise ValueError("native_sizes must be non-empty")
    best = max(offsets)
    candidate = 2
    while candidate + best < disks:
        candidate = next_prime(candidate + 1)
    return candidate


def check_positive(name: str, value: int) -> int:
    """Validate that ``value`` is a positive int; return it for chaining."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def mod(value: int, modulus: int) -> int:
    """Mathematical mod (always in ``0..modulus-1``), mirroring the paper's
    angle-bracket notation ``<i>_p``."""
    return value % modulus
