"""The concurrent block service: a thread-pool front-end over the store.

Every layer below this one was written single-caller first and made
thread-safe by PR 6; :class:`BlockService` is the component that lets
callers actually contend. It owns the locking discipline:

* each request resolves its byte range to the stripe set it touches and
  executes under the array lock (shared) plus those stripes' locks in
  ascending order — overlapping requests serialize per stripe,
  disjoint requests run in parallel;
* maintenance — injected-fault handling, throttled
  :class:`~repro.faults.repair.RepairController` rebuild/scrub ticks —
  runs under the array lock (exclusive), so it always sees a quiescent
  array, exactly like the serial replay loop it generalizes;
* admission is a counting semaphore (``max_inflight``): requests beyond
  the limit queue at the door rather than piling onto the lock tables,
  and the QoS arbiter interleaves one repair tick per
  ``repair_every`` completed foreground requests — the concurrent
  analogue of ``BlockDevice.replay(scrub_every=...)``.

Latency is measured per request from admission to completion
(:class:`ServiceStats` collects the samples; `p50/p99` come from
:func:`percentile`), which is what the closed-loop load generator in
:mod:`repro.service.loadgen` sweeps against offered load.
"""

from __future__ import annotations

import math
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.raid.blockdevice import BlockDevice
from repro.service.locks import ArrayRWLock, StripeLockManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.repair import RepairController
    from repro.store import ArrayStore

__all__ = ["BlockService", "ServiceStats", "percentile"]

#: Per-request cap on fault-handle-and-retry cycles, matching
#: ``BlockDevice.replay``'s bound: every retry follows a state-changing
#: repair, so the cap only guards against a pathological fault plan.
_MAX_REQUEST_ATTEMPTS = 6


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    # Standard nearest-rank: the ceil(f*N)-th order statistic (1-based);
    # round() would banker's-round the 5-sample median down to rank 2.
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class ServiceStats:
    """What the service did, and how long each request took."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    retried_requests: int = 0
    repair_ticks: int = 0
    #: Per-request latency in milliseconds, admission to completion.
    latencies_ms: list[float] = field(repr=False, default_factory=list)

    @property
    def requests(self) -> int:
        """Foreground requests completed."""
        return self.reads + self.writes

    @property
    def mean_latency_ms(self) -> float:
        """Mean request latency in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    @property
    def p50_latency_ms(self) -> float:
        """Median request latency in milliseconds."""
        return percentile(self.latencies_ms, 0.50)

    @property
    def p99_latency_ms(self) -> float:
        """99th-percentile request latency in milliseconds."""
        return percentile(self.latencies_ms, 0.99)


class BlockService:
    """Thread-safe byte-addressed front-end over an array store.

    Args:
        store: the (thread-safe) :class:`~repro.store.ArrayStore` to
            serve. A :class:`~repro.raid.BlockDevice` is built over it
            for address math; its serial :meth:`~repro.raid.BlockDevice.
            replay` remains available and unaffected.
        workers: threads in the request pool used by :meth:`submit_read`
            / :meth:`submit_write`. Synchronous :meth:`read` /
            :meth:`write` execute on the caller's thread (a closed-loop
            client *is* its own worker) but share the same admission and
            locking discipline.
        repair: optional :class:`~repro.faults.repair.RepairController`;
            injected faults surfacing from requests are dispatched
            through it (under the exclusive array lock) and the request
            retried, as in serial replay.
        repair_every: run one background repair tick after every this
            many completed foreground requests (0 = tick only on
            faults). The tick runs exclusive — foreground admission
            stalls for exactly the tick's bounded chunk budget.
        max_inflight: admission bound on concurrently executing
            requests; defaults to ``4 * workers``.
    """

    def __init__(
        self,
        store: "ArrayStore",
        *,
        workers: int = 4,
        repair: "RepairController | None" = None,
        repair_every: int = 0,
        max_inflight: int | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if repair_every < 0:
            raise ValueError("repair_every must be >= 0")
        if repair_every and repair is None:
            raise ValueError("repair_every needs a repair controller")
        self.store = store
        self.device = BlockDevice(store)
        self.workers = workers
        self.repair = repair
        self.repair_every = repair_every
        self.stats = ServiceStats()
        self._array = ArrayRWLock()
        self._stripe_locks = StripeLockManager()
        self._admission = threading.BoundedSemaphore(
            max_inflight if max_inflight is not None else 4 * workers
        )
        self._stats_lock = threading.Lock()
        self._completed_since_tick = 0
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Addressable bytes (the device's full logical capacity)."""
        return self.device.capacity_bytes

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-service",
            )
        return self._pool

    def close(self) -> None:
        """Drain repair, flush the cache, shut the pool down."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        with self._array.exclusive():
            if self.repair is not None:
                self.repair.drain()
            self.store.flush()

    def __enter__(self) -> "BlockService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # public I/O
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (admitted, stripe-locked)."""
        self.device._check_range(offset, length)
        return self._admitted(False, offset, length, None).tobytes()

    def write(self, offset: int, data: bytes | bytearray | np.ndarray) -> None:
        """Write ``data`` at ``offset`` (admitted, stripe-locked)."""
        buf = (
            np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
            if isinstance(data, np.ndarray)
            else np.frombuffer(bytes(data), dtype=np.uint8)
        )
        self.device._check_range(offset, buf.size)
        self._admitted(True, offset, buf.size, buf)

    def submit_read(self, offset: int, length: int) -> "Future[bytes]":
        """Queue a read on the service pool; returns its future."""
        self.device._check_range(offset, length)
        return self._executor().submit(self.read, offset, length)

    def submit_write(
        self, offset: int, data: bytes | bytearray | np.ndarray
    ) -> "Future[None]":
        """Queue a write on the service pool; returns its future."""
        return self._executor().submit(self.write, offset, data)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _admitted(
        self,
        is_write: bool,
        offset: int,
        length: int,
        payload: np.ndarray | None,
    ) -> np.ndarray | None:
        """Admission + timing wrapper around one request execution."""
        started = time.perf_counter()
        with self._admission:
            result = self._execute(is_write, offset, length, payload)
        elapsed_ms = (time.perf_counter() - started) * 1e3
        with self._stats_lock:
            stats = self.stats
            if is_write:
                stats.writes += 1
                stats.bytes_written += length
            else:
                stats.reads += 1
                stats.bytes_read += length
            stats.latencies_ms.append(elapsed_ms)
            run_tick = False
            if self.repair_every:
                self._completed_since_tick += 1
                if self._completed_since_tick >= self.repair_every:
                    self._completed_since_tick = 0
                    run_tick = True
        if run_tick:
            self._repair_tick()
        return result

    def _execute(
        self,
        is_write: bool,
        offset: int,
        length: int,
        payload: np.ndarray | None,
    ) -> np.ndarray | None:
        from repro.faults.inject import FaultError

        stripes = [
            run.stripe for run in self.device.mapping.byte_runs(offset, length)
        ]
        last_fault: FaultError | None = None
        for attempt in range(_MAX_REQUEST_ATTEMPTS):
            try:
                with self._array.shared(), self._stripe_locks.locked(stripes):
                    if is_write:
                        self.store.write_bytes(offset, payload)
                        return None
                    return self.store.read_bytes(offset, length)
            except FaultError as exc:
                # All locks are released here: the shared/stripe context
                # managers unwound with the exception, so taking the
                # exclusive lock below cannot self-deadlock.
                if self.repair is None:
                    raise
                with self._array.exclusive():
                    if not self.repair.handle_fault(exc):
                        raise
                last_fault = exc
                with self._stats_lock:
                    self.stats.retried_requests += 1
        raise IOError(
            f"request at offset {offset} still faulting after "
            f"{_MAX_REQUEST_ATTEMPTS} repair-and-retry attempts"
        ) from last_fault

    def _repair_tick(self) -> None:
        """One throttled repair tick under the exclusive array lock."""
        if self.repair is None:
            return
        with self._array.exclusive():
            self.repair.tick()
        with self._stats_lock:
            self.stats.repair_ticks += 1

    def drain_repair(self) -> None:
        """Run repair ticks (exclusive) until the array is healthy."""
        if self.repair is None:
            return
        with self._array.exclusive():
            self.repair.drain()
