"""The concurrent block service: a thread-pool front-end over the store.

Every layer below this one was written single-caller first and made
thread-safe by PR 6; :class:`BlockService` is the component that lets
callers actually contend. It owns the locking discipline:

* each request resolves its byte range to the stripe set it touches and
  executes under the array lock (shared) plus those stripes' locks in
  ascending order — overlapping requests serialize per stripe,
  disjoint requests run in parallel;
* maintenance — injected-fault handling, throttled
  :class:`~repro.faults.repair.RepairController` rebuild/scrub ticks —
  runs under the array lock (exclusive), so it always sees a quiescent
  array, exactly like the serial replay loop it generalizes;
* admission is a strict-FIFO counting semaphore (``max_inflight``):
  requests beyond the limit queue at the door *in arrival order* —
  ``threading.Semaphore`` wakeups are unordered and let late arrivals
  barge past long waiters, which was a driver of the 26 ms p99 at 8
  workers — and the QoS arbiter interleaves one repair tick per
  ``repair_every`` completed foreground requests — the concurrent
  analogue of ``BlockDevice.replay(scrub_every=...)``;
* with ``batch_size > 0`` the service runs in **batched mode**: admitted
  requests enqueue to a single dispatcher thread that buffers arrivals
  (adaptive window — it stops waiting early when arrivals can't fill a
  batch, and drains anything already queued beyond it), composes each
  batch by **stripe affinity** — same-stripe requests join for free, a
  small budget caps the distinct stripes a batch opens, per-stripe FIFO
  order is preserved so the reordering is invisible — then takes the
  array lock and the batch's stripe-lock union *once* and executes the
  whole batch through :meth:`~repro.store.ArrayStore.execute_batch`'s
  merged span I/O. Chunk ``IoCounters`` are identical to per-request
  execution; only the syscall count and the per-request Python overhead
  drop.

Latency is measured per request from admission to completion
(:class:`ServiceStats` collects the samples; `p50/p99` come from
:func:`percentile`), which is what the closed-loop load generator in
:mod:`repro.service.loadgen` sweeps against offered load.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.raid.blockdevice import BlockDevice
from repro.service.locks import ArrayRWLock, FifoSemaphore, StripeLockManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.repair import RepairController
    from repro.store import ArrayStore

__all__ = ["BlockService", "ServiceStats", "percentile"]

#: Per-request cap on fault-handle-and-retry cycles, matching
#: ``BlockDevice.replay``'s bound: every retry follows a state-changing
#: repair, so the cap only guards against a pathological fault plan.
_MAX_REQUEST_ATTEMPTS = 6


def _completed_future(value) -> "Future":
    """A :class:`Future` already resolved to ``value``."""
    future: "Future" = Future()
    future.set_result(value)
    return future


#: Shared completed future returned for inline (batch_size=1) writes.
#: Writes resolve to ``None`` and a finished future is immutable —
#: ``cancel()`` refuses, ``add_done_callback`` invokes without
#: retaining — so one instance serves every caller and the degenerate
#: batch path skips a Future allocation + condition notify per request.
_WRITE_DONE: "Future[None]" = _completed_future(None)


def percentile(samples: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be within [0, 1], got {fraction}")
    ordered = sorted(samples)
    # Standard nearest-rank: the ceil(f*N)-th order statistic (1-based);
    # round() would banker's-round the 5-sample median down to rank 2.
    rank = min(len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class ServiceStats:
    """What the service did, and how long each request took."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    retried_requests: int = 0
    repair_ticks: int = 0
    #: Per-request latency in milliseconds, admission to completion.
    latencies_ms: list[float] = field(repr=False, default_factory=list)

    @property
    def requests(self) -> int:
        """Foreground requests completed."""
        return self.reads + self.writes

    @property
    def mean_latency_ms(self) -> float:
        """Mean request latency in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)

    @property
    def p50_latency_ms(self) -> float:
        """Median request latency in milliseconds."""
        return percentile(self.latencies_ms, 0.50)

    @property
    def p99_latency_ms(self) -> float:
        """99th-percentile request latency in milliseconds."""
        return percentile(self.latencies_ms, 0.99)


class _QueuedRequest:
    """One admitted request parked on the dispatcher queue.

    ``started`` is the admission timestamp for requests whose slot
    release and stats accounting are the *dispatcher's* job (async
    :meth:`BlockService.enqueue`); ``None`` means the submitting thread
    accounts for itself (synchronous :meth:`BlockService.write` /
    ``read`` in batched mode).
    """

    __slots__ = (
        "is_write", "offset", "length", "payload", "future", "started"
    )

    def __init__(
        self,
        is_write: bool,
        offset: int,
        length: int,
        payload: np.ndarray | None,
        future: "Future[np.ndarray | None]",
        started: float | None = None,
    ) -> None:
        self.is_write = is_write
        self.offset = offset
        self.length = length
        self.payload = payload
        self.future = future
        self.started = started


class BlockService:
    """Thread-safe byte-addressed front-end over an array store.

    Args:
        store: the (thread-safe) :class:`~repro.store.ArrayStore` to
            serve. A :class:`~repro.raid.BlockDevice` is built over it
            for address math; its serial :meth:`~repro.raid.BlockDevice.
            replay` remains available and unaffected.
        workers: threads in the request pool used by :meth:`submit_read`
            / :meth:`submit_write`. Synchronous :meth:`read` /
            :meth:`write` execute on the caller's thread (a closed-loop
            client *is* its own worker) but share the same admission and
            locking discipline.
        repair: optional :class:`~repro.faults.repair.RepairController`;
            injected faults surfacing from requests are dispatched
            through it (under the exclusive array lock) and the request
            retried, as in serial replay.
        repair_every: run one background repair tick after every this
            many completed foreground requests (0 = tick only on
            faults). The tick runs exclusive — foreground admission
            stalls for exactly the tick's bounded chunk budget.
        max_inflight: admission bound on concurrently executing
            requests; defaults to ``4 * workers`` (and at least
            ``batch_size`` in batched mode, so a full batch can ever
            assemble).
        batch_size: 0 (default) keeps per-request execution. > 0 turns
            on batched mode: admitted requests enqueue to a single
            dispatcher thread that groups up to this many of them per
            :meth:`~repro.store.ArrayStore.execute_batch` call, locking
            the batch's stripe union once. ``batch_size=1`` degenerates
            to per-request dispatch through the queue (the serial
            baseline with only the handoff overhead added).
        batch_window_s: longest the dispatcher waits for a batch to
            fill once its first request arrived. The effective wait
            adapts: it halves after an underfull batch (arrivals too
            slow to fill one — don't stall them) and doubles back after
            full batches, bounded by this value.
    """

    def __init__(
        self,
        store: "ArrayStore",
        *,
        workers: int = 4,
        repair: "RepairController | None" = None,
        repair_every: int = 0,
        max_inflight: int | None = None,
        batch_size: int = 0,
        batch_window_s: float = 0.002,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if repair_every < 0:
            raise ValueError("repair_every must be >= 0")
        if repair_every and repair is None:
            raise ValueError("repair_every needs a repair controller")
        if batch_size < 0:
            raise ValueError("batch_size must be >= 0")
        if batch_window_s <= 0:
            raise ValueError("batch_window_s must be positive")
        self.store = store
        self.device = BlockDevice(store)
        self.workers = workers
        self.repair = repair
        self.repair_every = repair_every
        self.batch_size = batch_size
        self.batch_window_s = batch_window_s
        self.stats = ServiceStats()
        self._array = ArrayRWLock()
        self._stripe_locks = StripeLockManager()
        inflight = max_inflight if max_inflight is not None else 4 * workers
        if batch_size:
            inflight = max(inflight, batch_size)
        self._admission = FifoSemaphore(inflight)
        self._stats_lock = threading.Lock()
        self._completed_since_tick = 0
        self._pool: ThreadPoolExecutor | None = None
        self._closed = False
        #: Batched-mode plumbing (inert while ``batch_size == 0``).
        self._queue: "queue.SimpleQueue[_QueuedRequest | None]" = (
            queue.SimpleQueue()
        )
        self._dispatcher: threading.Thread | None = None
        self._dispatcher_lock = threading.Lock()
        self._batch_wait_s = batch_window_s
        self._per_stripe_bytes = store.code.num_data * store.chunk_bytes
        #: Distinct new stripes one batch may open during stripe-affinity
        #: composition (see :meth:`_compose`); same-stripe requests join
        #: for free, so a small budget is what concentrates a batch onto
        #: few stripes and lets span merging actually bite.
        self._stripe_budget = max(2, batch_size // 5) if batch_size else 0
        #: Batches dispatched and requests they carried (mean batch fill
        #: = ``batched_requests / batches``).
        self.batches = 0
        self.batched_requests = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Addressable bytes (the device's full logical capacity)."""
        return self.device.capacity_bytes

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-service",
            )
        return self._pool

    def close(self) -> None:
        """Drain repair, flush the cache, shut pool and dispatcher down."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._dispatcher is not None:
            self._queue.put(None)
            self._dispatcher.join(timeout=60.0)
            self._dispatcher = None
        from repro.faults.inject import FaultError

        with self._array.exclusive():
            if self.repair is not None:
                self.repair.drain()
            # The final flush runs with any fault plan still armed; give
            # it the same repair-and-retry treatment as request I/O so a
            # latent sector surfacing on a parity anchor read doesn't
            # escape close() with dirty stripes still in the cache.
            for _ in range(_MAX_REQUEST_ATTEMPTS - 1):
                try:
                    self.store.flush()
                    break
                except FaultError as exc:
                    if self.repair is None or not self.repair.handle_fault(
                        exc
                    ):
                        raise
            else:
                self.store.flush()

    def contention(self) -> dict[str, float | int]:
        """Lock-contention counters for benchmark attribution.

        Counts and blocked-time accumulate for the service's lifetime:
        admission-gate, array-lock and stripe-lock acquisitions plus the
        milliseconds spent blocked on each (contended acquires only).
        """
        return {
            "admission_acquisitions": self._admission.acquisitions,
            "admission_wait_ms": round(self._admission.wait_ms, 3),
            "array_lock_acquisitions": self._array.acquisitions,
            "array_lock_wait_ms": round(self._array.wait_ms, 3),
            "stripe_lock_acquisitions": self._stripe_locks.acquisitions,
            "stripe_lock_wait_ms": round(self._stripe_locks.wait_ms, 3),
        }

    def __enter__(self) -> "BlockService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # public I/O
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (admitted, stripe-locked)."""
        self.device._check_range(offset, length)
        return self._admitted(False, offset, length, None).tobytes()

    def write(self, offset: int, data: bytes | bytearray | np.ndarray) -> None:
        """Write ``data`` at ``offset`` (admitted, stripe-locked)."""
        buf = (
            np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
            if isinstance(data, np.ndarray)
            else np.frombuffer(bytes(data), dtype=np.uint8)
        )
        self.device._check_range(offset, buf.size)
        self._admitted(True, offset, buf.size, buf)

    def submit_read(self, offset: int, length: int) -> "Future[bytes]":
        """Queue a read on the service pool; returns its future."""
        self.device._check_range(offset, length)
        return self._executor().submit(self.read, offset, length)

    def submit_write(
        self, offset: int, data: bytes | bytearray | np.ndarray
    ) -> "Future[None]":
        """Queue a write on the service pool; returns its future."""
        return self._executor().submit(self.write, offset, data)

    def enqueue(
        self,
        is_write: bool,
        offset: int,
        data_or_length: bytes | bytearray | np.ndarray | int,
    ) -> "Future[np.ndarray | None]":
        """Asynchronous admission into batched mode (no pool thread).

        Acquires an admission slot on the *calling* thread — so a single
        submitter issuing requests in order is backpressured, not
        reordered; slot release and stats accounting happen when the
        dispatcher resolves the future. This is the open-loop entry the
        batched load generator drives: queue depth up to
        ``max_inflight`` from one submitter is what lets batches fill.
        """
        if not self.batch_size:
            raise ValueError("enqueue() requires batched mode (batch_size > 0)")
        if is_write:
            payload = (
                np.ascontiguousarray(data_or_length, dtype=np.uint8).reshape(-1)
                if isinstance(data_or_length, np.ndarray)
                else np.frombuffer(bytes(data_or_length), dtype=np.uint8)
            )
            length = payload.size
        else:
            payload = None
            length = int(data_or_length)
        self.device._check_range(offset, length)
        started = time.perf_counter()
        self._admission.acquire()
        if self.batch_size == 1:
            # Degenerate batches: execute inline on the submitter thread
            # (strict submission order, no dispatcher handoff) — the
            # true per-request baseline the batch sweep compares against,
            # so keep its overhead at per-request parity: writes resolve
            # to None and share one pre-completed future.
            try:
                result = self._execute(is_write, offset, length, payload)
            except BaseException as exc:  # noqa: BLE001 - to the caller
                future: "Future[np.ndarray | None]" = Future()
                future.set_exception(exc)
            else:
                future = (
                    _WRITE_DONE
                    if result is None
                    else _completed_future(result)
                )
            finally:
                self._admission.release()
                self._record_completion(
                    is_write, length, (time.perf_counter() - started) * 1e3
                )
            return future
        self._ensure_dispatcher()
        request = _QueuedRequest(
            is_write, offset, length, payload, Future(), started
        )
        self._queue.put(request)
        return request.future

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _admitted(
        self,
        is_write: bool,
        offset: int,
        length: int,
        payload: np.ndarray | None,
    ) -> np.ndarray | None:
        """Admission + timing wrapper around one request execution."""
        started = time.perf_counter()
        with self._admission:
            if self.batch_size:
                result = self._enqueued(is_write, offset, length, payload)
            else:
                result = self._execute(is_write, offset, length, payload)
        self._record_completion(
            is_write, length, (time.perf_counter() - started) * 1e3
        )
        return result

    def _record_completion(
        self, is_write: bool, length: int, elapsed_ms: float
    ) -> None:
        """Account one completed request; maybe run a QoS repair tick."""
        with self._stats_lock:
            stats = self.stats
            if is_write:
                stats.writes += 1
                stats.bytes_written += length
            else:
                stats.reads += 1
                stats.bytes_read += length
            stats.latencies_ms.append(elapsed_ms)
            run_tick = False
            if self.repair_every:
                self._completed_since_tick += 1
                if self._completed_since_tick >= self.repair_every:
                    self._completed_since_tick = 0
                    run_tick = True
        if run_tick:
            self._repair_tick()

    def _execute(
        self,
        is_write: bool,
        offset: int,
        length: int,
        payload: np.ndarray | None,
    ) -> np.ndarray | None:
        from repro.faults.inject import FaultError

        stripes = [
            run.stripe for run in self.device.mapping.byte_runs(offset, length)
        ]
        last_fault: FaultError | None = None
        for attempt in range(_MAX_REQUEST_ATTEMPTS):
            try:
                with self._array.shared(), self._stripe_locks.locked(stripes):
                    try:
                        if is_write:
                            self.store.write_bytes(offset, payload)
                            return None
                        return self.store.read_bytes(offset, length)
                    except FaultError as exc:
                        # Close the write hole *while the stripe locks
                        # are still held*: the journal replays absolute
                        # span values, so another writer slipping into
                        # this stripe before the roll-forward would have
                        # its parity deltas erased by the stale replay.
                        # A second fault mid-replay leaves the remainder
                        # pending for the exclusive handler below.
                        try:
                            self.store.quarantine_interrupted_write(exc.disk)
                        except FaultError:
                            pass
                        raise
            except FaultError as exc:
                # All locks are released here: the shared/stripe context
                # managers unwound with the exception, so taking the
                # exclusive lock below cannot self-deadlock.
                if self.repair is None:
                    raise
                with self._array.exclusive():
                    if not self.repair.handle_fault(exc):
                        raise
                last_fault = exc
                with self._stats_lock:
                    self.stats.retried_requests += 1
        raise IOError(
            f"request at offset {offset} still faulting after "
            f"{_MAX_REQUEST_ATTEMPTS} repair-and-retry attempts"
        ) from last_fault

    # ------------------------------------------------------------------
    # batched mode (single coalescing dispatcher)
    # ------------------------------------------------------------------
    def _enqueued(
        self,
        is_write: bool,
        offset: int,
        length: int,
        payload: np.ndarray | None,
    ) -> np.ndarray | None:
        """Hand one admitted request to the dispatcher, await its result.

        The admission slot stays held while the request waits in the
        queue — ``max_inflight`` bounds queue depth, which is the
        backpressure that lets batches assemble without unbounded
        buffering.
        """
        self._ensure_dispatcher()
        request = _QueuedRequest(is_write, offset, length, payload, Future())
        self._queue.put(request)
        return request.future.result()

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is not None:
            return
        with self._dispatcher_lock:
            if self._dispatcher is None and not self._closed:
                thread = threading.Thread(
                    target=self._dispatch_loop,
                    name="repro-batch-dispatcher",
                    daemon=True,
                )
                self._dispatcher = thread
                thread.start()

    def _dispatch_loop(self) -> None:
        """Collect pending requests, compose affine batches, dispatch.

        Each round :meth:`_collect` fills the dispatcher's pending
        buffer (blocking for the first arrival, adaptively waiting for a
        full batch, then draining whatever else already queued — the
        deeper the buffer, the better :meth:`_compose` can group by
        stripe) and :meth:`_compose` carves one batch out of it. On
        shutdown the remaining pending requests drain batch by batch.
        """
        pending: "list[_QueuedRequest]" = []
        stopping = False
        while True:
            if not stopping:
                stopping = self._collect(pending)
            if not pending:
                return
            self._dispatch(self._compose(pending))
            if stopping and not pending:
                return

    def _collect(self, pending: "list[_QueuedRequest]") -> bool:
        """Top up the pending buffer from the arrival queue.

        Blocks for the first request when the buffer is empty (no busy
        wait), then drains further arrivals until a full batch is
        buffered or the adaptive window expires. The window halves after
        an underfull round — arrivals too slow to fill a batch shouldn't
        stall behind a timer — and doubles back toward
        ``batch_window_s`` after full ones. A final non-blocking drain
        deepens the buffer past ``batch_size`` for free: admission
        (``max_inflight``) bounds it, and every extra buffered request
        widens the stripe-affinity window :meth:`_compose` selects from.
        Returns True when the shutdown sentinel was consumed.
        """
        if not pending:
            item = self._queue.get()
            if item is None:
                return True
            pending.append(item)
        if self.batch_size > 1 and len(pending) < self.batch_size:
            deadline = time.perf_counter() + self._batch_wait_s
            while len(pending) < self.batch_size:
                remaining = deadline - time.perf_counter()
                try:
                    nxt = (
                        self._queue.get(timeout=remaining)
                        if remaining > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if nxt is None:
                    return True
                pending.append(nxt)
            if len(pending) >= self.batch_size:
                self._batch_wait_s = min(
                    self.batch_window_s, self._batch_wait_s * 2
                )
            else:
                self._batch_wait_s = max(
                    self.batch_window_s / 64, self._batch_wait_s / 2
                )
        while True:
            try:
                nxt = self._queue.get_nowait()
            except queue.Empty:
                return False
            if nxt is None:
                return True
            pending.append(nxt)

    def _compose(self, pending: "list[_QueuedRequest]") -> "list[_QueuedRequest]":
        """Carve one stripe-affine batch out of the pending buffer.

        Consecutive arrivals rarely share stripes, which caps span
        merging at whatever locality the workload happens to interleave;
        selecting *same-stripe* requests from a deeper buffer is what
        turns per-stripe dedup and span coalescing into real syscall
        reductions. The scan runs in strict arrival order with two
        rules that keep reordering invisible:

        * a request is only taken while none of its stripes is
          *blocked*; skipping a request blocks its stripes for the rest
          of the pass, so two requests touching a common stripe can
          never swap — per-stripe FIFO order is preserved, and requests
          on disjoint stripes commute byte-for-byte (``IoCounters`` are
          metered from per-item plans, so aggregate accounting is
          composition-independent too);
        * the head of the buffer is always taken (no starvation), and
          after it each request must either stay within the batch's
          stripes or fit the remaining new-stripe budget.
        """
        if len(pending) <= self.batch_size:
            batch = list(pending)
            pending.clear()
            return batch
        per_stripe = self._per_stripe_bytes
        size = self.batch_size
        selected: list[int] = []
        batch_stripes: set[int] = set()
        blocked: set[int] = set()
        budget = self._stripe_budget
        for index, request in enumerate(pending):
            first = request.offset // per_stripe
            last = (request.offset + request.length - 1) // per_stripe
            stripes = range(first, last + 1)
            if blocked and any(s in blocked for s in stripes):
                blocked.update(stripes)
                continue
            new = sum(1 for s in stripes if s not in batch_stripes)
            if not selected or (
                len(selected) < size and (new == 0 or new <= budget)
            ):
                selected.append(index)
                budget -= new
                batch_stripes.update(stripes)
                if len(selected) >= size:
                    break
            else:
                blocked.update(stripes)
        batch = [pending[index] for index in selected]
        for index in reversed(selected):
            del pending[index]
        return batch

    def _dispatch(self, batch: "list[_QueuedRequest]") -> None:
        """Execute one batch and resolve its futures.

        Single-request batches and fault-injected stores go through the
        per-request path — ``_execute`` owns the repair-and-retry
        discipline, which has no batched analogue (a fault mid-batch
        must not re-execute the requests that already landed). Everything
        else locks the batch's stripe union once under the shared array
        lock and runs :meth:`ArrayStore.execute_batch`; being the only
        foreground dispatcher while holding the array lock shared is
        what satisfies ``execute_batch``'s no-concurrent-writer
        contract for gap-bridged spans.
        """
        # Dispatcher-private counters: single thread, no lock needed.
        self.batches += 1
        self.batched_requests += len(batch)
        try:
            if len(batch) == 1 or self.store.fault_plan is not None:
                for request in batch:
                    try:
                        request.future.set_result(
                            self._execute(
                                request.is_write, request.offset,
                                request.length, request.payload,
                            )
                        )
                    except BaseException as exc:  # noqa: BLE001 - caller's
                        request.future.set_exception(exc)
                return
            stripes: set[int] = set()
            for request in batch:
                stripes.update(
                    run.stripe
                    for run in self.device.mapping.byte_runs(
                        request.offset, request.length
                    )
                )
            ops = [
                (
                    request.is_write,
                    request.offset,
                    request.payload if request.is_write else request.length,
                )
                for request in batch
            ]
            try:
                with self._array.shared(), self._stripe_locks.locked(stripes):
                    results = self.store.execute_batch(ops)
            except BaseException as exc:  # noqa: BLE001 - fan out to callers
                for request in batch:
                    request.future.set_exception(exc)
                return
            for request, result in zip(batch, results):
                request.future.set_result(result)
        finally:
            self._finish_batch(batch)

    def _finish_batch(self, batch: "list[_QueuedRequest]") -> None:
        """Slot release + stats for the dispatcher-owned batch members.

        Async ``enqueue`` requests (``started`` set) are accounted here
        in one stats-lock acquisition for the whole batch; synchronous
        batched-mode callers (``started is None``) hold their own slot
        and account for themselves in :meth:`_admitted`. Runs after the
        stripe/array locks are released, so a QoS repair tick taking the
        exclusive lock cannot self-deadlock.
        """
        owned = [r for r in batch if r.started is not None]
        if not owned:
            return
        now = time.perf_counter()
        for _ in owned:
            self._admission.release()
        ticks = 0
        with self._stats_lock:
            stats = self.stats
            for request in owned:
                if request.is_write:
                    stats.writes += 1
                    stats.bytes_written += request.length
                else:
                    stats.reads += 1
                    stats.bytes_read += request.length
                stats.latencies_ms.append((now - request.started) * 1e3)
                if self.repair_every:
                    self._completed_since_tick += 1
                    if self._completed_since_tick >= self.repair_every:
                        self._completed_since_tick = 0
                        ticks += 1
        for _ in range(ticks):
            self._repair_tick()

    def _repair_tick(self) -> None:
        """One throttled repair tick under the exclusive array lock."""
        if self.repair is None:
            return
        with self._array.exclusive():
            self.repair.tick()
        with self._stats_lock:
            self.stats.repair_ticks += 1

    def drain_repair(self) -> None:
        """Run repair ticks (exclusive) until the array is healthy."""
        if self.repair is None:
            return
        with self._array.exclusive():
            self.repair.drain()
