"""Concurrent block-service layer: many callers, one array.

Everything below this package — :class:`~repro.store.ArrayStore`, the
write-back :class:`~repro.raid.StripeCache`, the
:class:`~repro.faults.repair.RepairController` — began life assuming
exactly one caller. This package is the front-end that removes the
assumption:

* :mod:`repro.service.locks` — the locking discipline: an array-level
  readers-writer lock (foreground shared, maintenance exclusive) above
  refcounted per-stripe mutexes acquired in ascending order (deadlock-
  free by construction);
* :mod:`repro.service.scheduler` — :class:`BlockService`, the
  thread-pool request front-end with semaphore admission and the QoS
  arbiter that interleaves throttled repair ticks with foreground
  traffic;
* :mod:`repro.service.loadgen` — the closed-loop load generator:
  barrier-synchronized workers replaying traces concurrently, per-
  request latency sampling (p50/p99 vs offered load), and the
  :func:`split_disjoint` partitioner behind the serial-equivalence
  contract (disjoint concurrent replay ≡ serial replay, byte for byte
  and counter for counter);
* :mod:`repro.service.volume` — :class:`VolumeService`, the same
  front-end over a multi-array :class:`~repro.volume.VolumeManager`:
  per-shard admission semaphores plus a background driver for online
  restriping under load.
"""

from repro.service.loadgen import (
    ConcurrentReplayResult,
    replay_batched,
    replay_concurrent,
    split_disjoint,
)
from repro.service.locks import ArrayRWLock, FifoSemaphore, StripeLockManager
from repro.service.scheduler import BlockService, ServiceStats, percentile


def __getattr__(name: str):
    """Lazy ``VolumeService`` import.

    ``repro.volume.manager`` imports this package for the locks, and
    ``repro.service.volume`` imports the manager back — resolving
    ``VolumeService`` on first attribute access instead of at package
    import keeps the cycle open regardless of which package the caller
    imports first.
    """
    if name == "VolumeService":
        from repro.service.volume import VolumeService

        return VolumeService
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ArrayRWLock",
    "BlockService",
    "ConcurrentReplayResult",
    "FifoSemaphore",
    "ServiceStats",
    "StripeLockManager",
    "VolumeService",
    "percentile",
    "replay_batched",
    "replay_concurrent",
    "split_disjoint",
]
