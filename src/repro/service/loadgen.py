"""Closed-loop concurrent trace replay against the block service.

The serial :meth:`repro.raid.BlockDevice.replay` answers "what does one
caller cost"; this module answers the ROADMAP's fleet question: what
happens to tail latency when *N* callers contend. Each worker replays
its own trace closed-loop — issue a request, wait for completion, issue
the next — so offered load is set by the worker count, the classic
closed-loop load-generator model. Latency is sampled per request
(admission to completion) and summarized as p50/p99.

Determinism contract (the cross-validation PR 3 established, extended to
concurrency): payload bytes are the same offset-derived pattern serial
replay uses, so replaying **disjoint** traces concurrently must produce
a byte-identical array and identical aggregate ``IoCounters`` to
replaying them back-to-back serially — per-stripe state never depends
on cross-stripe interleaving. :func:`split_disjoint` builds such traces
by confining one source trace to per-worker stripe-aligned partitions;
``tests/test_service.py`` and ``benchmarks/bench_service.py`` hold the
service to the contract.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.raid.blockdevice import _payload
from repro.service.scheduler import BlockService, percentile
from repro.store.metering import SyscallCounters
from repro.traces.model import Trace, TraceRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.repair import RepairStats
    from repro.raid.cache import CacheStats
    from repro.store import ArrayStore, IoCounters

__all__ = [
    "ConcurrentReplayResult",
    "replay_batched",
    "replay_concurrent",
    "split_disjoint",
]


@dataclass
class ConcurrentReplayResult:
    """Measured outcome of a closed-loop concurrent replay."""

    workers: int
    requests: int
    reads: int
    writes: int
    bytes_read: int
    bytes_written: int
    elapsed_s: float
    #: Aggregate measured chunk I/O over the whole replay (foreground +
    #: any repair), from the store's own meters.
    io: "IoCounters"
    #: Per-request latency samples (ms) across all workers.
    latencies_ms: list[float] = field(repr=False, default_factory=list)
    cache: "CacheStats | None" = None
    repair: "RepairStats | None" = None
    retried_requests: int = 0
    repair_ticks: int = 0
    #: Physical backing-file syscalls over the replay window (None when
    #: produced by a result predating the syscall meter).
    syscalls: "SyscallCounters | None" = None
    #: Lock-contention counters from :meth:`BlockService.contention`.
    contention: dict[str, float | int] | None = None
    #: CPUs on the recording host (scaling context for the counters).
    host_cpus: int = 0
    #: Batched-mode geometry: requested batch size (0 = per-request
    #: execution) and batches actually dispatched.
    batch_size: int = 0
    batches: int = 0

    @property
    def throughput_iops(self) -> float:
        """Completed requests per wall-clock second."""
        return self.requests / self.elapsed_s if self.elapsed_s > 0 else 0.0

    @property
    def syscalls_per_request(self) -> float:
        """Mean backing-file syscalls per completed request."""
        if self.syscalls is None or not self.requests:
            return 0.0
        return self.syscalls.total / self.requests

    @property
    def p50_latency_ms(self) -> float:
        """Median request latency in milliseconds."""
        return percentile(self.latencies_ms, 0.50)

    @property
    def p99_latency_ms(self) -> float:
        """99th-percentile request latency in milliseconds."""
        return percentile(self.latencies_ms, 0.99)

    @property
    def mean_latency_ms(self) -> float:
        """Mean request latency in milliseconds."""
        if not self.latencies_ms:
            return 0.0
        return sum(self.latencies_ms) / len(self.latencies_ms)


def split_disjoint(
    trace: Trace, parts: int, store: "ArrayStore"
) -> list[Trace]:
    """Split ``trace`` into ``parts`` traces over disjoint stripe ranges.

    The store's stripes are divided into ``parts`` equal contiguous
    partitions (stripe-aligned, so no two partitions share any parity
    chain); requests are dealt round-robin and each request's offset is
    folded into its partition's byte range, lengths clamped to the
    partition — the same wrap-and-clamp convention serial replay applies
    at device scale. Replaying the pieces concurrently is then free of
    data races *by address*, which is what makes the serial-equivalence
    contract testable.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if len(trace) < parts:
        raise ValueError(
            f"trace has {len(trace)} requests, cannot feed {parts} workers"
        )
    stripes_per_part = store.stripes // parts
    if stripes_per_part < 1:
        raise ValueError(
            f"{store.stripes} stripes cannot host {parts} disjoint partitions"
        )
    part_bytes = stripes_per_part * store.code.num_data * store.chunk_bytes
    buckets: list[list[TraceRequest]] = [[] for _ in range(parts)]
    for index, request in enumerate(trace):
        part = index % parts
        offset = request.offset % part_bytes
        buckets[part].append(
            TraceRequest(
                timestamp=request.timestamp,
                offset=part * part_bytes + offset,
                length=min(request.length, part_bytes - offset),
                is_write=request.is_write,
            )
        )
    return [
        Trace(f"{trace.name}[{part}/{parts}]", requests)
        for part, requests in enumerate(buckets)
    ]


def _replay_worker(
    service: BlockService,
    trace: Trace,
    barrier: threading.Barrier,
    errors: list[BaseException],
) -> None:
    """One closed-loop client: replay ``trace`` request by request."""
    capacity = service.capacity_bytes
    try:
        barrier.wait()
        for request in trace:
            offset = request.offset % capacity
            length = min(request.length, capacity - offset)
            if request.is_write:
                service.write(offset, _payload(request, length))
            else:
                service.read(offset, length)
    except BaseException as exc:
        # Recorded for the caller to re-raise after join — swallowed
        # here so the thread dies quietly instead of double-reporting.
        errors.append(exc)
        # Unblock workers still waiting on the start barrier.
        barrier.abort()


def replay_concurrent(
    store: "ArrayStore",
    traces: Sequence[Trace],
    *,
    repair=None,
    repair_every: int = 0,
    join_timeout_s: float = 600.0,
    batch_size: int = 0,
) -> ConcurrentReplayResult:
    """Replay ``traces`` concurrently, one closed-loop worker per trace.

    Workers start together (barrier-synchronized) and each replays its
    trace through a shared :class:`BlockService`; the service is closed
    (repair drained, cache flushed) before the result is assembled, so
    the aggregate counters cover everything the replay made durable —
    mirroring what serial :meth:`~repro.raid.BlockDevice.replay` counts.
    With ``batch_size > 0`` the service runs in batched mode — workers
    stay closed-loop, so batches only fill as far as the worker count
    allows; use :func:`replay_batched` for an open-loop batch sweep.
    """
    service = BlockService(
        store,
        workers=max(1, len(traces)),
        repair=repair,
        repair_every=repair_every,
        batch_size=batch_size,
    )
    io_before = store.io.snapshot()
    syscalls_before = store.syscalls.snapshot()
    cache = store.cache
    cache_before = cache.snapshot_stats() if cache is not None else None
    barrier = threading.Barrier(len(traces))
    errors: list[BaseException] = []
    threads = [
        threading.Thread(
            target=_replay_worker,
            args=(service, trace, barrier, errors),
            name=f"repro-loadgen-{index}",
            daemon=True,
        )
        for index, trace in enumerate(traces)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=join_timeout_s)
        if thread.is_alive():
            raise TimeoutError(
                f"load worker {thread.name} still running after "
                f"{join_timeout_s}s — suspected deadlock"
            )
    service.close()
    elapsed = time.perf_counter() - started
    if errors:
        # Prefer the root cause over the BrokenBarrierError fallout the
        # abort caused in the other workers.
        raise next(
            (
                error
                for error in errors
                if not isinstance(error, threading.BrokenBarrierError)
            ),
            errors[0],
        )
    stats = service.stats
    return ConcurrentReplayResult(
        workers=len(traces),
        requests=stats.requests,
        reads=stats.reads,
        writes=stats.writes,
        bytes_read=stats.bytes_read,
        bytes_written=stats.bytes_written,
        elapsed_s=elapsed,
        io=store.io.snapshot() - io_before,
        latencies_ms=list(stats.latencies_ms),
        cache=(
            cache.snapshot_stats() - cache_before
            if cache is not None
            else None
        ),
        repair=repair.stats if repair is not None else None,
        retried_requests=stats.retried_requests,
        repair_ticks=stats.repair_ticks,
        syscalls=store.syscalls.snapshot() - syscalls_before,
        contention=service.contention(),
        host_cpus=os.cpu_count() or 1,
        batch_size=batch_size,
        batches=service.batches,
    )


def replay_batched(
    store: "ArrayStore",
    trace: Trace,
    *,
    batch_size: int,
    window: int | None = None,
    repair=None,
    repair_every: int = 0,
    join_timeout_s: float = 600.0,
) -> ConcurrentReplayResult:
    """Replay ``trace`` open-loop through a batching service.

    One submitter issues requests in strict trace order via
    :meth:`BlockService.enqueue`; the admission gate (``window``
    outstanding requests, default ``16 * batch_size``) is the only
    backpressure, so the dispatcher sees a standing queue and batches
    actually fill — a closed-loop worker pool can never offer more than
    ``workers`` concurrent requests, which is why the worker sweep and
    the batch sweep are different experiments. The default window is
    deliberately much deeper than one batch: it is the dispatcher's
    stripe-affinity reorder horizon, and affinity is what converts
    cross-request overlap into span coalescing. Replay stays
    deterministic at the byte level regardless of batch size: the
    dispatcher preserves per-stripe FIFO order and requests on disjoint
    stripes commute, so any two batch sizes produce byte-identical
    arrays and identical aggregate chunk ``IoCounters``.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    depth = window if window is not None else max(32, 16 * batch_size)
    service = BlockService(
        store,
        workers=1,
        repair=repair,
        repair_every=repair_every,
        batch_size=batch_size,
        max_inflight=depth,
    )
    io_before = store.io.snapshot()
    syscalls_before = store.syscalls.snapshot()
    cache = store.cache
    cache_before = cache.snapshot_stats() if cache is not None else None
    capacity = service.capacity_bytes
    futures: "list[Future[np.ndarray | None]]" = []
    started = time.perf_counter()
    for request in trace:
        offset = request.offset % capacity
        length = min(request.length, capacity - offset)
        if request.is_write:
            futures.append(
                service.enqueue(True, offset, _payload(request, length))
            )
        else:
            futures.append(service.enqueue(False, offset, length))
    for future in futures:
        future.result(timeout=join_timeout_s)
    service.close()
    elapsed = time.perf_counter() - started
    stats = service.stats
    return ConcurrentReplayResult(
        workers=1,
        requests=stats.requests,
        reads=stats.reads,
        writes=stats.writes,
        bytes_read=stats.bytes_read,
        bytes_written=stats.bytes_written,
        elapsed_s=elapsed,
        io=store.io.snapshot() - io_before,
        latencies_ms=list(stats.latencies_ms),
        cache=(
            cache.snapshot_stats() - cache_before
            if cache is not None
            else None
        ),
        repair=repair.stats if repair is not None else None,
        retried_requests=stats.retried_requests,
        repair_ticks=stats.repair_ticks,
        syscalls=store.syscalls.snapshot() - syscalls_before,
        contention=service.contention(),
        host_cpus=os.cpu_count() or 1,
        batch_size=batch_size,
        batches=service.batches,
    )
