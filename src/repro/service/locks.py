"""Locking primitives for the concurrent block service.

Two levels, always acquired in the same global order:

1. the **array lock** (:class:`ArrayRWLock`) — shared by foreground
   requests, exclusive for operations that change what *every* stripe
   means: failing a disk, rebuild/scrub ticks, draining the write-back
   cache. Exclusive acquisition waits for in-flight requests to retire
   and blocks new ones, so a repair tick always sees a quiescent array;
2. **per-stripe locks** (:class:`StripeLockManager`) — a request takes
   the locks of every stripe its byte range touches, in ascending stripe
   order. Ordered acquisition makes deadlock impossible: any two
   requests contending on two stripes block on them in the same order.

Stripe locks are refcounted and created on demand, so the manager's
memory footprint follows the *contended* stripe set, not the array size.

The lock order is ``array (shared|exclusive) → stripes ascending``;
nothing in the service acquires an array lock while holding a stripe
lock. The write-back cache adds its own internal reentrant lock *below*
the stripe level (see :class:`repro.raid.cache.StripeCache`); it never
acquires service locks, keeping the hierarchy acyclic.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterable, Iterator

__all__ = ["ArrayRWLock", "FifoSemaphore", "StripeLockManager"]


class FifoSemaphore:
    """A counting semaphore with strict FIFO wakeup order.

    ``threading.Semaphore`` makes no ordering promise: its ``release``
    wakes *some* waiter, and under contention the thread that arrived
    last is regularly admitted first — which is exactly the tail-latency
    driver the service's admission gate saw at 8 workers. Here every
    contended ``acquire`` takes a ticket (an event appended to a deque)
    and ``release`` hands its slot directly to the oldest ticket without
    ever letting a newcomer barge past the queue, so admission order is
    arrival order.

    Also the service's contention meter: :attr:`acquisitions` counts
    every acquire and :attr:`wait_ms` accumulates time spent blocked
    (contended acquires only — the uncontended fast path is not timed).
    """

    def __init__(self, value: int) -> None:
        if value < 1:
            raise ValueError("value must be >= 1")
        self._lock = threading.Lock()
        self._initial = value
        self._value = value
        self._waiters: deque[threading.Event] = deque()
        self.acquisitions = 0
        self.wait_ms = 0.0

    @property
    def waiting(self) -> int:
        """Threads currently queued behind the gate."""
        with self._lock:
            return len(self._waiters)

    def acquire(self) -> None:
        """Take one slot, queuing FIFO behind earlier arrivals."""
        with self._lock:
            self.acquisitions += 1
            if self._value > 0 and not self._waiters:
                self._value -= 1
                return
            ticket = threading.Event()
            self._waiters.append(ticket)
        started = time.perf_counter()
        # The releasing thread hands its slot directly to this ticket:
        # the wait returning IS the acquisition (no re-check loop a
        # newcomer could race).
        ticket.wait()
        waited = (time.perf_counter() - started) * 1e3
        with self._lock:
            self.wait_ms += waited

    def release(self) -> None:
        """Free one slot, waking the longest-waiting acquirer if any."""
        with self._lock:
            if self._waiters:
                self._waiters.popleft().set()
            elif self._value >= self._initial:
                raise ValueError("semaphore released too many times")
            else:
                self._value += 1

    def __enter__(self) -> "FifoSemaphore":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class ArrayRWLock:
    """A readers-writer lock with writer preference.

    Foreground requests hold it shared; maintenance (disk failure,
    repair ticks, cache drains) holds it exclusive. Writer preference —
    a waiting writer blocks *new* readers — keeps a steady foreground
    stream from starving repair forever; repair ticks are rare and
    bounded, so the foreground stall per tick is the tick's own cost.

    :attr:`acquisitions` counts shared+exclusive acquires; :attr:`wait_ms`
    accumulates time spent blocked on contended acquires.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0
        self.acquisitions = 0
        self.wait_ms = 0.0

    def acquire_shared(self) -> None:
        """Take the lock shared; blocks while a writer holds or waits."""
        with self._cond:
            self.acquisitions += 1
            if self._writer or self._writers_waiting:
                started = time.perf_counter()
                while self._writer or self._writers_waiting:
                    self._cond.wait()
                self.wait_ms += (time.perf_counter() - started) * 1e3
            self._readers += 1

    def release_shared(self) -> None:
        """Drop a shared hold, waking a waiting writer if we were last."""
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_exclusive(self) -> None:
        """Take the lock exclusive once every reader has retired."""
        with self._cond:
            self.acquisitions += 1
            self._writers_waiting += 1
            started = (
                time.perf_counter()
                if self._writer or self._readers
                else None
            )
            try:
                while self._writer or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            if started is not None:
                self.wait_ms += (time.perf_counter() - started) * 1e3
            self._writer = True

    def release_exclusive(self) -> None:
        """Drop the exclusive hold and wake all waiters."""
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def shared(self) -> Iterator[None]:
        """Hold the lock shared for the duration of the block."""
        self.acquire_shared()
        try:
            yield
        finally:
            self.release_shared()

    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Hold the lock exclusive for the duration of the block."""
        self.acquire_exclusive()
        try:
            yield
        finally:
            self.release_exclusive()


class _StripeLock:
    """One stripe's lock plus the refcount keeping it alive."""

    __slots__ = ("lock", "refs")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.refs = 0


class StripeLockManager:
    """On-demand, refcounted per-stripe mutexes with ordered acquisition.

    :meth:`locked` takes the locks of a stripe set in ascending index
    order and releases them in reverse. Because every caller sorts, the
    wait-for graph over stripe locks is acyclic — two requests touching
    stripes {3, 7} and {7, 3} both lock 3 before 7, so neither can hold
    7 while waiting on 3.

    :attr:`acquisitions` counts individual stripe-lock acquires (a batch
    locking a 5-stripe union counts 5); :attr:`wait_ms` accumulates time
    spent blocked on contended stripe locks.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._locks: dict[int, _StripeLock] = {}
        self.acquisitions = 0
        self.wait_ms = 0.0

    def __len__(self) -> int:
        """Stripe locks currently alive (held or being waited on)."""
        with self._mutex:
            return len(self._locks)

    def _checkout(self, stripe: int) -> _StripeLock:
        with self._mutex:
            entry = self._locks.get(stripe)
            if entry is None:
                entry = self._locks[stripe] = _StripeLock()
            entry.refs += 1
            return entry

    def _checkin(self, stripe: int, entry: _StripeLock) -> None:
        with self._mutex:
            entry.refs -= 1
            if entry.refs == 0:
                del self._locks[stripe]

    @contextmanager
    def locked(self, stripes: Iterable[int]) -> Iterator[None]:
        """Hold the locks of ``stripes`` (deduplicated, ascending)."""
        ordered = sorted(set(stripes))
        held: list[tuple[int, _StripeLock]] = []
        waited_ms = 0.0
        try:
            for stripe in ordered:
                entry = self._checkout(stripe)
                # Timed slow path only when contended: perf_counter
                # stays off the uncontended fast path.
                if not entry.lock.acquire(blocking=False):
                    started = time.perf_counter()
                    entry.lock.acquire()
                    waited_ms += (time.perf_counter() - started) * 1e3
                held.append((stripe, entry))
            if waited_ms or ordered:
                with self._mutex:
                    self.acquisitions += len(ordered)
                    self.wait_ms += waited_ms
            yield
        finally:
            for stripe, entry in reversed(held):
                entry.lock.release()
                self._checkin(stripe, entry)
