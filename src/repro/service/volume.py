"""The volume front-end: many callers, many arrays, one byte space.

:class:`VolumeService` is to a :class:`~repro.volume.VolumeManager` what
:class:`~repro.service.BlockService` is to one
:class:`~repro.store.ArrayStore` — the admission and threading layer.
The volume already owns correctness (extent routing, journal ordering,
the volume → shard → stripe lock ladder); the service adds *fairness*:

* **per-shard admission.** One global semaphore would let a burst
  aimed at one hot shard starve every other shard's queue. Instead each
  shard gets its own inflight bound; a request takes one permit per
  distinct shard it touches, in ascending shard order (the same
  total-order trick the stripe locks use, so two requests can never
  hold-and-wait in a cycle). Disjoint-shard traffic never queues behind
  a hot shard. Admission is keyed by the *source-layout* shard — during
  a migration the copies land wherever the cursor says, but the
  throttle's job is bounding concurrency, not routing, and the source
  layout is the one foreground traffic is shaped by.
* **a background migration driver.** :meth:`start_restripe` runs a
  :class:`~repro.volume.Restriper` on its own thread while request
  threads keep flowing — the configuration every restripe latency
  benchmark measures.

Stats reuse :class:`~repro.service.ServiceStats` (admission-to-
completion latency per request, p50/p99 via the shared nearest-rank
:func:`~repro.service.percentile`).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.service.scheduler import ServiceStats
from repro.volume.manager import ShardSpec, VolumeManager
from repro.volume.restripe import Restriper, RestripeStats

__all__ = ["VolumeService"]


class VolumeService:
    """Thread-pool request front-end over an elastic volume.

    Args:
        volume: the (thread-safe) :class:`~repro.volume.VolumeManager`
            to serve. Closing the service closes the volume.
        workers: threads in the request pool behind :meth:`submit_read`
            / :meth:`submit_write`; synchronous :meth:`read` /
            :meth:`write` run on the caller's thread under the same
            admission.
        per_shard_inflight: concurrent requests admitted per shard
            (each request holds one permit for every shard it spans).
    """

    def __init__(
        self,
        volume: VolumeManager,
        *,
        workers: int = 4,
        per_shard_inflight: int = 4,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if per_shard_inflight < 1:
            raise ValueError("per_shard_inflight must be >= 1")
        self.volume = volume
        self.workers = workers
        self.per_shard_inflight = per_shard_inflight
        self.stats = ServiceStats()
        self._stats_lock = threading.Lock()
        self._admission_lock = threading.Lock()
        self._admission: dict[int, threading.BoundedSemaphore] = {}
        self._pool: ThreadPoolExecutor | None = None
        self._restriper: Restriper | None = None
        self._restripe_thread: threading.Thread | None = None
        self._restripe_error: BaseException | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Addressable bytes of the underlying volume."""
        return self.volume.capacity_bytes

    def _executor(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.workers,
                thread_name_prefix="repro-volume",
            )
        return self._pool

    def close(self) -> None:
        """Drain requests and any migration, then close the volume."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self.join_restripe()
        self.volume.close()

    def __enter__(self) -> "VolumeService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def _permit(self, shard: int) -> threading.BoundedSemaphore:
        with self._admission_lock:
            gate = self._admission.get(shard)
            if gate is None:
                gate = threading.BoundedSemaphore(self.per_shard_inflight)
                self._admission[shard] = gate
            return gate

    def _admitted(self, is_write: bool, offset: int, length: int, payload):
        """One request: per-shard admission, timed volume I/O, stats."""
        shards = sorted(
            {
                run.shard
                for run in self.volume.mapping.byte_runs(offset, length)
            }
        )
        gates = [self._permit(shard) for shard in shards]
        started = time.perf_counter()
        for gate in gates:
            gate.acquire()
        try:
            if is_write:
                result = None
                self.volume.write_bytes(offset, payload)
            else:
                result = self.volume.read_bytes(offset, length)
        finally:
            for gate in reversed(gates):
                gate.release()
        elapsed_ms = (time.perf_counter() - started) * 1e3
        with self._stats_lock:
            if is_write:
                self.stats.writes += 1
                self.stats.bytes_written += length
            else:
                self.stats.reads += 1
                self.stats.bytes_read += length
            self.stats.latencies_ms.append(elapsed_ms)
        return result

    # ------------------------------------------------------------------
    # public I/O
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at volume ``offset``."""
        return self._admitted(False, offset, length, None).tobytes()

    def write(self, offset: int, data: bytes | bytearray | np.ndarray) -> None:
        """Write ``data`` at volume ``offset``."""
        buf = (
            np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
            if isinstance(data, np.ndarray)
            else np.frombuffer(bytes(data), dtype=np.uint8)
        )
        self._admitted(True, offset, buf.size, buf)

    def submit_read(self, offset: int, length: int) -> "Future[bytes]":
        """Queue a read on the service pool; returns its future."""
        return self._executor().submit(self.read, offset, length)

    def submit_write(
        self, offset: int, data: bytes | bytearray | np.ndarray
    ) -> "Future[None]":
        """Queue a write on the service pool; returns its future."""
        return self._executor().submit(self.write, offset, data)

    # ------------------------------------------------------------------
    # migration driver
    # ------------------------------------------------------------------
    def start_restripe(
        self,
        target: Sequence[ShardSpec] | None = None,
        extents_per_tick: int = 4,
        tick_delay: float = 0.0,
    ) -> Restriper:
        """Start (or resume, with ``target=None``) a migration on a
        background thread; foreground requests keep flowing."""
        if self._restripe_thread is not None:
            raise RuntimeError("a restripe driver is already running")
        restriper = Restriper(
            self.volume,
            target,
            extents_per_tick=extents_per_tick,
            tick_delay=tick_delay,
        )
        self._restriper = restriper
        self._restripe_error = None

        def _drive() -> None:
            try:
                restriper.run()
            except BaseException as exc:  # noqa: BLE001 - rethrown in join
                self._restripe_error = exc

        self._restripe_thread = threading.Thread(
            target=_drive, name="repro-restripe", daemon=True
        )
        self._restripe_thread.start()
        return restriper

    def join_restripe(self) -> RestripeStats | None:
        """Wait for the background migration (if any); returns its
        stats, re-raising any error it died with."""
        thread, self._restripe_thread = self._restripe_thread, None
        if thread is None:
            return None
        thread.join()
        error, self._restripe_error = self._restripe_error, None
        if error is not None:
            raise error
        restriper, self._restriper = self._restriper, None
        return restriper.stats if restriper else None

    @property
    def restriping(self) -> bool:
        """True while the background migration driver is running."""
        thread = self._restripe_thread
        return thread is not None and thread.is_alive()
