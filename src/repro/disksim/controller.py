"""RAID controller: trace requests to per-disk element I/O plans.

A thin front-end over the shared planning layer of :mod:`repro.raid` —
the address mapping (:class:`repro.raid.ArrayMapping`) and the write-path
model (:class:`repro.raid.RequestPlanner`) are the *same objects* the
file-backed :class:`repro.store.ArrayStore` executes, so the plans this
controller prices in the simulator and the chunk I/Os the store meters
against real files agree element for element (see
``tests/test_raid_plan_vs_store.py``).

Strategies: ``"rmw"`` (read-modify-write, the paper's response-time
model and the default), ``"rcw"`` (reconstruct-write), ``"auto"``
(cheaper of the two per run) — plus the executable strategies
(``"delta"``, ``"delta-always"``, ``"stripe"``) matching the store's
``write_mode``\\ s for plan-vs-measured cross-validation, and
``"cached"``, which mirrors a write-back-cached store
(:mod:`repro.raid.cache`) request for request via a shadow cache. Degraded-mode
reads expand to the survivors of the recovery schedule; writes to failed
disks are dropped, as in a real array.
"""

from __future__ import annotations

from repro.codes.base import ArrayCode
from repro.raid.mapping import DiskAddress
from repro.raid.planner import ElementIO, RequestPlan, RequestPlanner
from repro.traces.model import TraceRequest

__all__ = ["ElementIO", "RequestPlan", "RaidController"]


class RaidController:
    """Maps logical byte requests onto element I/Os for one array code.

    Args:
        code: the erasure code striping this array.
        chunk_bytes: stripe-unit size (8 KB in the paper's configuration).
        write_strategy: any of :data:`repro.raid.WRITE_STRATEGIES`
            (default ``"rmw"``, the paper's model).
        cache_stripes: write-back cache capacity modelled by the
            ``"cached"`` strategy (ignored by every other strategy).
    """

    def __init__(
        self,
        code: ArrayCode,
        chunk_bytes: int = 8 * 1024,
        write_strategy: str = "rmw",
        cache_stripes: int = 8,
    ) -> None:
        self.planner = RequestPlanner(
            code, chunk_bytes, write_strategy=write_strategy,
            cache_stripes=cache_stripes,
        )
        self.code = code
        self.chunk_bytes = chunk_bytes
        self.write_strategy = write_strategy

    def element_lba(self, stripe: int, pos: tuple[int, int]) -> ElementIO:
        """Locate element ``pos`` of ``stripe`` on its disk (read I/O)."""
        address: DiskAddress = self.planner.mapping.element_address(stripe, pos)
        return ElementIO(
            disk=address.disk, lba_chunk=address.lba_chunk, is_write=False
        )

    def plan(
        self, request: TraceRequest, failed: tuple[int, ...] = ()
    ) -> RequestPlan:
        """Build the element I/O plan for one trace request.

        Args:
            request: the logical request.
            failed: currently failed disks; their I/Os are redirected
                (reads become survivor reads per the recovery schedule,
                writes to failed disks are dropped).
        """
        return self.planner.plan(request, failed)
