"""RAID controller: trace requests to per-disk element I/O plans.

The controller owns the address mapping (logical chunks fill each stripe's
data elements in row-major order; element ``(row, col)`` of stripe ``s``
lands on disk ``col`` at chunk LBA ``s * rows + row``) and the write path:

* **full-stripe write** — write every stored element of the stripe, no
  pre-reads;
* **partial write** — read-modify-write: pre-read the old data elements
  and the affected parity elements (the update-penalty closure), then
  write them back. The parity set is exactly the one the write-complexity
  analysis counts, which is what ties Fig. 13's response times to
  Figs. 10-12's element counts;
* **read** — read the covered data elements.

Degraded-mode reads (reconstruction on the fly) are supported for
experiments with failed disks: reads targeting failed columns expand to
the survivors of the recovery schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.trace_cost import request_runs
from repro.codes.base import ArrayCode
from repro.traces.model import TraceRequest

__all__ = ["ElementIO", "RequestPlan", "RaidController"]


@dataclass(frozen=True)
class ElementIO:
    """One chunk-sized disk I/O derived from a logical request."""

    disk: int
    lba_chunk: int
    is_write: bool


@dataclass
class RequestPlan:
    """Two-phase I/O plan for one request: reads, then dependent writes."""

    reads: list[ElementIO]
    writes: list[ElementIO]

    @property
    def total_ios(self) -> int:
        """Element I/Os the plan issues."""
        return len(self.reads) + len(self.writes)


class RaidController:
    """Maps logical byte requests onto element I/Os for one array code.

    Args:
        code: the erasure code striping this array.
        chunk_bytes: stripe-unit size (8 KB in the paper's configuration).
        write_strategy: ``"rmw"`` (read-modify-write, the paper's model),
            ``"rcw"`` (reconstruct-write), or ``"auto"`` (per-run cheaper
            of the two; see :mod:`repro.analysis.write_path`).
    """

    def __init__(
        self,
        code: ArrayCode,
        chunk_bytes: int = 8 * 1024,
        write_strategy: str = "rmw",
    ) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        if write_strategy not in ("rmw", "rcw", "auto"):
            raise ValueError(f"unknown write strategy {write_strategy!r}")
        self.code = code
        self.chunk_bytes = chunk_bytes
        self.write_strategy = write_strategy

    def element_lba(self, stripe: int, pos: tuple[int, int]) -> ElementIO:
        """Locate element ``pos`` of ``stripe`` on its disk (read I/O)."""
        row, col = pos
        return ElementIO(disk=col, lba_chunk=stripe * self.code.rows + row,
                         is_write=False)

    def _io(self, stripe: int, pos: tuple[int, int], is_write: bool) -> ElementIO:
        row, col = pos
        return ElementIO(disk=col, lba_chunk=stripe * self.code.rows + row,
                         is_write=is_write)

    def plan(self, request: TraceRequest, failed: tuple[int, ...] = ()) -> RequestPlan:
        """Build the element I/O plan for one trace request.

        Args:
            request: the logical request.
            failed: currently failed disks; their I/Os are redirected
                (reads become survivor reads per the recovery schedule,
                writes to failed disks are dropped).
        """
        runs = request_runs(
            self.code, request.offset, request.length, self.chunk_bytes
        )
        reads: list[ElementIO] = []
        writes: list[ElementIO] = []
        failed_set = set(failed)
        for stripe, start, length in runs:
            data_positions = [
                self.code.data_positions[start + i] for i in range(length)
            ]
            if request.is_write:
                if length >= self.code.num_data:
                    for pos in self.code.nonempty_positions:
                        if pos[1] not in failed_set:
                            writes.append(self._io(stripe, pos, True))
                    continue
                plan_cost = self._partial_write_plan(data_positions)
                for pos in plan_cost.pre_reads:
                    if pos[1] not in failed_set:
                        reads.append(self._io(stripe, pos, False))
                for pos in plan_cost.writes:
                    if pos[1] not in failed_set:
                        writes.append(self._io(stripe, pos, True))
            else:
                for pos in data_positions:
                    if pos[1] in failed_set:
                        reads.extend(self._degraded_read(stripe, failed))
                    else:
                        reads.append(self._io(stripe, pos, False))
        return RequestPlan(reads=_dedupe(reads), writes=_dedupe(writes))

    def _partial_write_plan(self, data_positions):
        """Resolve the pre-read/write sets per the configured strategy."""
        from repro.analysis.write_path import (
            choose_strategy,
            rcw_cost,
            rmw_cost,
        )

        if self.write_strategy == "rmw":
            return rmw_cost(self.code, data_positions)
        if self.write_strategy == "rcw":
            return rcw_cost(self.code, data_positions)
        return choose_strategy(self.code, data_positions)

    def _degraded_read(
        self, stripe: int, failed: tuple[int, ...]
    ) -> list[ElementIO]:
        """Survivor reads needed to reconstruct a lost element's stripe."""
        decoder = self.code.decoder_for(failed)
        return [
            self._io(stripe, pos, False)
            for pos in decoder.plan.known_positions
        ]


def _dedupe(ios: list[ElementIO]) -> list[ElementIO]:
    """Drop duplicate element I/Os while preserving order."""
    seen: set[ElementIO] = set()
    out: list[ElementIO] = []
    for io in ios:
        if io not in seen:
            seen.add(io)
            out.append(io)
    return out
