"""Event-driven array simulation: queues, phases, response times.

The simulator advances a single event queue over two event kinds:

* request arrival — the controller plans the request; phase-1 I/Os (the
  pre-reads, or the only phase for reads/full-stripe writes) enqueue at
  their disks;
* I/O completion — the owning disk takes its next queued I/O; when a
  request's phase-1 I/Os all complete its phase-2 writes enqueue, and when
  everything completes the response time is recorded.

Disks are FIFO service stations priced by :class:`repro.disksim.Disk`.
This captures what Fig. 13 measures: codes that touch more elements per
write (higher update complexity) put more I/Os in the same queues and so
see proportionally higher mean response times under identical traces.
"""

from __future__ import annotations

import heapq
import statistics
from collections import deque
from dataclasses import dataclass, field

from repro.codes.base import ArrayCode
from repro.disksim.controller import ElementIO, RaidController
from repro.disksim.disk import Disk, DiskParameters
from repro.traces.model import Trace

__all__ = ["ArraySimulator", "SimulationResult", "simulate_trace"]


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulated trace replay."""

    code_name: str
    requests: int
    mean_response_ms: float
    median_response_ms: float
    p99_response_ms: float
    total_element_ios: int
    makespan_ms: float

    def normalized_to(self, baseline: "SimulationResult") -> float:
        """Mean response time relative to a baseline run (Fig. 13's axis)."""
        return self.mean_response_ms / baseline.mean_response_ms


@dataclass
class _PendingRequest:
    arrival_ms: float
    writes: list[ElementIO]
    outstanding: int
    phase: int  # 1 = reads in flight, 2 = writes in flight


@dataclass
class _DiskStation:
    disk: Disk
    queue: deque = field(default_factory=deque)
    busy: bool = False


class ArraySimulator:
    """Replays a trace against one code's array and collects latencies."""

    def __init__(
        self,
        code: ArrayCode,
        chunk_bytes: int = 8 * 1024,
        disk_params: DiskParameters | None = None,
        seed: int = 0,
        failed: tuple[int, ...] = (),
        write_strategy: str = "rmw",
    ) -> None:
        self.code = code
        self.controller = RaidController(
            code, chunk_bytes, write_strategy=write_strategy
        )
        params = disk_params or DiskParameters(chunk_bytes=chunk_bytes)
        self.stations = [
            _DiskStation(Disk(params, seed=seed * 1000 + i))
            for i in range(code.cols)
        ]
        self.chunk_bytes = chunk_bytes
        self.failed = tuple(sorted(set(failed)))

    def run(self, trace: Trace) -> SimulationResult:
        """Replay ``trace`` and return latency statistics."""
        events: list[tuple[float, int, str, object]] = []
        self._events = events
        self._seq = 0
        for request in trace:
            self._push(request.timestamp * 1000.0, "arrive", request)
        responses: list[float] = []
        total_ios = 0
        now = 0.0
        while events:
            now, _, kind, payload = heapq.heappop(events)
            if kind == "arrive":
                plan = self.controller.plan(payload, failed=self.failed)
                total_ios += plan.total_ios
                first_phase = plan.reads if plan.reads else plan.writes
                if not first_phase:
                    responses.append(0.0)
                    continue
                pending = _PendingRequest(
                    arrival_ms=now,
                    writes=plan.writes if plan.reads else [],
                    outstanding=len(first_phase),
                    phase=1 if plan.reads else 2,
                )
                for io in first_phase:
                    self._enqueue(now, io, pending)
            else:  # "complete"
                io, pending, station_index = payload  # type: ignore[misc]
                station = self.stations[station_index]
                station.busy = False
                self._start_next(now, station_index)
                pending.outstanding -= 1
                if pending.outstanding == 0:
                    if pending.phase == 1 and pending.writes:
                        pending.phase = 2
                        pending.outstanding = len(pending.writes)
                        for write_io in pending.writes:
                            self._enqueue(now, write_io, pending)
                        pending.writes = []
                    else:
                        responses.append(now - pending.arrival_ms)
        if not responses:
            raise ValueError("trace produced no completed requests")
        ordered = sorted(responses)
        return SimulationResult(
            code_name=self.code.name,
            requests=len(responses),
            mean_response_ms=statistics.fmean(responses),
            median_response_ms=ordered[len(ordered) // 2],
            p99_response_ms=ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))],
            total_element_ios=total_ios,
            makespan_ms=now,
        )

    def _push(self, when: float, kind: str, payload: object) -> None:
        heapq.heappush(self._events, (when, self._seq, kind, payload))
        self._seq += 1

    def _enqueue(self, now: float, io: ElementIO, pending) -> None:
        station = self.stations[io.disk]
        station.queue.append((io, pending))
        if not station.busy:
            self._start_next(now, io.disk)

    def _start_next(self, now: float, disk_index: int) -> None:
        station = self.stations[disk_index]
        if station.busy or not station.queue:
            return
        io, pending = station.queue.popleft()
        station.busy = True
        service = station.disk.service_ms(io.lba_chunk, self.chunk_bytes)
        self._push(now + service, "complete", (io, pending, disk_index))


def simulate_trace(
    code: ArrayCode,
    trace: Trace,
    chunk_bytes: int = 8 * 1024,
    disk_params: DiskParameters | None = None,
    seed: int = 0,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`ArraySimulator` and run it."""
    return ArraySimulator(
        code, chunk_bytes=chunk_bytes, disk_params=disk_params, seed=seed
    ).run(trace)
