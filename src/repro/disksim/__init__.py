"""Event-driven disk array simulator (the DiskSim [6] substitute).

Reproduces the methodology of Fig. 13: trace requests are mapped by a
RAID controller onto per-element chunk I/Os according to the erasure
code's write path (read-modify-write for partial writes, plain writes for
full stripes), the element I/Os queue at per-disk service stations with a
seek + rotation + transfer service model, and the metric is the average
time between a request's arrival and the completion of its last element
I/O.

Absolute times depend on the disk parameters (defaults model a 7.2k RPM
enterprise SATA drive of the trace era); the *relative* response times of
different codes — the quantity Fig. 13 plots (normalized) — are driven by
each code's element I/O counts and placement, which the controller
computes exactly.
"""

from repro.disksim.disk import DiskParameters, Disk
from repro.disksim.controller import RaidController, ElementIO
from repro.disksim.simulator import ArraySimulator, SimulationResult, simulate_trace

__all__ = [
    "DiskParameters",
    "Disk",
    "RaidController",
    "ElementIO",
    "ArraySimulator",
    "SimulationResult",
    "simulate_trace",
]
