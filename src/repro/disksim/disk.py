"""Single-disk service model: seek curve, rotational latency, transfer.

The model follows the classic DiskSim decomposition of a request's
service time:

``service = seek(distance) + rotation + transfer(bytes)``

* seek: zero for sequential access, otherwise a constant settle time plus
  a square-root curve in the seek distance (the standard approximation of
  measured seek profiles);
* rotation: uniform in ``[0, full_revolution)`` drawn from the disk's own
  deterministic RNG stream;
* transfer: bytes divided by the sustained media rate.

Addresses are in *chunks* (stripe units); the controller decides the
chunk size. The disk services one I/O at a time from a FIFO queue — queue
management lives in the simulator; this class only prices I/Os and tracks
head position.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["DiskParameters", "Disk"]


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical characteristics of one drive.

    Defaults approximate a 7,200 RPM enterprise SATA disk from the era of
    the Financial/MSR traces (~2002-2007): 8.5 ms full-stroke-average
    seek, 4.17 ms half-rotation average, ~90 MB/s sustained transfer.
    """

    rpm: float = 7200.0
    settle_ms: float = 0.8
    seek_curve_ms: float = 7.7          # added at full-stroke distance
    capacity_chunks: int = 2_000_000    # addressable chunks per disk
    transfer_mb_s: float = 90.0
    chunk_bytes: int = 8 * 1024

    @property
    def revolution_ms(self) -> float:
        """Duration of one full platter revolution in milliseconds."""
        return 60_000.0 / self.rpm

    def seek_ms(self, distance_chunks: int) -> float:
        """Seek time for a head movement of ``distance_chunks``."""
        if distance_chunks <= 0:
            return 0.0
        fraction = min(distance_chunks / self.capacity_chunks, 1.0)
        return self.settle_ms + self.seek_curve_ms * math.sqrt(fraction)

    def transfer_ms(self, num_bytes: int) -> float:
        """Media transfer time for ``num_bytes``."""
        return num_bytes / (self.transfer_mb_s * 1e6) * 1e3


class Disk:
    """One drive's dynamic state: head position and its RNG stream."""

    def __init__(self, params: DiskParameters, seed: int = 0) -> None:
        self.params = params
        self.head = 0
        self._rng = random.Random(seed)

    def service_ms(self, lba_chunk: int, num_bytes: int) -> float:
        """Price one I/O and move the head; returns the service time."""
        distance = abs(lba_chunk - self.head)
        seek = self.params.seek_ms(distance)
        if distance == 0:
            rotation = 0.0  # sequential hit: no rotational repositioning
        else:
            rotation = self._rng.uniform(0.0, self.params.revolution_ms)
        transfer = self.params.transfer_ms(num_bytes)
        self.head = lba_chunk + max(num_bytes // self.params.chunk_bytes, 1)
        return seek + rotation + transfer
