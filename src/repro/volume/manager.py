"""The elastic volume manager: many arrays, one byte address space.

A :class:`VolumeManager` stripes a byte space over N *shards* — each a
full :class:`~repro.store.ArrayStore` with its own code family and
geometry — and owns everything one array cannot:

* **two-level addressing** via :class:`~repro.volume.VolumeMapping`
  (volume byte → extent → shard → shard byte), with per-request routing
  that survives an in-flight migration (the cursor routing rule);
* **one shared on-disk intent journal**
  (:class:`~repro.store.journal.IntentJournal`) every shard seals its
  write intents into, so a crash anywhere — foreground write, restripe
  copy — is resolved by replay at the next open;
* **metadata** (``volume.json``, atomically replaced and fsynced) naming
  the shard set, the extent size, and any migration in flight, so
  :meth:`VolumeManager.open` reconstructs the exact routing state a
  crash interrupted;
* **the locking discipline**, acquired strictly in the order
  volume → shard → stripe: a volume-level readers-writer lock (shared
  by foreground I/O *and* restripe ticks, exclusive only for
  shutdown/metadata swaps), per-extent locks from a
  :class:`~repro.service.StripeLockManager` keyed by extent index, and
  per-shard stripe locks wrapped around every shard I/O so two volume
  requests landing on one shard stripe through different extents can
  never race its parity read-modify-write.

Shards keep their own write-back caches, planners, and counters; the
volume aggregates per-shard :class:`~repro.store.IoCounters` with
:meth:`IoCounters.merged`. Closing the volume flushes every shard's
cache exactly once and audits the shared journal for orphaned records
— a non-empty journal after an orderly close means some write path
skipped its commit, which is a bug worth crashing loudly over.
"""

from __future__ import annotations

import json
import logging
import os
import shutil
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.codes import make_code
from repro.raid.mapping import ArrayMapping
from repro.service.locks import ArrayRWLock, StripeLockManager
from repro.store import ArrayStore, IntentJournal, IoCounters
from repro.volume.mapping import VolumeMapping, VolumeRun

__all__ = ["ShardSpec", "VolumeManager", "VolumeStatus"]

logger = logging.getLogger(__name__)

_META_NAME = "volume.json"
_JOURNAL_NAME = "intent.journal"
_META_VERSION = 1


@dataclass(frozen=True)
class ShardSpec:
    """Geometry of one shard: an array code plus a store shape."""

    family: str
    n: int
    stripes: int
    chunk_bytes: int = 4096
    cache_stripes: int = 0

    def capacity_bytes(self) -> int:
        """Logical bytes this shard can hold (pure arithmetic)."""
        code = make_code(self.family, self.n)
        return ArrayMapping(code, self.chunk_bytes).capacity_bytes(
            self.stripes
        )

    def to_meta(self) -> dict:
        """Serialize the spec for ``volume.json``."""
        return {
            "family": self.family,
            "n": self.n,
            "stripes": self.stripes,
            "chunk_bytes": self.chunk_bytes,
            "cache_stripes": self.cache_stripes,
        }

    @classmethod
    def from_meta(cls, meta: dict) -> "ShardSpec":
        """Rebuild a spec from its ``volume.json`` entry."""
        return cls(
            family=meta["family"],
            n=meta["n"],
            stripes=meta["stripes"],
            chunk_bytes=meta["chunk_bytes"],
            cache_stripes=meta.get("cache_stripes", 0),
        )


@dataclass
class VolumeStatus:
    """A point-in-time snapshot of a volume's shape and health."""

    directory: str
    volume_bytes: int
    extent_bytes: int
    total_extents: int
    shards: list[dict]
    restripe_active: bool
    restripe_cursor: int
    restripe_target: list[dict] = field(default_factory=list)
    io: IoCounters = field(default_factory=IoCounters)
    failed_disks: dict[int, list[int]] = field(default_factory=dict)


class _Shard:
    """One mounted shard: its store, uid, and stripe-lock table."""

    __slots__ = ("uid", "spec", "store", "stripe_locks", "directory")

    def __init__(
        self, uid: int, spec: ShardSpec, store: ArrayStore, directory: Path
    ) -> None:
        self.uid = uid
        self.spec = spec
        self.store = store
        self.directory = directory
        self.stripe_locks = StripeLockManager()


class VolumeManager:
    """N erasure-coded shards behind one crash-consistent byte space.

    Construct with :meth:`create` (a fresh volume) or :meth:`open` (an
    existing directory — uncommitted journal records are rolled forward
    and an interrupted migration's routing state is restored before the
    constructor returns). The instance is thread-safe; many callers may
    read/write concurrently while a :class:`~repro.volume.Restriper`
    migrates extents in the background.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        _meta: dict,
        _journal: IntentJournal,
    ) -> None:
        self.directory = Path(directory)
        self.journal = _journal
        self._meta = _meta
        self.extent_bytes: int = _meta["extent_bytes"]
        self.volume_bytes: int = _meta["volume_bytes"]
        self._rwlock = ArrayRWLock()
        self._extent_locks = StripeLockManager()
        self._state_lock = threading.Lock()
        self._closed = False
        self._shards: list[_Shard] = [
            self._mount(entry) for entry in _meta["shards"]
        ]
        self.mapping = VolumeMapping(
            [shard.store.capacity_bytes for shard in self._shards],
            self.extent_bytes,
        )
        if self.mapping.volume_bytes < self.volume_bytes:
            raise ValueError(
                f"shard set holds {self.mapping.volume_bytes} bytes, "
                f"less than the volume's {self.volume_bytes}"
            )
        # Migration state (None / empty while no restripe is in flight).
        self._new_shards: list[_Shard] = []
        self._new_mapping: VolumeMapping | None = None
        self._cursor = 0
        restripe = _meta.get("restripe")
        if restripe:
            self._new_shards = [
                self._mount(entry) for entry in restripe["target"]
            ]
            self._new_mapping = VolumeMapping(
                [shard.store.capacity_bytes for shard in self._new_shards],
                self.extent_bytes,
            )
            self._cursor = restripe["cursor"]
            logger.info(
                "volume %s: resuming restripe at extent %d/%d",
                self.directory, self._cursor, self.total_extents,
            )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | Path,
        shards: Sequence[ShardSpec],
        extent_bytes: int = 1 << 16,
        group_commit: int = 8,
    ) -> "VolumeManager":
        """Create a fresh volume striped over ``shards``."""
        directory = Path(directory)
        if (directory / _META_NAME).exists():
            raise ValueError(
                f"{directory} already holds a volume; use open()"
            )
        if not shards:
            raise ValueError("a volume needs at least one shard")
        directory.mkdir(parents=True, exist_ok=True)
        mapping = VolumeMapping(
            [spec.capacity_bytes() for spec in shards], extent_bytes
        )
        meta = {
            "version": _META_VERSION,
            "extent_bytes": extent_bytes,
            "volume_bytes": mapping.volume_bytes,
            "next_uid": len(shards),
            "shards": [
                {
                    "uid": uid,
                    "dir": f"shard{uid:03d}",
                    **spec.to_meta(),
                }
                for uid, spec in enumerate(shards)
            ],
            "restripe": None,
        }
        _write_meta(directory, meta)
        journal = IntentJournal(
            directory / _JOURNAL_NAME, group_commit=group_commit
        )
        return cls(directory, _meta=meta, _journal=journal)

    @classmethod
    def open(
        cls, directory: str | Path, group_commit: int = 8
    ) -> "VolumeManager":
        """Open an existing volume, recovering journal and migration
        state left by a crash."""
        directory = Path(directory)
        meta_path = directory / _META_NAME
        if not meta_path.exists():
            raise ValueError(f"{directory} holds no volume metadata")
        meta = json.loads(meta_path.read_text())
        if meta.get("version") != _META_VERSION:
            raise ValueError(
                f"unsupported volume metadata version {meta.get('version')}"
            )
        journal = IntentJournal(
            directory / _JOURNAL_NAME, group_commit=group_commit
        )
        return cls(directory, _meta=meta, _journal=journal)

    def _mount(self, entry: dict) -> _Shard:
        spec = ShardSpec.from_meta(entry)
        store = ArrayStore(
            make_code(spec.family, spec.n),
            self.directory / entry["dir"],
            stripes=spec.stripes,
            chunk_bytes=spec.chunk_bytes,
            cache_stripes=spec.cache_stripes,
            journal=self.journal,
            shard_id=entry["uid"],
        )
        return _Shard(entry["uid"], spec, store, self.directory / entry["dir"])

    # ------------------------------------------------------------------
    # shape
    # ------------------------------------------------------------------
    @property
    def capacity_bytes(self) -> int:
        """Addressable bytes (constant across migrations)."""
        return self.volume_bytes

    @property
    def total_extents(self) -> int:
        """Extents the volume's byte space comprises."""
        return self.volume_bytes // self.extent_bytes

    @property
    def shards(self) -> list[ArrayStore]:
        """The current (source) shard stores, in mapping order."""
        return [shard.store for shard in self._shards]

    @property
    def restriping(self) -> bool:
        """True while a migration is in flight."""
        return self._new_mapping is not None

    @property
    def restripe_cursor(self) -> int:
        """Extents already living in the new layout."""
        with self._state_lock:
            return self._cursor

    @property
    def io(self) -> IoCounters:
        """Aggregate chunk I/O over every mounted shard (old and new)."""
        return IoCounters.merged(
            shard.store.io for shard in self._all_shards()
        )

    def _all_shards(self) -> Iterator[_Shard]:
        yield from self._shards
        yield from self._new_shards

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _route(self, run: VolumeRun) -> tuple[_Shard, int]:
        """Resolve one extent run to its shard by the cursor rule.

        Must be called with ``run.extent``'s lock held: the restriper
        advances the cursor only while holding the extents it copied,
        so under the extent lock the answer cannot change mid-I/O.
        """
        if self._new_mapping is not None and run.extent < self._cursor:
            shard_index, base = self._new_mapping.locate(run.extent)
            within = run.volume_offset - run.extent * self.extent_bytes
            return self._new_shards[shard_index], base + within
        return self._shards[run.shard], run.shard_offset

    def _shard_write(
        self, shard: _Shard, offset: int, payload: np.ndarray
    ) -> None:
        stripes = [
            r.stripe
            for r in shard.store.planner.mapping.byte_runs(
                offset, payload.size
            )
        ]
        with shard.stripe_locks.locked(stripes):
            shard.store.write_bytes(offset, payload)

    def _shard_read(
        self, shard: _Shard, offset: int, length: int
    ) -> np.ndarray:
        stripes = [
            r.stripe
            for r in shard.store.planner.mapping.byte_runs(offset, length)
        ]
        with shard.stripe_locks.locked(stripes):
            return shard.store.read_bytes(offset, length)

    # ------------------------------------------------------------------
    # public byte I/O
    # ------------------------------------------------------------------
    def write_bytes(self, offset: int, data: bytes | np.ndarray) -> None:
        """Write ``data`` at volume byte ``offset`` (any alignment)."""
        buf = (
            np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
            if isinstance(data, np.ndarray)
            else np.frombuffer(bytes(data), dtype=np.uint8)
        )
        if buf.size == 0:
            raise ValueError("cannot write zero bytes")
        self._check_range(offset, buf.size)
        with self._rwlock.shared():
            # Resolve runs under the volume lock: finish_restripe swaps
            # the mapping and shard list under the exclusive lock, so a
            # plan computed outside would route into retired shards.
            runs = self.mapping.byte_runs(offset, buf.size)
            with self._extent_locks.locked(run.extent for run in runs):
                cursor = 0
                for run in runs:
                    shard, shard_offset = self._route(run)
                    self._shard_write(
                        shard,
                        shard_offset,
                        buf[cursor : cursor + run.nbytes],
                    )
                    cursor += run.nbytes

    def read_bytes(self, offset: int, length: int) -> np.ndarray:
        """Read ``length`` bytes at volume byte ``offset``."""
        self._check_range(offset, length)
        out = np.empty(length, dtype=np.uint8)
        with self._rwlock.shared():
            # Same ordering rule as write_bytes: the mapping may only
            # be consulted under the volume lock.
            runs = self.mapping.byte_runs(offset, length)
            with self._extent_locks.locked(run.extent for run in runs):
                cursor = 0
                for run in runs:
                    shard, shard_offset = self._route(run)
                    out[cursor : cursor + run.nbytes] = self._shard_read(
                        shard, shard_offset, run.nbytes
                    )
                    cursor += run.nbytes
        return out

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if length <= 0:
            raise ValueError(f"non-positive length {length}")
        if offset + length > self.volume_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) exceeds volume "
                f"capacity {self.volume_bytes}"
            )

    # ------------------------------------------------------------------
    # migration plumbing (driven by repro.volume.Restriper)
    # ------------------------------------------------------------------
    def begin_restripe(self, target: Sequence[ShardSpec]) -> None:
        """Mount the target shard set and persist the migration intent.

        The cursor starts at 0: every extent still routes to the old
        layout. Idempotent resume is :meth:`open`'s job — calling this
        while a migration is already in flight is an error.
        """
        if self.restriping:
            raise RuntimeError("a restripe is already in flight")
        if not target:
            raise ValueError("target shard set is empty")
        target_mapping = VolumeMapping(
            [spec.capacity_bytes() for spec in target], self.extent_bytes
        )
        if target_mapping.volume_bytes < self.volume_bytes:
            raise ValueError(
                f"target holds {target_mapping.volume_bytes} bytes, "
                f"less than the volume's {self.volume_bytes}"
            )
        with self._rwlock.exclusive():
            next_uid = self._meta["next_uid"]
            entries = []
            for spec in target:
                entries.append(
                    {
                        "uid": next_uid,
                        "dir": f"shard{next_uid:03d}",
                        **spec.to_meta(),
                    }
                )
                next_uid += 1
            self._meta["next_uid"] = next_uid
            self._meta["restripe"] = {"target": entries, "cursor": 0}
            _write_meta(self.directory, self._meta)
            self._new_shards = [self._mount(entry) for entry in entries]
            self._new_mapping = VolumeMapping(
                [s.store.capacity_bytes for s in self._new_shards],
                self.extent_bytes,
            )
            with self._state_lock:
                self._cursor = 0
        logger.info(
            "volume %s: restripe started to %d target shard(s)",
            self.directory, len(target),
        )

    def copy_extents(self, start: int, count: int) -> int:
        """Copy extents ``[start, start + count)`` old → new layout and
        durably advance the cursor; returns extents copied.

        The restriper's inner loop. Runs under the volume lock *shared*
        — foreground traffic keeps flowing — holding only the copied
        extents' locks. The routing flip is ordered for crash safety:

        1. every extent of the batch is copied (reads route old, the
           writes go straight to the new layout's shards, journaled by
           their stores like any write);
        2. the cursor is persisted (atomic metadata replace + fsync);
        3. only then does the in-memory cursor move, flipping routing.

        A crash before (3) re-copies the batch on resume — idempotent,
        and no foreground write can have landed in the new layout's
        copy of those extents because routing never flipped.
        """
        if not self.restriping:
            raise RuntimeError("no restripe in flight")
        end = min(start + count, self.total_extents)
        if start >= end:
            return 0
        assert self._new_mapping is not None
        with self._rwlock.shared(), self._extent_locks.locked(
            range(start, end)
        ):
            for extent in range(start, end):
                old_shard = self._shards[self.mapping.locate(extent)[0]]
                old_base = self.mapping.locate(extent)[1]
                data = self._shard_read(
                    old_shard, old_base, self.extent_bytes
                )
                new_index, new_base = self._new_mapping.locate(extent)
                self._shard_write(
                    self._new_shards[new_index], new_base, data
                )
            with self._state_lock:
                self._meta["restripe"]["cursor"] = end
                _write_meta(self.directory, self._meta)
                self._cursor = end
        return end - start

    def finish_restripe(self) -> None:
        """Swap the target layout in and retire the old shards.

        Requires every extent to have been copied. The swap is one
        atomic metadata replace; the old shards' directories are
        removed afterwards (a crash in between leaves only orphaned
        directories, never a misrouted extent).
        """
        if not self.restriping:
            raise RuntimeError("no restripe in flight")
        if self.restripe_cursor < self.total_extents:
            raise RuntimeError(
                f"restripe incomplete: cursor "
                f"{self.restripe_cursor}/{self.total_extents}"
            )
        with self._rwlock.exclusive():
            for shard in self._new_shards:
                shard.store.flush()
            retired = self._shards
            self._meta["shards"] = self._meta["restripe"]["target"]
            self._meta["restripe"] = None
            _write_meta(self.directory, self._meta)
            self._shards = self._new_shards
            self.mapping = self._new_mapping  # type: ignore[assignment]
            self._new_shards = []
            self._new_mapping = None
            with self._state_lock:
                self._cursor = 0
            for shard in retired:
                shard.store.close()
                shutil.rmtree(shard.directory, ignore_errors=True)
            self.journal.checkpoint()
        logger.info(
            "volume %s: restripe complete, %d shard(s) retired",
            self.directory, len(retired),
        )

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Flush every shard's write-back cache; returns stripes flushed."""
        with self._rwlock.shared():
            return sum(
                shard.store.flush() for shard in self._all_shards()
            )

    def scrub(self) -> dict[int, list[int]]:
        """Scrub every shard; returns ``{shard_uid: corrupt_stripes}``
        for shards that found any."""
        findings: dict[int, list[int]] = {}
        with self._rwlock.exclusive():
            for shard in self._all_shards():
                corrupt = shard.store.scrub()
                if corrupt:
                    findings[shard.uid] = corrupt
        return findings

    def status(self) -> VolumeStatus:
        """A consistent snapshot of shape, migration, and counters."""
        with self._rwlock.shared():
            restripe = self._meta.get("restripe")
            return VolumeStatus(
                directory=str(self.directory),
                volume_bytes=self.volume_bytes,
                extent_bytes=self.extent_bytes,
                total_extents=self.total_extents,
                shards=[dict(entry) for entry in self._meta["shards"]],
                restripe_active=self.restriping,
                restripe_cursor=self.restripe_cursor,
                restripe_target=(
                    [dict(e) for e in restripe["target"]] if restripe else []
                ),
                io=self.io,
                failed_disks={
                    shard.uid: sorted(shard.store.failed)
                    for shard in self._all_shards()
                    if shard.store.failed
                },
            )

    # ------------------------------------------------------------------
    # lifecycle (the close-flush audit)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close every shard (flushing each write-back cache exactly
        once), then audit and close the shared journal.

        Every shard is closed even when an earlier one raises (the
        first error still propagates). After all shards closed, any
        record left in the journal is *orphaned* — some write path
        sealed an intent and never committed nor crashed — and raises
        ``RuntimeError``: silently checkpointing it away would destroy
        the only evidence of a write-path bug.
        """
        if self._closed:
            return
        self._closed = True
        first_error: BaseException | None = None
        with self._rwlock.exclusive():
            for shard in self._all_shards():
                try:
                    shard.store.close()
                except BaseException as exc:  # noqa: BLE001 - reraise below
                    if first_error is None:
                        first_error = exc
            orphans = self.journal.pending_records()
            self.journal.close()
        if first_error is not None:
            raise first_error
        if orphans:
            raise RuntimeError(
                f"volume close audit: {len(orphans)} orphaned journal "
                f"record(s) remain (shards "
                f"{sorted({r.shard for r in orphans})}) — a write path "
                f"sealed intents it never committed"
            )

    def __enter__(self) -> "VolumeManager":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _write_meta(directory: Path, meta: dict) -> None:
    """Atomically replace ``volume.json`` (write-temp, fsync, rename)."""
    path = directory / _META_NAME
    tmp = directory / (_META_NAME + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(meta, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    # Make the rename itself durable: fsync the containing directory.
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
