"""The elastic volume layer: many arrays behind one byte address space.

Stripes a byte space over N erasure-coded shards (each a full
:class:`~repro.store.ArrayStore`, possibly of different code families),
journals every write intent in one shared on-disk
:class:`~repro.store.IntentJournal` for crash consistency across the
whole shard set, and migrates live volumes between shard sets / code
families with :class:`Restriper` — reads and writes keep flowing while
extents move, routed old-or-new by a durable cursor.
"""

from repro.volume.manager import ShardSpec, VolumeManager, VolumeStatus
from repro.volume.mapping import VolumeMapping, VolumeRun
from repro.volume.restripe import Restriper, RestripeStats

__all__ = [
    "Restriper",
    "RestripeStats",
    "ShardSpec",
    "VolumeManager",
    "VolumeMapping",
    "VolumeRun",
    "VolumeStatus",
]
