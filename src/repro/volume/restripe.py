"""Online code migration: restripe a live volume onto a new shard set.

The migration problem is the volume-level twin of degraded rebuild: a
background walker must touch every extent exactly once while foreground
traffic keeps flowing, so the :class:`Restriper` borrows
:class:`~repro.faults.repair.RepairController`'s shape — a throttled
``tick()`` that advances a resumable cursor, with ``run()``/``drain()``
driving ticks to completion. What it adds is the *routing* half:

* extents below the cursor live in the new layout, extents at or above
  it in the old one (the cursor routing rule — see
  :mod:`repro.volume.mapping` for why extent identity is layout-free);
* each tick copies a batch of extents under only those extents' locks
  — foreground requests to *other* extents never wait, and requests to
  the copied extents block for one batch, not one migration;
* the cursor is made durable (metadata fsync) strictly *before*
  routing flips, so a crash mid-batch re-copies the batch into shards
  no foreground write has touched — idempotent by construction, with
  each copy-write journaled by the receiving shard like any write.

Because both the shard set and each shard's code family are free to
change, a restripe is also the code-migration path: TIP(p) → TIP(p')
regrows geometry, TIP → STAR/RS re-encodes every byte under the new
family's parity discipline, all without unmounting the volume.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.store import IoCounters
from repro.volume.manager import ShardSpec, VolumeManager

__all__ = ["Restriper", "RestripeStats"]

logger = logging.getLogger(__name__)


@dataclass
class RestripeStats:
    """Progress accounting for one migration."""

    total_extents: int = 0
    extents_copied: int = 0
    bytes_copied: int = 0
    ticks: int = 0
    #: Chunk I/O attributable to migration copies (volume-wide delta
    #: measured across each tick, so it includes the parity writes the
    #: new shards perform on behalf of the copies).
    io: IoCounters = field(default_factory=IoCounters)

    @property
    def done(self) -> bool:
        """True once every extent has been copied to the new layout."""
        return self.extents_copied >= self.total_extents


class Restriper:
    """Drives one volume migration in throttled, crash-resumable ticks.

    Args:
        volume: the live volume to migrate.
        target: the new shard set; must hold at least ``volume_bytes``
            at the volume's extent size. ``None`` resumes a migration
            already recorded in the volume's metadata (after a crash or
            a handoff between processes).
        extents_per_tick: copy batch size — the throttle. Small batches
            minimize foreground stall per tick (only the batch's extent
            locks are held); large batches finish sooner.
        tick_delay: seconds to sleep between ticks in :meth:`run`,
            yielding the lock manager to foreground threads.
    """

    def __init__(
        self,
        volume: VolumeManager,
        target: Sequence[ShardSpec] | None = None,
        extents_per_tick: int = 4,
        tick_delay: float = 0.0,
    ) -> None:
        if extents_per_tick < 1:
            raise ValueError("extents_per_tick must be >= 1")
        if tick_delay < 0:
            raise ValueError("tick_delay must be >= 0")
        self.volume = volume
        self.extents_per_tick = extents_per_tick
        self.tick_delay = tick_delay
        if target is not None:
            volume.begin_restripe(target)
        elif not volume.restriping:
            raise ValueError(
                "no target given and the volume has no restripe in flight"
            )
        self.stats = RestripeStats(
            total_extents=volume.total_extents,
            extents_copied=volume.restripe_cursor,
        )

    @property
    def done(self) -> bool:
        """True once every extent routes to the new layout."""
        return self.stats.done

    def tick(self) -> int:
        """Copy the next batch of extents; returns extents copied.

        Safe to interleave with foreground I/O from any thread. A
        return of 0 means the cursor already reached the end (call
        :meth:`finish` to swap layouts).
        """
        if self.done:
            return 0
        before = self.volume.io
        copied = self.volume.copy_extents(
            self.volume.restripe_cursor, self.extents_per_tick
        )
        self.stats.extents_copied += copied
        self.stats.bytes_copied += copied * self.volume.extent_bytes
        self.stats.ticks += 1
        self.stats.io = self.stats.io + (self.volume.io - before)
        return copied

    def finish(self) -> RestripeStats:
        """Swap the new layout in and retire the old shards."""
        self.volume.finish_restripe()
        logger.info(
            "restripe finished: %d extents (%d bytes) in %d tick(s)",
            self.stats.extents_copied, self.stats.bytes_copied,
            self.stats.ticks,
        )
        return self.stats

    def run(self) -> RestripeStats:
        """Tick to completion (sleeping ``tick_delay`` between ticks),
        then swap layouts. The foreground-friendly entry point: call
        from a background thread while other threads keep reading and
        writing the volume."""
        while not self.done:
            self.tick()
            if self.tick_delay and not self.done:
                time.sleep(self.tick_delay)
        return self.finish()

    # RepairController parity: drain is run without the politeness delay.
    def drain(self) -> RestripeStats:
        """Tick to completion with no inter-tick delay and swap layouts."""
        delay, self.tick_delay = self.tick_delay, 0.0
        try:
            return self.run()
        finally:
            self.tick_delay = delay
