"""Two-level address math: volume byte → extent → shard → shard byte.

The per-array :class:`~repro.raid.mapping.ArrayMapping` answers "which
disk LBA holds this chunk of *one* array". A volume is many arrays
(shards), possibly of different code families and geometries, presenting
one byte address space; :class:`VolumeMapping` owns the upper level of
that translation and nothing else — it never touches a store, so the
planner can price a volume request shard by shard with pure arithmetic,
exactly as :class:`~repro.raid.planner.RequestPlanner` prices per-array
requests.

The unit of distribution is the **extent**: a fixed ``extent_bytes``
slice of the volume's byte space. Extents are dealt round-robin across
the shards (shards with more capacity simply keep receiving extents
after smaller shards are full), so sequential volume traffic fans out
over all shards while each extent stays contiguous inside its shard —
the property that makes the online restriper's cursor routing rule
("extent < cursor lives in the new layout") well-defined: extent
indices depend only on ``extent_bytes``, never on the shard set, so the
old and new layouts of a migration agree on what extent ``e`` *is* and
disagree only on where it lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["VolumeMapping", "VolumeRun"]


@dataclass(frozen=True)
class VolumeRun:
    """One request's intersection with a single extent.

    ``shard_offset`` is the byte offset inside the owning shard's
    logical space — what the shard's own ``read_bytes``/``write_bytes``
    (and its planner) consume directly.
    """

    extent: int
    shard: int
    shard_offset: int
    volume_offset: int
    nbytes: int


class VolumeMapping:
    """Round-robin extent striping over heterogeneous shard capacities.

    Args:
        shard_capacities: logical capacity in bytes of each shard.
        extent_bytes: distribution unit; every shard must hold at least
            one whole extent (capacity below one extent is a
            configuration error, capacity beyond the last whole extent
            is unused).
    """

    def __init__(
        self, shard_capacities: Sequence[int], extent_bytes: int
    ) -> None:
        if extent_bytes <= 0:
            raise ValueError("extent_bytes must be positive")
        if not shard_capacities:
            raise ValueError("a volume needs at least one shard")
        counts = [capacity // extent_bytes for capacity in shard_capacities]
        for shard, count in enumerate(counts):
            if count < 1:
                raise ValueError(
                    f"shard {shard} holds {shard_capacities[shard]} bytes, "
                    f"less than one {extent_bytes}-byte extent"
                )
        self.extent_bytes = extent_bytes
        self.shard_extents = tuple(counts)
        self.total_extents = sum(counts)
        #: extent → owning shard / extent index within that shard.
        shard_of: list[int] = []
        index_of: list[int] = []
        cursor = [0] * len(counts)
        while len(shard_of) < self.total_extents:
            for shard, count in enumerate(counts):
                if cursor[shard] < count:
                    shard_of.append(shard)
                    index_of.append(cursor[shard])
                    cursor[shard] += 1
        self._shard_of = tuple(shard_of)
        self._index_of = tuple(index_of)

    # ------------------------------------------------------------------
    @property
    def volume_bytes(self) -> int:
        """Addressable bytes of the volume (whole extents only)."""
        return self.total_extents * self.extent_bytes

    @property
    def shards(self) -> int:
        """Number of shards the mapping stripes over."""
        return len(self.shard_extents)

    def locate(self, extent: int) -> tuple[int, int]:
        """Map a volume extent to ``(shard, shard_byte_offset)``."""
        if not 0 <= extent < self.total_extents:
            raise ValueError(
                f"extent {extent} out of range [0, {self.total_extents})"
            )
        shard = self._shard_of[extent]
        return shard, self._index_of[extent] * self.extent_bytes

    def extent_range(self, offset: int, length: int) -> range:
        """The extent indices a byte range touches (validated)."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if length <= 0:
            raise ValueError(f"non-positive length {length}")
        if offset + length > self.volume_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) exceeds volume "
                f"capacity {self.volume_bytes}"
            )
        return range(
            offset // self.extent_bytes,
            (offset + length - 1) // self.extent_bytes + 1,
        )

    def byte_runs(self, offset: int, length: int) -> list[VolumeRun]:
        """Split a volume byte range into per-extent shard runs.

        Runs never merge across extents even when two consecutive
        extents land adjacently on one shard: the restriper routes (and
        locks) extent by extent, so the extent is the atom of the
        volume layer the same way the stripe is the array's.
        """
        runs: list[VolumeRun] = []
        for extent in self.extent_range(offset, length):
            begin = max(offset, extent * self.extent_bytes)
            end = min(offset + length, (extent + 1) * self.extent_bytes)
            shard, base = self.locate(extent)
            runs.append(
                VolumeRun(
                    extent=extent,
                    shard=shard,
                    shard_offset=base + (begin - extent * self.extent_bytes),
                    volume_offset=begin,
                    nbytes=end - begin,
                )
            )
        return runs
