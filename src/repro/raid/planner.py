"""Request planning: one write-path model for simulator and store.

A plan is an explicit, two-phase list of chunk-sized element I/Os
(pre-reads, then dependent writes). The same planner serves two very
different consumers:

* the DiskSim controller *prices* plans — each :class:`ElementIO` queues
  at a simulated disk (Fig. 13);
* :class:`repro.store.ArrayStore` *executes* plans — each element I/O
  becomes a real read/write against a backing file, metered by the
  store's :class:`~repro.store.IoCounters`.

Because both consume identical plans, the controller's planned element
I/O counts and the store's measured chunk I/Os must agree exactly —
the cross-validation ``tests/test_raid_plan_vs_store.py`` enforces.

Write strategies
----------------

``rmw`` / ``rcw`` / ``auto`` are the *analytic* models of
:mod:`repro.analysis.write_path` (the paper's Sec. VI-B accounting):
pre-read/write sets derived from the update-penalty closure, and
full-stripe runs written with no pre-reads. ``delta`` / ``delta-always``
/ ``stripe`` are the *executable* models — exactly what the store does:

* **delta** — per run, take the delta read-modify-write fast path (read
  the old data chunks and the generator-derived dependent parities, XOR
  the delta through, write back) when it costs fewer chunk I/Os than the
  full-stripe path, else load/re-encode/store. Degraded runs always
  reconstruct. This is the store's ``write_mode="auto"``.
* **delta-always** / **stripe** — force one path (delta still falls
  back to the stripe path while degraded).

The delta parity set comes from :attr:`ArrayCode.parity_dependents`
(generator matrix), not the update-penalty closure: for chained codes a
data element can reach a parity an even number of times and cancel out,
in which case the parity's *value* does not change and no real I/O
happens. The analytic strategies keep the closure — that is the paper's
metric — which is precisely why plan-vs-measured validation needs the
executable strategies.

``cached`` is the *stateful* model of a write-back stripe cache
(:mod:`repro.raid.cache`): each :meth:`RequestPlanner.plan` call drives
a shadow copy of the real cache over a recording backend, so the planned
I/Os for a request *sequence* — including flush-on-eviction traffic and
:meth:`RequestPlanner.plan_flush` — mirror a cached store's measured
chunk I/Os one-for-one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analysis.write_path import choose_strategy, rcw_cost, rmw_cost
from repro.codes.base import ArrayCode, Cell, Position
from repro.raid.mapping import ArrayMapping, ChunkRun
from repro.traces.model import TraceRequest

__all__ = [
    "WRITE_STRATEGIES",
    "BatchGroup",
    "BatchItem",
    "BatchPlan",
    "DiskSpan",
    "ElementIO",
    "PlanCounts",
    "RequestPlan",
    "RequestPlanner",
    "RunPlan",
    "coalesce_chunks",
    "plan_io_counters",
]

#: Analytic strategies (paper accounting) + executable strategies
#: (what the store really does) + the stateful ``cached`` model of a
#: write-back stripe cache. See the module docstring.
WRITE_STRATEGIES = (
    "rmw", "rcw", "auto", "delta", "delta-always", "stripe", "cached",
)

_EXECUTABLE = ("delta", "delta-always", "stripe")


@dataclass(frozen=True)
class ElementIO:
    """One chunk-sized disk I/O derived from a logical request."""

    disk: int
    lba_chunk: int
    is_write: bool


@dataclass
class RequestPlan:
    """Two-phase I/O plan for one request: reads, then dependent writes."""

    reads: list[ElementIO]
    writes: list[ElementIO]

    @property
    def total_ios(self) -> int:
        """Element I/Os the plan issues."""
        return len(self.reads) + len(self.writes)


@dataclass(frozen=True)
class RunPlan:
    """Executable plan for one per-stripe run (positions, not LBAs).

    ``path`` is ``"delta"`` (read-modify-write on exactly the listed
    cells) or ``"stripe"`` (load the listed ``reads``, reconstruct if
    ``decode``, re-encode, store the listed ``writes``). Positions are
    stripe-relative grid cells; the caller maps them to disks/LBAs.
    """

    path: str
    reads: tuple[Position, ...]
    writes: tuple[Position, ...]
    decode: bool = False

    @property
    def total_ios(self) -> int:
        """Chunk I/Os this run plan performs."""
        return len(self.reads) + len(self.writes)


@dataclass(frozen=True)
class PlanCounts:
    """Planned chunk I/Os split by element role (mirrors ``IoCounters``)."""

    data_chunks_read: int = 0
    parity_chunks_read: int = 0
    data_chunks_written: int = 0
    parity_chunks_written: int = 0

    @property
    def chunks_read(self) -> int:
        """Total planned chunk reads."""
        return self.data_chunks_read + self.parity_chunks_read

    @property
    def chunks_written(self) -> int:
        """Total planned chunk writes."""
        return self.data_chunks_written + self.parity_chunks_written

    @property
    def total_chunks(self) -> int:
        """Total planned chunk transfers."""
        return self.chunks_read + self.chunks_written


def plan_io_counters(code: ArrayCode, plan: RequestPlan) -> PlanCounts:
    """Split a plan's element I/Os into data/parity read/write counts.

    The element role is recovered from the address math (LBA → grid row),
    so the result is comparable field-by-field with the store's measured
    :class:`~repro.store.IoCounters`.
    """
    counts = [0, 0, 0, 0]  # data reads, parity reads, data writes, parity writes
    for io in plan.reads + plan.writes:
        kind = code.kind(io.lba_chunk % code.rows, io.disk)
        index = (2 if io.is_write else 0) + (1 if kind == Cell.PARITY else 0)
        counts[index] += 1
    return PlanCounts(*counts)


@dataclass(frozen=True)
class DiskSpan:
    """A contiguous chunk range on one disk (the scatter-gather unit).

    One span becomes one ``preadv``/``pwritev`` against the disk's
    backing file; ``chunks`` counts stripe units, so byte geometry is
    ``offset = lba_chunk * chunk_bytes`` / ``length = chunks *
    chunk_bytes``.
    """

    disk: int
    lba_chunk: int
    chunks: int

    @property
    def stop(self) -> int:
        """One past the last covered LBA chunk."""
        return self.lba_chunk + self.chunks

    def lbas(self) -> range:
        """The covered LBA chunks, ascending."""
        return range(self.lba_chunk, self.stop)


@dataclass(frozen=True)
class BatchItem:
    """One per-stripe run of one batched request, with its run plan.

    ``cursor`` is the byte offset into the request payload where this
    run's bytes begin — batch execution splices runs exactly where the
    serial path would.
    """

    op_index: int
    run: ChunkRun
    plan: RunPlan
    cursor: int
    is_write: bool


@dataclass
class BatchGroup:
    """All runs of a batch that land on one stripe, in arrival order.

    ``batchable`` marks groups whose every run takes the delta fast
    path; a group holding any stripe-path or decoding run is executed
    by the serial per-run machinery instead (it meters itself and is
    excluded from the batch spans and ``BatchPlan.counts``).
    """

    stripe: int
    items: list[BatchItem]
    batchable: bool = True


@dataclass
class BatchPlan:
    """Merged execution plan for a batch of byte-addressed requests.

    ``read_spans``/``write_spans`` are the deduplicated, gap-bridged
    per-disk span lists covering every *batchable* group; ``counts`` is
    the logical chunk accounting those groups must meter — the per-item
    sum of their run plans, NOT the span footprint, so ``IoCounters``
    stay byte-for-byte identical to replaying the requests serially
    (the paper's 1+3 accounting contract). Fallback groups are left out
    of both: the serial machinery that executes them meters them.
    """

    groups: list[BatchGroup]
    read_spans: list[DiskSpan]
    write_spans: list[DiskSpan]
    counts: PlanCounts

    @property
    def batchable_groups(self) -> list[BatchGroup]:
        """Groups the span path executes."""
        return [group for group in self.groups if group.batchable]

    @property
    def fallback_groups(self) -> list[BatchGroup]:
        """Groups deferred to the serial per-run machinery."""
        return [group for group in self.groups if not group.batchable]


def coalesce_chunks(
    chunks: Iterable[tuple[int, int]], bridge: int = 0
) -> list[DiskSpan]:
    """Merge ``(disk, lba_chunk)`` addresses into per-disk spans.

    Adjacent chunks always merge; ``bridge`` additionally merges spans
    separated by at most that many *uncovered* chunks, trading extra
    bytes moved for fewer syscalls (a gap chunk costs a memory-speed
    copy, a separate span costs a syscall). Callers bridging **write**
    spans must read the bridged gaps in the same batch and write them
    back unchanged — see ``ArrayStore.execute_batch``.
    """
    if bridge < 0:
        raise ValueError("bridge must be >= 0")
    spans: list[DiskSpan] = []
    by_disk: dict[int, list[int]] = {}
    for disk, lba in set(chunks):
        by_disk.setdefault(disk, []).append(lba)
    for disk in sorted(by_disk):
        lbas = sorted(by_disk[disk])
        start = prev = lbas[0]
        for lba in lbas[1:]:
            if lba - prev - 1 <= bridge:
                prev = lba
                continue
            spans.append(DiskSpan(disk, start, prev - start + 1))
            start = prev = lba
        spans.append(DiskSpan(disk, start, prev - start + 1))
    return spans


class RequestPlanner:
    """Builds element I/O plans for byte requests against one array code.

    Args:
        code: the erasure code striping this array.
        chunk_bytes: stripe-unit size (8 KB in the paper's configuration).
        write_strategy: one of :data:`WRITE_STRATEGIES`; see the module
            docstring for the analytic/executable split.
        cache_stripes: capacity of the write-back cache the ``"cached"``
            strategy models (ignored by other strategies). The cached
            model is *stateful* — successive :meth:`plan` calls mutate
            its LRU/dirty state exactly as the real cache's would — so
            one planner instance must see the same request sequence, in
            order, as the cached store it predicts.
    """

    def __init__(
        self,
        code: ArrayCode,
        chunk_bytes: int = 8 * 1024,
        write_strategy: str = "rmw",
        cache_stripes: int = 8,
    ) -> None:
        if write_strategy not in WRITE_STRATEGIES:
            raise ValueError(
                f"write_strategy must be one of {WRITE_STRATEGIES}, "
                f"got {write_strategy!r}"
            )
        self.code = code
        self.mapping = ArrayMapping(code, chunk_bytes)
        self.chunk_bytes = chunk_bytes
        self.write_strategy = write_strategy
        self._run_plans: dict[tuple, RunPlan] = {}
        self._cell_cache: dict[int, tuple] = {}
        self.shadow_cache = None
        if write_strategy == "cached":
            # Deferred import: cache.py layers on this module.
            from repro.raid.cache import ShadowCache

            self.shadow_cache = ShadowCache(code, chunk_bytes, cache_stripes)

    # ------------------------------------------------------------------
    # run-level planning (executable semantics — what the store does)
    # ------------------------------------------------------------------
    def plan_write_run(
        self,
        start: int,
        length: int,
        failed: tuple[int, ...] = (),
        partial: bool = False,
    ) -> RunPlan:
        """Executable write plan for ``length`` data elements at ``start``.

        Args:
            start: first logical data index within the stripe.
            length: number of consecutive data elements covered.
            failed: currently failed disks (forces the stripe path;
                their I/Os are dropped, as in a real array).
            partial: True when the run's first or last chunk is covered
                only partly by the request (a byte-addressed front-end);
                a partial full-stripe run still needs the old contents.
        """
        failed_key = tuple(sorted(set(failed)))
        key = (start, length, failed_key, bool(partial))
        plan = self._run_plans.get(key)
        if plan is None:
            plan = self._build_write_run(start, length, failed_key, partial)
            self._run_plans[key] = plan
        return plan

    def _build_write_run(
        self,
        start: int,
        length: int,
        failed: tuple[int, ...],
        partial: bool,
    ) -> RunPlan:
        strategy = self.write_strategy
        if strategy not in _EXECUTABLE:
            raise ValueError(
                f"run plans are executable-only; strategy {strategy!r} "
                f"plans at request granularity (use plan() for pricing)"
            )
        code = self.code
        full_overwrite = length == code.num_data and not partial
        use_delta = False
        if not failed:
            if strategy == "delta-always":
                use_delta = True
            elif strategy == "delta":
                use_delta = (
                    self._delta_plan(start, length).total_ios
                    < self._stripe_cost(full_overwrite)
                )
        if use_delta:
            return self._delta_plan(start, length)
        survivors = tuple(
            pos for pos in code.nonempty_positions if pos[1] not in failed
        )
        if full_overwrite:
            return RunPlan("stripe", (), survivors, decode=False)
        return RunPlan(
            "stripe", survivors, survivors, decode=bool(failed)
        )

    def _delta_plan(self, start: int, length: int) -> RunPlan:
        key = ("delta", start, length)
        plan = self._run_plans.get(key)
        if plan is None:
            code = self.code
            data = tuple(code.data_positions[start + i] for i in range(length))
            parities: set[Position] = set()
            for pos in data:
                parities.update(code.parity_dependents[pos])
            cells = data + tuple(sorted(parities))
            plan = RunPlan("delta", cells, cells, decode=False)
            self._run_plans[key] = plan
        return plan

    def _stripe_cost(self, full_overwrite: bool) -> int:
        stored = len(self.code.nonempty_positions)
        return stored if full_overwrite else 2 * stored

    def plan_read_run(
        self,
        start: int,
        length: int,
        failed: tuple[int, ...] = (),
    ) -> RunPlan:
        """Read plan for ``length`` data elements at ``start``.

        Healthy runs (or degraded runs touching no failed column) read
        exactly the covered elements; a run touching a failed column
        expands to every surviving element of the stripe — the recovery
        schedule's known set — and flags ``decode``.
        """
        failed_key = tuple(sorted(set(failed)))
        key = ("read", start, length, failed_key)
        plan = self._run_plans.get(key)
        if plan is not None:
            return plan
        code = self.code
        covered = tuple(code.data_positions[start + i] for i in range(length))
        if failed_key and any(col in failed_key for _, col in covered):
            decoder = code.decoder_for(failed_key)
            plan = RunPlan(
                "stripe", tuple(decoder.plan.known_positions), (), decode=True
            )
        else:
            plan = RunPlan("delta", covered, (), decode=False)
        self._run_plans[key] = plan
        return plan

    # ------------------------------------------------------------------
    # batch planning (cross-request span merging)
    # ------------------------------------------------------------------
    def plan_batch(
        self,
        ops: Sequence[tuple[bool, int, int]],
        failed: tuple[int, ...] = (),
        bridge: int = 0,
    ) -> BatchPlan:
        """Merge a batch of ``(is_write, offset, length)`` requests.

        Each request is split into per-stripe runs and planned exactly
        as the serial path plans it (same cached :class:`RunPlan`
        objects), then the runs are grouped by stripe in arrival order.
        Groups where every run takes the delta fast path are *batchable*
        and contribute to the merged span lists:

        * **write spans** — the union of the groups' planned write
          positions, coalesced per disk with gap bridging ``bridge``;
        * **read spans** — the union of their planned pre-reads *plus
          every chunk a write span covers* (bridged write gaps must be
          in memory to be written back unchanged), coalesced the same
          way.

        Any group holding a stripe-path or decoding run — and every
        group when the array is degraded, since ``failed`` forces the
        stripe path — is flagged non-batchable for the caller's serial
        fallback.
        """
        failed_key = tuple(sorted(set(failed)))
        groups: dict[int, BatchGroup] = {}
        ordered: list[BatchGroup] = []
        for op_index, (is_write, offset, length) in enumerate(ops):
            cursor = 0
            for run in self.mapping.byte_runs(offset, length):
                if is_write:
                    plan = self.plan_write_run(
                        run.start,
                        run.length,
                        failed_key,
                        partial=run.is_partial(self.chunk_bytes),
                    )
                else:
                    plan = self.plan_read_run(
                        run.start, run.length, failed_key
                    )
                group = groups.get(run.stripe)
                if group is None:
                    group = groups[run.stripe] = BatchGroup(run.stripe, [])
                    ordered.append(group)
                group.items.append(
                    BatchItem(op_index, run, plan, cursor, is_write)
                )
                if plan.path != "delta" or plan.decode:
                    group.batchable = False
                cursor += run.nbytes
        counts = [0, 0, 0, 0]
        read_chunks: set[tuple[int, int]] = set()
        write_chunks: set[tuple[int, int]] = set()
        rows = self.code.rows
        for group in ordered:
            if not group.batchable:
                continue
            base = group.stripe * rows
            for item in group.items:
                _, reads_rel, writes_rel, plan_counts = self._plan_cells(
                    item.plan
                )
                for col, row in reads_rel:
                    read_chunks.add((col, base + row))
                for col, row in writes_rel:
                    write_chunks.add((col, base + row))
                counts[0] += plan_counts[0]
                counts[1] += plan_counts[1]
                counts[2] += plan_counts[2]
                counts[3] += plan_counts[3]
        write_spans = coalesce_chunks(write_chunks, bridge)
        for span in write_spans:
            for lba in span.lbas():
                read_chunks.add((span.disk, lba))
        return BatchPlan(
            groups=ordered,
            read_spans=coalesce_chunks(read_chunks, bridge),
            write_spans=write_spans,
            counts=PlanCounts(counts[0], counts[1], counts[2], counts[3]),
        )

    def _address(self, stripe: int, pos: Position) -> tuple[int, int]:
        address = self.mapping.element_address(stripe, pos)
        return (address.disk, address.lba_chunk)

    def _role(self, pos: Position) -> int:
        return 1 if self.code.kind(pos[0], pos[1]) == Cell.PARITY else 0

    def _plan_cells(self, plan: RunPlan) -> tuple:
        """Stripe-relative ``(disk, row)`` cells + role counts of a plan.

        ``plan_batch`` touches every element of every item; going through
        ``element_address``/``kind`` per element dominated batch planning
        (an Enum construction and a bounds check each). Run plans are
        interned in ``_run_plans`` for the planner's lifetime, so the
        flattened form is computed once per distinct plan. The cached
        tuple keeps the plan itself as its first field, which both pins
        the plan alive (making the ``id()`` key collision-free) and lets
        the lookup verify identity.
        """
        cached = self._cell_cache.get(id(plan))
        if cached is None or cached[0] is not plan:
            role = self._role
            counts = [0, 0, 0, 0]
            for pos in plan.reads:
                counts[role(pos)] += 1
            for pos in plan.writes:
                counts[2 + role(pos)] += 1
            cached = (
                plan,
                tuple((pos[1], pos[0]) for pos in plan.reads),
                tuple((pos[1], pos[0]) for pos in plan.writes),
                tuple(counts),
            )
            self._cell_cache[id(plan)] = cached
        return cached

    # ------------------------------------------------------------------
    # request-level planning (byte-addressed, for pricing/validation)
    # ------------------------------------------------------------------
    def plan(
        self, request: TraceRequest, failed: tuple[int, ...] = ()
    ) -> RequestPlan:
        """Build the element I/O plan for one byte-addressed request."""
        failed_key = tuple(sorted(set(failed)))
        if self.write_strategy == "cached":
            if failed_key:
                raise ValueError(
                    "the cached strategy models a healthy array; a cached "
                    "store drains its cache and bypasses it while degraded "
                    "— plan degraded requests with an executable strategy"
                )
            if request.is_write:
                log = self.shadow_cache.record_write(
                    request.offset, request.length
                )
            else:
                log = self.shadow_cache.record_read(
                    request.offset, request.length
                )
            return self._plan_from_log(log)
        reads: list[ElementIO] = []
        writes: list[ElementIO] = []
        for run in self.mapping.byte_runs(request.offset, request.length):
            if request.is_write:
                self._plan_write(run, failed_key, reads, writes)
            else:
                plan = self.plan_read_run(run.start, run.length, failed_key)
                for pos in plan.reads:
                    reads.append(self._io(run.stripe, pos, False))
        return RequestPlan(reads=_dedupe(reads), writes=_dedupe(writes))

    def _plan_write(
        self,
        run: ChunkRun,
        failed: tuple[int, ...],
        reads: list[ElementIO],
        writes: list[ElementIO],
    ) -> None:
        if self.write_strategy in _EXECUTABLE:
            plan = self.plan_write_run(
                run.start,
                run.length,
                failed,
                partial=run.is_partial(self.chunk_bytes),
            )
            for pos in plan.reads:
                if pos[1] not in failed:
                    reads.append(self._io(run.stripe, pos, False))
            for pos in plan.writes:
                if pos[1] not in failed:
                    writes.append(self._io(run.stripe, pos, True))
            return
        # Analytic strategies: the paper's accounting. Full-stripe runs
        # write every stored element with no pre-reads; partial runs use
        # the update-penalty cost sets of repro.analysis.write_path.
        code = self.code
        if run.length >= code.num_data:
            for pos in code.nonempty_positions:
                if pos[1] not in failed:
                    writes.append(self._io(run.stripe, pos, True))
            return
        positions = [
            code.data_positions[run.start + i] for i in range(run.length)
        ]
        if self.write_strategy == "rmw":
            cost = rmw_cost(code, positions)
        elif self.write_strategy == "rcw":
            cost = rcw_cost(code, positions)
        else:
            cost = choose_strategy(code, positions)
        for pos in cost.pre_reads:
            if pos[1] not in failed:
                reads.append(self._io(run.stripe, pos, False))
        for pos in cost.writes:
            if pos[1] not in failed:
                writes.append(self._io(run.stripe, pos, True))

    def plan_flush(self) -> RequestPlan:
        """Planned element I/O of flushing the cached model's dirty
        stripes (an empty plan for every other strategy)."""
        if self.shadow_cache is None:
            return RequestPlan(reads=[], writes=[])
        return self._plan_from_log(self.shadow_cache.record_flush())

    def _plan_from_log(
        self, log: list[tuple[int, Position, bool]]
    ) -> RequestPlan:
        """Convert a shadow-cache I/O log into a plan, verbatim.

        No dedupe: the log *is* the exact I/O sequence the real cache
        issues, and the exactness guarantee depends on mirroring it
        one-for-one.
        """
        reads: list[ElementIO] = []
        writes: list[ElementIO] = []
        for stripe, pos, is_write in log:
            target = writes if is_write else reads
            target.append(self._io(stripe, pos, is_write))
        return RequestPlan(reads=reads, writes=writes)

    def _io(self, stripe: int, pos: Position, is_write: bool) -> ElementIO:
        address = self.mapping.element_address(stripe, pos)
        return ElementIO(
            disk=address.disk, lba_chunk=address.lba_chunk, is_write=is_write
        )


def _dedupe(ios: list[ElementIO]) -> list[ElementIO]:
    """Drop duplicate element I/Os while preserving order."""
    seen: set[ElementIO] = set()
    out: list[ElementIO] = []
    for io in ios:
        if io not in seen:
            seen.add(io)
            out.append(io)
    return out
