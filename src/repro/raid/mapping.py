"""Address math shared by the simulator, the store, and the block device.

The mapping is the one the paper's evaluation assumes throughout: a
stripe's data elements are the unit of striping (one chunk each), logical
chunks fill stripes in row-major data order, and element ``(row, col)``
of stripe ``s`` lives on disk ``col`` at chunk LBA ``s * rows + row``.
Everything that addresses the array — the DiskSim controller, the
file-backed :class:`repro.store.ArrayStore`, the byte-addressed
:class:`repro.raid.blockdevice.BlockDevice`, and the Fig. 12 trace-cost
analysis — goes through this module, so there is exactly one place the
geometry can be right (or wrong).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.base import ArrayCode, Position

__all__ = ["ArrayMapping", "ChunkRun", "DiskAddress"]


@dataclass(frozen=True)
class DiskAddress:
    """Physical location of one element: a disk and a chunk LBA on it."""

    disk: int
    lba_chunk: int

    def byte_offset(self, chunk_bytes: int) -> int:
        """Byte offset of this element within its disk's address space."""
        return self.lba_chunk * chunk_bytes


@dataclass(frozen=True)
class ChunkRun:
    """One request's intersection with a single stripe.

    ``start`` and ``length`` index *logical data elements within the
    stripe* (the units the write-cost analysis counts); ``skip`` and
    ``nbytes`` carry the byte geometry a byte-addressed front-end needs:
    the run covers chunks ``[start, start + length)`` of the stripe but
    the request's payload begins ``skip`` bytes into the first covered
    chunk and spans ``nbytes`` bytes in total.
    """

    stripe: int
    start: int
    length: int
    skip: int = 0
    nbytes: int = 0

    def is_partial(self, chunk_bytes: int) -> bool:
        """True when the run covers its first or last chunk only partly."""
        return self.skip != 0 or self.nbytes != self.length * chunk_bytes


class ArrayMapping:
    """Logical-chunk / grid-position / per-disk-LBA address arithmetic.

    Args:
        code: the array code striping the array (defines the grid and
            which cells are data).
        chunk_bytes: stripe-unit size in bytes.
    """

    def __init__(self, code: ArrayCode, chunk_bytes: int) -> None:
        if chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")
        self.code = code
        self.chunk_bytes = chunk_bytes

    # ------------------------------------------------------------------
    # capacity
    # ------------------------------------------------------------------
    def capacity_chunks(self, stripes: int) -> int:
        """Logical data chunks held by ``stripes`` stripes."""
        return stripes * self.code.num_data

    def capacity_bytes(self, stripes: int) -> int:
        """Logical bytes held by ``stripes`` stripes."""
        return self.capacity_chunks(stripes) * self.chunk_bytes

    def disk_bytes(self, stripes: int) -> int:
        """Backing bytes each disk needs for ``stripes`` stripes."""
        return stripes * self.code.rows * self.chunk_bytes

    # ------------------------------------------------------------------
    # chunk <-> grid <-> disk
    # ------------------------------------------------------------------
    def chunk_to_stripe(self, logical_chunk: int) -> tuple[int, int]:
        """Split a logical chunk index into ``(stripe, within_stripe)``."""
        if logical_chunk < 0:
            raise ValueError(f"negative logical chunk {logical_chunk}")
        return divmod(logical_chunk, self.code.num_data)

    def data_position(self, within: int) -> Position:
        """Grid position of the ``within``-th data element of any stripe."""
        return self.code.data_positions[within]

    def chunk_position(self, logical_chunk: int) -> tuple[int, Position]:
        """Map a logical chunk to ``(stripe, (row, col))``."""
        stripe, within = self.chunk_to_stripe(logical_chunk)
        return stripe, self.code.data_positions[within]

    def element_address(self, stripe: int, pos: Position) -> DiskAddress:
        """Physical disk + chunk LBA of element ``pos`` of ``stripe``."""
        row, col = pos
        return DiskAddress(disk=col, lba_chunk=stripe * self.code.rows + row)

    # ------------------------------------------------------------------
    # byte / chunk range splitting
    # ------------------------------------------------------------------
    def byte_runs(self, offset: int, length: int) -> list[ChunkRun]:
        """Split a byte request into per-stripe chunk runs.

        Each returned :class:`ChunkRun` covers consecutive data elements
        of one stripe and records where the request's bytes fall within
        them, so unaligned offsets and sub-chunk lengths survive the
        split exactly.
        """
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if length <= 0:
            return []
        chunk_bytes = self.chunk_bytes
        per_stripe = self.code.num_data
        end = offset + length
        first_chunk = offset // chunk_bytes
        last_chunk = (end - 1) // chunk_bytes
        runs: list[ChunkRun] = []
        chunk = first_chunk
        while chunk <= last_chunk:
            stripe, start = divmod(chunk, per_stripe)
            run = min(per_stripe - start, last_chunk - chunk + 1)
            run_begin = max(offset, chunk * chunk_bytes)
            run_end = min(end, (chunk + run) * chunk_bytes)
            runs.append(
                ChunkRun(
                    stripe=stripe,
                    start=start,
                    length=run,
                    skip=run_begin - chunk * chunk_bytes,
                    nbytes=run_end - run_begin,
                )
            )
            chunk += run
        return runs

    def chunk_runs(self, start_chunk: int, count: int) -> list[ChunkRun]:
        """Split an aligned chunk range into per-stripe runs."""
        if start_chunk < 0:
            raise ValueError(f"negative start chunk {start_chunk}")
        return self.byte_runs(
            start_chunk * self.chunk_bytes, count * self.chunk_bytes
        )
