"""Write-back stripe cache with cross-request parity-delta coalescing.

The paper's headline property is *per-request* optimality: a single
chunk write touches exactly ``faults + 1`` elements (1 data + 3 parity
on TIP, Eqs. 1-3 / Table 2). Real traces, however, hammer the same
stripes repeatedly (Table 3 locality), and because TIP's three parities
are independent XOR chains, the parity deltas of successive writes to
one stripe *commute*: they can be XOR-folded into one accumulated delta
per parity and committed once per flush instead of once per request.
:class:`StripeCache` is that amortization layer.

Design
------

The cache operates over a narrow *backend* protocol — ``failed`` (a set
of failed columns), ``read_element(stripe, pos)`` and
``write_element(stripe, pos, chunk)`` — so one implementation serves two
consumers:

* :class:`repro.store.ArrayStore` is the real backend: element I/Os hit
  backing files and are metered by the store's ``IoCounters``;
* the planner's ``"cached"`` strategy drives the *same* cache over a
  :class:`_RecordingBackend` that logs I/Os and returns zeros
  (:class:`ShadowCache`). Cache decisions depend only on request
  geometry, never on chunk contents, so the shadow's planned element
  I/Os equal the real cache's measured chunk I/Os *by construction* —
  the property ``tests/test_raid_plan_vs_store.py`` cross-validates.

Per cached stripe the :class:`ParityDeltaAccumulator` keeps:

* ``data`` — current contents of cached data chunks (dirty or clean);
* ``dirty`` — which cached chunks still need to reach the backend;
* ``acc`` — per-parity XOR-accumulated deltas not yet anchored to the
  old parity contents (the coalescing state);
* ``pending`` — fully computed new parity chunks awaiting write-out.

Flush ordering (crash safety)
-----------------------------

``_flush_stripe`` is failure-atomic per stripe and strictly orders
**data before parity**:

1. every remaining ``acc`` delta is anchored: old parity is read and
   XORed into a ``pending`` value (reads only — nothing persisted yet);
2. dirty data chunks are written, each discarded from ``dirty`` only
   after its write returns;
3. pending parity chunks are written, each discarded from ``pending``
   only after its write returns.

A crash at any point leaves the cache state retryable: re-running
``flush()`` re-issues exactly the writes that had not completed, and
because ``pending`` holds absolute parity *values* (not deltas), the
retry is idempotent — a delta is never applied twice. Parity is never
persisted ahead of its stripe's data, so surviving parity on disk is
always consistent either with the old data or with data already written.
"""

from __future__ import annotations

import logging
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, Protocol

import numpy as np

from repro.codes.base import ArrayCode, Cell, Position
from repro.raid.mapping import ArrayMapping, ChunkRun
from repro.raid.planner import RequestPlanner
from repro.store.metering import IoCounters

logger = logging.getLogger(__name__)

__all__ = [
    "CacheBackend",
    "CacheStats",
    "ParityDeltaAccumulator",
    "ShadowCache",
    "StripeCache",
]


class CacheBackend(Protocol):
    """Element-granular I/O the cache is layered over."""

    @property
    def failed(self) -> Iterable[int]:  # pragma: no cover - protocol
        """Columns currently failed (their I/Os are skipped)."""
        ...

    def read_element(
        self, stripe: int, pos: Position
    ) -> np.ndarray:  # pragma: no cover - protocol
        """Read one element chunk."""
        ...

    def write_element(
        self, stripe: int, pos: Position, chunk: np.ndarray
    ) -> None:  # pragma: no cover - protocol
        """Write one element chunk."""
        ...


@dataclass
class CacheStats:
    """Hit/miss accounting plus raw-vs-coalesced chunk I/O counters.

    ``io`` meters the chunk I/Os the cache actually issued to its
    backend (the *coalesced* cost). ``raw_io`` prices what the same
    request sequence would have cost uncached — each write run is priced
    with the store's own planner, each read run at one chunk per covered
    element — so ``raw_io - io`` is the I/O the cache absorbed and
    :attr:`parity_write_amortization` is the paper-level payoff: how many
    per-request parity commits were folded into each flushed one.
    """

    read_chunk_hits: int = 0
    read_chunk_misses: int = 0
    write_chunk_hits: int = 0
    write_chunk_misses: int = 0
    write_chunks: int = 0
    bypass_chunks: int = 0
    flushes: int = 0
    evictions: int = 0
    io: IoCounters = field(default_factory=IoCounters)
    raw_io: IoCounters = field(default_factory=IoCounters)

    @property
    def lookups(self) -> int:
        """Chunk lookups served by the cache (reads + write pre-reads)."""
        return (
            self.read_chunk_hits + self.read_chunk_misses
            + self.write_chunk_hits + self.write_chunk_misses
        )

    @property
    def hits(self) -> int:
        """Lookups answered from cached chunks (no backend read)."""
        return self.read_chunk_hits + self.write_chunk_hits

    @property
    def hit_rate(self) -> float:
        """Fraction of chunk lookups served without touching the backend."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def parity_write_amortization(self) -> float:
        """Uncached parity chunk writes per coalesced parity chunk write.

        ``inf`` when the cache absorbed parity writes but flushed none
        yet (all deltas still pending). Use
        :attr:`parity_write_amortization_or_none` anywhere the value is
        serialized: ``json.dumps`` renders ``inf`` as the non-standard
        token ``Infinity``, which strict parsers reject.
        """
        if self.io.parity_chunks_written == 0:
            return float("inf") if self.raw_io.parity_chunks_written else 1.0
        return (
            self.raw_io.parity_chunks_written
            / self.io.parity_chunks_written
        )

    @property
    def parity_write_amortization_or_none(self) -> float | None:
        """JSON-safe amortization: ``None`` instead of ``inf``."""
        ratio = self.parity_write_amortization
        return None if ratio == float("inf") else ratio

    @property
    def chunk_ios_saved(self) -> int:
        """Chunk I/Os the cache absorbed versus the uncached write path."""
        return self.raw_io.total_chunks - self.io.total_chunks

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current stats."""
        return CacheStats(
            self.read_chunk_hits, self.read_chunk_misses,
            self.write_chunk_hits, self.write_chunk_misses,
            self.write_chunks, self.bypass_chunks,
            self.flushes, self.evictions,
            self.io.snapshot(), self.raw_io.snapshot(),
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.read_chunk_hits - other.read_chunk_hits,
            self.read_chunk_misses - other.read_chunk_misses,
            self.write_chunk_hits - other.write_chunk_hits,
            self.write_chunk_misses - other.write_chunk_misses,
            self.write_chunks - other.write_chunks,
            self.bypass_chunks - other.bypass_chunks,
            self.flushes - other.flushes,
            self.evictions - other.evictions,
            self.io - other.io,
            self.raw_io - other.raw_io,
        )


@dataclass
class ParityDeltaAccumulator:
    """Per-stripe write-back state: cached chunks + folded parity deltas.

    ``acc`` XOR-folds the parity delta of every absorbed write; at flush
    each entry is anchored to the old parity contents and moved to
    ``pending`` as an absolute value, making crash-retry idempotent.
    """

    data: dict[int, np.ndarray] = field(default_factory=dict)
    dirty: set[int] = field(default_factory=set)
    acc: dict[Position, np.ndarray] = field(default_factory=dict)
    pending: dict[Position, np.ndarray] = field(default_factory=dict)

    @property
    def is_dirty(self) -> bool:
        """True when the stripe still owes writes to the backend."""
        return bool(self.dirty or self.acc or self.pending)

    def fold(self, parity: Position, delta: np.ndarray) -> None:
        """XOR ``delta`` into the accumulated delta for ``parity``."""
        target = self.pending.get(parity)
        if target is not None:
            np.bitwise_xor(target, delta, out=target)
            return
        target = self.acc.get(parity)
        if target is None:
            # copy: one delta buffer feeds several parity chains
            self.acc[parity] = delta.copy()
        else:
            np.bitwise_xor(target, delta, out=target)


class StripeCache:
    """LRU write-back cache of stripes with parity-delta coalescing.

    Args:
        backend: element I/O provider (:class:`CacheBackend`).
        code: the array code striping the backend.
        chunk_bytes: element size in bytes.
        capacity_stripes: stripes cached at once; inserting beyond this
            flushes and evicts the least-recently-used stripe.
        raw_planner: planner used to price the *uncached* cost of each
            absorbed request for :attr:`CacheStats.raw_io`; a
            ``"delta"``-strategy planner is built when omitted.

    Aligned full-stripe overwrites bypass the cache (and invalidate any
    cached state for that stripe): the uncached stripe path already
    writes every stored element with zero pre-reads, which no amount of
    coalescing can beat.
    """

    def __init__(
        self,
        backend: CacheBackend,
        code: ArrayCode,
        chunk_bytes: int,
        capacity_stripes: int,
        raw_planner: RequestPlanner | None = None,
    ) -> None:
        if capacity_stripes < 1:
            raise ValueError("capacity_stripes must be >= 1")
        self.backend = backend
        self.code = code
        self.chunk_bytes = chunk_bytes
        self.capacity_stripes = capacity_stripes
        self.mapping = (
            raw_planner.mapping
            if raw_planner is not None
            else ArrayMapping(code, chunk_bytes)
        )
        self._raw = raw_planner or RequestPlanner(
            code, chunk_bytes, write_strategy="delta"
        )
        self.stats = CacheStats()
        self._stripes: OrderedDict[int, ParityDeltaAccumulator] = OrderedDict()
        # One reentrant lock guards every cache transition (LRU order,
        # accumulator fold, flush, eviction, stats). Coarse by design:
        # each transition is cheap relative to the backend chunk I/O it
        # coalesces, and holding the lock across a whole fold/flush makes
        # the per-stripe state machine atomic — a concurrent writer can
        # never observe (or fold into) a stripe mid-flush. Reentrant
        # because ``drop()`` calls ``flush()`` and eviction inside
        # ``write()`` flushes the victim.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._stripes)

    @property
    def cached_stripes(self) -> tuple[int, ...]:
        """Cached stripe indices, least recently used first."""
        with self._lock:
            return tuple(self._stripes)

    @property
    def dirty_stripes(self) -> tuple[int, ...]:
        """Cached stripes still owing writes, least recently used first."""
        with self._lock:
            return tuple(s for s, st in self._stripes.items() if st.is_dirty)

    def snapshot_stats(self) -> CacheStats:
        """An atomic copy of the running stats (no torn counter sets)."""
        with self._lock:
            return self.stats.snapshot()

    # ------------------------------------------------------------------
    # metered backend I/O
    # ------------------------------------------------------------------
    def _meter(self, pos: Position, *, wrote: bool) -> None:
        kind = self.code.kind(*pos)
        if kind == Cell.EMPTY:
            return
        counters = self.stats.io
        if kind == Cell.PARITY:
            if wrote:
                counters.parity_chunks_written += 1
            else:
                counters.parity_chunks_read += 1
        elif wrote:
            counters.data_chunks_written += 1
        else:
            counters.data_chunks_read += 1

    def _read(self, stripe: int, pos: Position) -> np.ndarray:
        chunk = self.backend.read_element(stripe, pos)
        self._meter(pos, wrote=False)
        return chunk

    def _write(self, stripe: int, pos: Position, chunk: np.ndarray) -> None:
        self.backend.write_element(stripe, pos, chunk)
        self._meter(pos, wrote=True)

    def _count_raw_positions(
        self, positions: Iterable[Position], *, wrote: bool
    ) -> None:
        counters = self.stats.raw_io
        for pos in positions:
            kind = self.code.kind(*pos)
            if kind == Cell.EMPTY:
                continue
            if kind == Cell.PARITY:
                if wrote:
                    counters.parity_chunks_written += 1
                else:
                    counters.parity_chunks_read += 1
            elif wrote:
                counters.data_chunks_written += 1
            else:
                counters.data_chunks_read += 1

    def _price_raw_write(self, run: ChunkRun) -> None:
        plan = self._raw.plan_write_run(
            run.start, run.length, (),
            partial=run.is_partial(self.chunk_bytes),
        )
        self._count_raw_positions(plan.reads, wrote=False)
        self._count_raw_positions(plan.writes, wrote=True)

    # ------------------------------------------------------------------
    # LRU bookkeeping
    # ------------------------------------------------------------------
    def _touch(self, stripe: int) -> ParityDeltaAccumulator:
        """The stripe's cache entry, inserted (evicting LRU) if absent."""
        state = self._stripes.get(stripe)
        if state is not None:
            self._stripes.move_to_end(stripe)
            return state
        while len(self._stripes) >= self.capacity_stripes:
            victim, victim_state = next(iter(self._stripes.items()))
            was_dirty = victim_state.is_dirty
            self._flush_stripe(victim, victim_state)
            del self._stripes[victim]
            self.stats.evictions += 1
            if logger.isEnabledFor(logging.DEBUG):
                logger.debug(
                    "cache: evicted stripe %d for %d (%s)",
                    victim, stripe, "flushed" if was_dirty else "clean",
                )
        state = ParityDeltaAccumulator()
        self._stripes[stripe] = state
        return state

    def invalidate(self, stripe: int) -> None:
        """Drop a stripe's cached state without flushing it."""
        with self._lock:
            self._stripes.pop(stripe, None)

    # ------------------------------------------------------------------
    # byte I/O
    # ------------------------------------------------------------------
    def write(self, offset: int, buf: np.ndarray) -> None:
        """Absorb a byte-addressed write (any alignment) into the cache.

        Each per-stripe run either bypasses (aligned full-stripe
        overwrite: re-encode and store directly, exactly the uncached
        stripe path) or is cached: old chunks are pre-read once per miss
        — the delta needs them anyway, and a partial head/tail splices
        onto them for free — the data delta is folded into each dependent
        parity's accumulator, and the new contents are kept dirty.
        """
        cursor = 0
        for run in self.mapping.byte_runs(offset, buf.size):
            payload = buf[cursor : cursor + run.nbytes]
            # Lock per stripe-run, not per request: a multi-stripe write
            # holds the cache only as long as one stripe's transition.
            with self._lock:
                self._price_raw_write(run)
                if (
                    run.length == self.code.num_data
                    and not run.is_partial(self.chunk_bytes)
                ):
                    self._bypass_full_stripe(run, payload)
                else:
                    self._absorb_run(run, payload)
            cursor += run.nbytes

    def _bypass_full_stripe(self, run: ChunkRun, payload: np.ndarray) -> None:
        """Aligned whole-stripe overwrite: encode fresh, write through.

        Every element is replaced, so cached state for the stripe —
        including unflushed parity deltas — is obsolete and dropped.
        """
        self.invalidate(run.stripe)
        code = self.code
        grid = np.zeros(
            (code.rows, code.cols, self.chunk_bytes), dtype=np.uint8
        )
        chunks = payload.reshape(code.num_data, self.chunk_bytes)
        for index, (row, col) in enumerate(code.data_positions):
            grid[row, col] = chunks[index]
        code.encode(grid)
        failed = set(self.backend.failed)
        for pos in code.nonempty_positions:
            if pos[1] not in failed:
                self._write(run.stripe, pos, grid[pos[0], pos[1]])
        self.stats.bypass_chunks += run.length

    def _absorb_run(self, run: ChunkRun, payload: np.ndarray) -> None:
        state = self._touch(run.stripe)
        chunk_bytes = self.chunk_bytes
        cursor = 0
        for index in range(run.length):
            within = run.start + index
            pos = self.code.data_positions[within]
            old = state.data.get(within)
            if old is None:
                old = self._read(run.stripe, pos)
                self.stats.write_chunk_misses += 1
            else:
                self.stats.write_chunk_hits += 1
            skip = run.skip if index == 0 else 0
            take = min(chunk_bytes - skip, run.nbytes - cursor)
            if skip == 0 and take == chunk_bytes:
                new = payload[cursor : cursor + chunk_bytes].copy()
            else:
                new = old.copy()
                new[skip : skip + take] = payload[cursor : cursor + take]
            cursor += take
            delta = np.bitwise_xor(old, new)
            for parity in self.code.parity_dependents[pos]:
                state.fold(parity, delta)
            state.data[within] = new
            state.dirty.add(within)
            self.stats.write_chunks += 1

    def read(self, offset: int, length: int) -> np.ndarray:
        """Serve a byte-addressed read, preferring cached chunks.

        Misses read through to the backend. A miss on an
        already-cached stripe populates that stripe's entry (the chunk
        stays clean); reads never allocate new stripe entries, so a
        read-heavy scan cannot evict write-back state.
        """
        out = np.empty(length, dtype=np.uint8)
        chunk_bytes = self.chunk_bytes
        cursor = 0
        for run in self.mapping.byte_runs(offset, length):
            with self._lock:
                state = self._stripes.get(run.stripe)
                if state is not None:
                    self._stripes.move_to_end(run.stripe)
                consumed = 0
                for index in range(run.length):
                    within = run.start + index
                    pos = self.code.data_positions[within]
                    chunk = None if state is None else state.data.get(within)
                    if chunk is None:
                        chunk = self._read(run.stripe, pos)
                        self.stats.read_chunk_misses += 1
                        if state is not None:
                            state.data[within] = chunk
                    else:
                        self.stats.read_chunk_hits += 1
                    skip = run.skip if index == 0 else 0
                    take = min(chunk_bytes - skip, run.nbytes - consumed)
                    out[cursor : cursor + take] = chunk[skip : skip + take]
                    cursor += take
                    consumed += take
                self._count_raw_positions(
                    (
                        self.code.data_positions[run.start + i]
                        for i in range(run.length)
                    ),
                    wrote=False,
                )
        return out

    def apply_batch(
        self, ops: "list[tuple[bool, int, np.ndarray | int]]"
    ) -> "list[np.ndarray | None]":
        """Apply a batch of ops in order under one cache lock hold.

        The batched front-end's cache entry point: each
        ``(is_write, offset, payload_or_length)`` op runs the exact
        per-run absorb/serve logic of :meth:`write` / :meth:`read` —
        successive writes to one stripe keep folding into the same
        :class:`ParityDeltaAccumulator` with no flush in between, and
        eviction fires exactly where the serial path fires it (capacity
        pressure in ``_touch``) so hit/miss accounting, chunk
        ``IoCounters`` and final contents stay byte-for-byte identical
        to applying the ops one by one. What the batch amortizes is the
        lock traffic: one reentrant hold instead of one acquisition per
        stripe-run.
        """
        with self._lock:
            results: "list[np.ndarray | None]" = []
            for is_write, offset, payload in ops:
                if is_write:
                    self.write(offset, payload)
                    results.append(None)
                else:
                    results.append(self.read(offset, payload))
            return results

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Write back every dirty stripe (LRU order); returns stripes
        flushed. Entries stay cached (clean) for future hits.

        A stripe invalidated while the flush walks the list — e.g. by
        :meth:`ArrayStore.fail_disk` reacting to a fault surfaced by
        this very flush, or a full-stripe bypass write racing in — is
        simply skipped: its state is gone and owes nothing.
        """
        with self._lock:
            flushed = 0
            for stripe in list(self._stripes):
                state = self._stripes.get(stripe)
                if state is None:
                    continue  # invalidated mid-flush
                if self._flush_stripe(stripe, state):
                    flushed += 1
            if flushed and logger.isEnabledFor(logging.DEBUG):
                logger.debug("cache: flushed %d dirty stripes", flushed)
            return flushed

    def drop(self) -> None:
        """Flush everything, then empty the cache entirely."""
        with self._lock:
            logger.info(
                "cache: dropping %d cached stripes (flush + disengage)",
                len(self._stripes),
            )
            self.flush()
            self._stripes.clear()

    def _flush_stripe(
        self, stripe: int, state: ParityDeltaAccumulator
    ) -> bool:
        """Commit one stripe: anchor deltas, write data, then parity.

        Incremental and idempotent — each piece of pending state is
        discarded only after the backend write that persists it returns,
        so a crash mid-flush is retried by calling flush again. See the
        module docstring for the ordering invariant.
        """
        if not state.is_dirty:
            return False
        failed = set(self.backend.failed)
        for parity in sorted(state.acc):
            if parity[1] in failed:
                del state.acc[parity]  # the parity died with its disk
                continue
            delta = state.acc[parity]
            prev = state.pending.get(parity)
            if prev is not None:
                # Deltas folded after an interrupted flush anchored this
                # parity: fold onto the surviving anchor — re-reading
                # would double-apply the anchored part.
                np.bitwise_xor(prev, delta, out=prev)
            else:
                # Anchor only after the pre-read returns: an injected
                # fault on this read must leave the delta in ``acc`` or
                # the parity chain silently loses it (and a later
                # rebuild would decode a consistent-but-wrong chunk
                # through the stale chain).
                old = self._read(stripe, parity)
                state.pending[parity] = np.bitwise_xor(old, delta)
            del state.acc[parity]
        for within in sorted(state.dirty):
            pos = self.code.data_positions[within]
            if pos[1] not in failed:
                self._write(stripe, pos, state.data[within])
            state.dirty.discard(within)
        for parity in sorted(state.pending):
            if parity[1] not in failed:
                self._write(stripe, parity, state.pending[parity])
            del state.pending[parity]
        self.stats.flushes += 1
        return True


class _RecordingBackend:
    """Backend stub: logs element I/Os, returns zeros. Healthy only."""

    failed: frozenset[int] = frozenset()

    def __init__(self, chunk_bytes: int) -> None:
        self.chunk_bytes = chunk_bytes
        self.log: list[tuple[int, Position, bool]] = []

    def read_element(self, stripe: int, pos: Position) -> np.ndarray:
        """Log the read; contents never influence cache decisions."""
        self.log.append((stripe, pos, False))
        return np.zeros(self.chunk_bytes, dtype=np.uint8)

    def write_element(
        self, stripe: int, pos: Position, chunk: np.ndarray
    ) -> None:
        """Log the write; nothing is stored."""
        self.log.append((stripe, pos, True))


class ShadowCache:
    """Planner-side mirror of a cached store.

    Replays the exact :class:`StripeCache` logic over a recording
    backend and emits the element I/Os the real cache will issue for the
    same request sequence. Because cache behavior depends only on request
    geometry (offsets, lengths, LRU state) and never on chunk contents,
    feeding both caches the same sequence yields identical I/O logs —
    the ``"cached"`` planner strategy's exactness guarantee.
    """

    def __init__(
        self, code: ArrayCode, chunk_bytes: int, capacity_stripes: int
    ) -> None:
        self._backend = _RecordingBackend(chunk_bytes)
        self.cache = StripeCache(
            self._backend, code, chunk_bytes, capacity_stripes
        )

    @property
    def stats(self) -> CacheStats:
        """The shadow cache's predicted stats."""
        return self.cache.stats

    def _drain_log(self) -> list[tuple[int, Position, bool]]:
        log = list(self._backend.log)
        self._backend.log.clear()
        return log

    def record_write(
        self, offset: int, length: int
    ) -> list[tuple[int, Position, bool]]:
        """Element I/Os a cached store issues for this write request."""
        self._backend.log.clear()
        self.cache.write(offset, np.zeros(length, dtype=np.uint8))
        return self._drain_log()

    def record_read(
        self, offset: int, length: int
    ) -> list[tuple[int, Position, bool]]:
        """Element I/Os a cached store issues for this read request."""
        self._backend.log.clear()
        self.cache.read(offset, length)
        return self._drain_log()

    def record_flush(self) -> list[tuple[int, Position, bool]]:
        """Element I/Os flushing the currently dirty stripes issues."""
        self._backend.log.clear()
        self.cache.flush()
        return self._drain_log()
