"""Unified RAID planning layer: address math, I/O plans, byte device.

One address mapping and one write-path model tie the paper's evaluation
together: Figs. 10-12 count element I/Os analytically, Fig. 13 replays
traces through a simulated controller, and a real store must measure the
same footprints. This package is the single source of truth all of those
consumers share:

* :mod:`repro.raid.mapping` — logical-chunk / ``(stripe, row, col)`` /
  per-disk LBA address math and byte-range → chunk-run splitting;
* :mod:`repro.raid.planner` — explicit :class:`RequestPlan`s (RMW-delta
  vs full-stripe selection, degraded-read expansion) consumed identically
  by the DiskSim controller (which prices a plan) and by
  :class:`repro.store.ArrayStore` (which executes it);
* :mod:`repro.raid.blockdevice` — a byte-addressed :class:`BlockDevice`
  over the real store, with :meth:`BlockDevice.replay` running any trace
  against backing files and returning measured per-request I/O counters.

The layering is ``mapping → planner → {disksim simulator, store/BlockDevice}``,
so the controller's *planned* element I/Os and the store's *measured*
chunk I/Os are the same numbers by construction — and cross-checked by
``tests/test_raid_plan_vs_store.py``.
"""

from repro.raid.blockdevice import BlockDevice, ReplayResult
from repro.raid.mapping import ArrayMapping, ChunkRun, DiskAddress
from repro.raid.planner import (
    WRITE_STRATEGIES,
    ElementIO,
    RequestPlan,
    RequestPlanner,
    RunPlan,
    plan_io_counters,
)

# Imported last: the cache builds on the planner and the store's counters.
from repro.raid.cache import (  # noqa: E402
    CacheStats,
    ParityDeltaAccumulator,
    ShadowCache,
    StripeCache,
)

__all__ = [
    "ArrayMapping",
    "CacheStats",
    "ChunkRun",
    "DiskAddress",
    "ElementIO",
    "ParityDeltaAccumulator",
    "RequestPlan",
    "RequestPlanner",
    "RunPlan",
    "ShadowCache",
    "StripeCache",
    "WRITE_STRATEGIES",
    "plan_io_counters",
    "BlockDevice",
    "ReplayResult",
]
