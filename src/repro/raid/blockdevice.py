"""A byte-addressed block device over the real erasure-coded store.

:class:`repro.store.ArrayStore` speaks chunks; real traces speak bytes at
arbitrary (sector-aligned or not) offsets. :class:`BlockDevice` closes
that gap: unaligned offsets and lengths, partial-chunk read-modify-write,
and multi-stripe requests all route through the store's planner-driven
byte path, so a sub-chunk write still costs exactly what the plan says
(on TIP: 1 data + 3 parity chunks read and written — the partial-chunk
splice rides on the delta path's existing pre-read for free).

:meth:`BlockDevice.replay` runs any :class:`~repro.traces.Trace` —
synthetic (:func:`~repro.traces.generate_trace`) or parsed from a CSV
(:func:`~repro.traces.parse_csv_trace`) — against the backing files and
returns per-request and aggregate measured I/O counters, the real-store
counterpart of the DiskSim simulator's planned replay (Fig. 13).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.traces.model import Trace, TraceRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.faults.inject import FaultPlan
    from repro.faults.repair import RepairController, RepairStats
    from repro.raid.cache import CacheStats
    from repro.store import ArrayStore, IoCounters

__all__ = ["BlockDevice", "ReplayResult"]

#: Per-request cap on fault-handle-and-retry cycles during replay: every
#: retry follows a state-changing repair (disk replaced, stripe fixed),
#: so the bound only guards against a pathological fault plan.
_MAX_REQUEST_ATTEMPTS = 6


@dataclass
class ReplayResult:
    """Measured outcome of replaying one trace against a real store."""

    trace_name: str
    requests: int
    reads: int
    writes: int
    bytes_read: int
    bytes_written: int
    read_chunks: int
    write_chunks: int
    io: "IoCounters"
    per_request: list["IoCounters"] = field(repr=False, default_factory=list)
    #: Write-back cache stats for this replay (None when uncached):
    #: hit rate, raw-vs-coalesced I/O, parity-write amortization.
    cache: "CacheStats | None" = None
    #: Repair-loop stats for this replay (None when no controller was
    #: attached): faults handled, stripes rebuilt, rebuild I/O.
    repair: "RepairStats | None" = None
    #: Requests retried after an injected fault was handled.
    retried_requests: int = 0

    @property
    def chunks_per_write(self) -> float:
        """Average measured chunk I/Os per write request (Fig. 12's axis,
        measured on real files instead of counted analytically)."""
        return self.write_chunks / self.writes if self.writes else 0.0

    @property
    def chunks_per_read(self) -> float:
        """Average measured chunk I/Os per read request."""
        return self.read_chunks / self.reads if self.reads else 0.0


class BlockDevice:
    """Byte-granular front-end over an :class:`~repro.store.ArrayStore`.

    Args:
        store: the chunk store to serve from. The device addresses the
            store's full logical capacity
            (``store.capacity_chunks * store.chunk_bytes`` bytes).
    """

    def __init__(
        self, store: "ArrayStore", fault_plan: "FaultPlan | None" = None
    ) -> None:
        self.store = store
        self.mapping = store.planner.mapping
        self.capacity_bytes = store.capacity_chunks * store.chunk_bytes
        if fault_plan is not None:
            store.set_fault_plan(fault_plan)

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if length <= 0:
            raise ValueError(f"non-positive length {length}")
        if offset + length > self.capacity_bytes:
            raise ValueError(
                f"range [{offset}, {offset + length}) exceeds device "
                f"capacity {self.capacity_bytes}"
            )

    # ------------------------------------------------------------------
    # byte I/O
    # ------------------------------------------------------------------
    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` (degraded-safe)."""
        self._check_range(offset, length)
        return self.store.read_bytes(offset, length).tobytes()

    def write(self, offset: int, data: bytes | bytearray | np.ndarray) -> None:
        """Write ``data`` at byte ``offset``; any alignment is accepted.

        Partial-chunk updates are read-modify-write on the store's delta
        fast path: the old chunk the delta needs anyway provides the
        bytes around the splice, so unaligned writes cost exactly the
        same chunk I/Os as aligned ones.
        """
        buf = np.frombuffer(bytes(data), dtype=np.uint8) if not isinstance(
            data, np.ndarray
        ) else np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
        self._check_range(offset, buf.size)
        self.store.write_bytes(offset, buf)

    # ------------------------------------------------------------------
    # trace replay
    # ------------------------------------------------------------------
    def _map_request(self, request: TraceRequest) -> tuple[int, int]:
        """Fold a trace request into the device's address space.

        Traces address the volume they were captured on; the replayed
        device is usually smaller. Offsets wrap modulo capacity and
        lengths clamp to the remaining span — the standard trace-replay
        convention, preserving the request-size distribution for all but
        the (rare) wrap-straddling requests.
        """
        offset = request.offset % self.capacity_bytes
        length = min(request.length, self.capacity_bytes - offset)
        return offset, length

    def _attempt(
        self, request: TraceRequest, offset: int, length: int,
        repair: "RepairController | None",
    ) -> int:
        """Execute one request, dispatching injected faults through the
        repair controller and retrying; returns the retries consumed."""
        from repro.faults.inject import FaultError

        store = self.store
        last_fault: FaultError | None = None
        for attempt in range(_MAX_REQUEST_ATTEMPTS):
            try:
                if request.is_write:
                    store.write_bytes(offset, _payload(request, length))
                else:
                    store.read_bytes(offset, length)
                return attempt
            except FaultError as exc:
                if repair is None or not repair.handle_fault(exc):
                    raise
                last_fault = exc
        # Chain the final fault: the retry cap firing is a symptom, the
        # root cause is whatever kept faulting after repair.
        raise IOError(
            f"request at offset {offset} still faulting after "
            f"{_MAX_REQUEST_ATTEMPTS} repair-and-retry attempts"
        ) from last_fault

    def replay(
        self,
        trace: Trace,
        repair: "RepairController | None" = None,
        scrub_every: int = 0,
    ) -> ReplayResult:
        """Replay every request of ``trace`` against the real store.

        Returns measured per-request and aggregate
        :class:`~repro.store.IoCounters` — the store meters actual chunk
        transfers to/from its backing files, so these numbers are
        evidence, not estimates.

        With a :class:`~repro.faults.repair.RepairController` attached,
        injected faults surfacing from a request are handled (disk
        replaced and queued for rebuild, latent stripe repaired, write
        journal rolled forward) and the request retried; with
        ``scrub_every > 0`` the controller additionally gets one
        throttled :meth:`~repro.faults.repair.RepairController.tick`
        every that many requests, interleaving rebuild/scrub bandwidth
        with foreground traffic. Any rebuild still in flight is drained
        before returning, so the device always hands back a healthy
        array. Background repair I/O lands in the aggregate ``io`` but
        not in ``per_request`` — the split ``bench_scrub`` reports.
        """
        store = self.store
        cache = getattr(store, "cache", None)
        cache_before = cache.snapshot_stats() if cache is not None else None
        start = store.io.snapshot()
        per_request: list[IoCounters] = []
        reads = writes = 0
        bytes_read = bytes_written = 0
        read_chunks = write_chunks = 0
        retried = 0
        for index, request in enumerate(trace):
            offset, length = self._map_request(request)
            before = store.io.snapshot()
            retried += self._attempt(request, offset, length, repair)
            if request.is_write:
                writes += 1
                bytes_written += length
            else:
                reads += 1
                bytes_read += length
            done = store.io.snapshot() - before
            if request.is_write:
                write_chunks += done.total_chunks
            else:
                read_chunks += done.total_chunks
            per_request.append(done)
            if (
                repair is not None
                and scrub_every > 0
                and (index + 1) % scrub_every == 0
            ):
                repair.tick()
        if repair is not None:
            repair.drain()
        if cache is not None:
            # Flush so the aggregate counters cover everything the trace
            # made durable; the final flush belongs to the replay as a
            # whole, not to any single request.
            store.flush()
        return ReplayResult(
            trace_name=trace.name,
            requests=len(per_request),
            reads=reads,
            writes=writes,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            read_chunks=read_chunks,
            write_chunks=write_chunks,
            io=store.io.snapshot() - start,
            per_request=per_request,
            cache=(
                cache.snapshot_stats() - cache_before
                if cache is not None
                else None
            ),
            repair=repair.stats if repair is not None else None,
            retried_requests=retried,
        )


def _payload(request: TraceRequest, length: int) -> np.ndarray:
    """Deterministic per-request payload bytes for write replay.

    Traces carry no data, only geometry; replay needs bytes. Each request
    gets a cheap deterministic pattern derived from its offset so repeated
    replays are reproducible and read-back checks are meaningful.
    """
    seed = (request.offset * 2654435761 + request.length) & 0xFFFFFFFF
    pattern = np.arange(length, dtype=np.int64) + seed
    return (pattern % 251).astype(np.uint8)
