"""File-backed erasure-coded chunk store.

Everything downstream of the stripe math in a real array: a directory of
per-disk backing files, stripe layout on those files, a block-device-like
read/write interface, online disk failure and rebuild, and scrubbing.
This is the layer the examples use to behave like an actual storage
system rather than a single-stripe demo.
"""

from repro.store.array_store import ArrayStore, DiskFailedError

__all__ = ["ArrayStore", "DiskFailedError"]
