"""File-backed erasure-coded chunk store.

Everything downstream of the stripe math in a real array: a directory of
per-disk backing files, stripe layout on those files, a block-device-like
read/write interface, online disk failure and rebuild, and scrubbing.
The write path mirrors the paper's update-complexity story: small writes
take a delta read-modify-write fast path that touches exactly the
generator-matrix-dependent parity chunks (3 for TIP), with chunk-level
I/O counters (:class:`IoCounters`) proving the footprint per operation.
This is the layer the examples use to behave like an actual storage
system rather than a single-stripe demo.
"""

from repro.store.array_store import (
    WRITE_MODES,
    ArrayStore,
    DiskFailedError,
)
from repro.store.journal import (
    IntentJournal,
    JournalRecord,
    MemoryJournal,
    WriteJournal,
)
from repro.store.metering import IoCounters, SyscallCounters

__all__ = [
    "ArrayStore",
    "DiskFailedError",
    "IntentJournal",
    "IoCounters",
    "JournalRecord",
    "MemoryJournal",
    "SyscallCounters",
    "WRITE_MODES",
    "WriteJournal",
]
