"""Chunk-granularity I/O accounting shared by the store and the cache.

Lives in its own leaf module (no repro imports) so both
:mod:`repro.store.array_store` and :mod:`repro.raid.cache` can meter with
the same counters without an import cycle: the cache sits *inside* the
store's write path but is defined in the raid package the store imports.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable

__all__ = ["IoCounters", "SyscallCounters"]


@dataclass
class IoCounters:
    """Chunk-granularity I/O accounting, split by element role.

    Counts chunks actually transferred to/from backing files. EMPTY
    (structural-zero) elements are not counted: they carry no information
    and no real layout would allocate them.
    """

    data_chunks_read: int = 0
    parity_chunks_read: int = 0
    data_chunks_written: int = 0
    parity_chunks_written: int = 0

    @property
    def chunks_read(self) -> int:
        """Total chunks read (data + parity)."""
        return self.data_chunks_read + self.parity_chunks_read

    @property
    def chunks_written(self) -> int:
        """Total chunks written (data + parity)."""
        return self.data_chunks_written + self.parity_chunks_written

    @property
    def total_chunks(self) -> int:
        """Total chunk I/Os (reads + writes)."""
        return self.chunks_read + self.chunks_written

    def reset(self) -> None:
        """Zero all counters in place."""
        self.data_chunks_read = 0
        self.parity_chunks_read = 0
        self.data_chunks_written = 0
        self.parity_chunks_written = 0

    def snapshot(self) -> "IoCounters":
        """An independent copy of the current counts."""
        return replace(self)

    def __add__(self, other: "IoCounters") -> "IoCounters":
        return IoCounters(
            self.data_chunks_read + other.data_chunks_read,
            self.parity_chunks_read + other.parity_chunks_read,
            self.data_chunks_written + other.data_chunks_written,
            self.parity_chunks_written + other.parity_chunks_written,
        )

    @classmethod
    def merged(cls, counters: Iterable["IoCounters"]) -> "IoCounters":
        """Sum an iterable of counters into one (the per-shard →
        per-volume aggregation; an empty iterable merges to zeros)."""
        total = cls()
        for item in counters:
            total.data_chunks_read += item.data_chunks_read
            total.parity_chunks_read += item.parity_chunks_read
            total.data_chunks_written += item.data_chunks_written
            total.parity_chunks_written += item.parity_chunks_written
        return total

    def __sub__(self, other: "IoCounters") -> "IoCounters":
        return IoCounters(
            self.data_chunks_read - other.data_chunks_read,
            self.parity_chunks_read - other.parity_chunks_read,
            self.data_chunks_written - other.data_chunks_written,
            self.parity_chunks_written - other.parity_chunks_written,
        )


@dataclass
class SyscallCounters:
    """Backing-file syscall accounting, orthogonal to :class:`IoCounters`.

    ``IoCounters`` meters *logical* chunk transfers — the paper's 1+3
    accounting contract, identical whether chunks move one ``pread`` at
    a time or coalesced into spans. These counters meter the *physical*
    syscalls those transfers cost, which is what the batched span path
    reduces: ``reads``/``writes`` count ``os.pread``/``os.pwrite``
    calls, ``vector_reads``/``vector_writes`` count ``os.preadv``/
    ``os.pwritev`` calls (one each per coalesced span).
    """

    reads: int = 0
    writes: int = 0
    vector_reads: int = 0
    vector_writes: int = 0

    @property
    def total(self) -> int:
        """All backing-file syscalls issued."""
        return (
            self.reads + self.writes + self.vector_reads + self.vector_writes
        )

    def snapshot(self) -> "SyscallCounters":
        """An independent copy of the current counts."""
        return replace(self)

    def __add__(self, other: "SyscallCounters") -> "SyscallCounters":
        return SyscallCounters(
            self.reads + other.reads,
            self.writes + other.writes,
            self.vector_reads + other.vector_reads,
            self.vector_writes + other.vector_writes,
        )

    def __sub__(self, other: "SyscallCounters") -> "SyscallCounters":
        return SyscallCounters(
            self.reads - other.reads,
            self.writes - other.writes,
            self.vector_reads - other.vector_reads,
            self.vector_writes - other.vector_writes,
        )
