"""Pluggable write-intent journals: the store's crash-consistency spine.

A mutating store operation (a delta run, a full-stripe run, a restripe
extent copy) intends a known set of absolute span writes before it
touches any byte. The journal captures that intent so a crash — an
injected fault mid-operation, or a whole-process kill — can be resolved
by *rolling the intent forward*: every journaled span is an absolute
value, so replay is idempotent no matter how many of the original
writes landed or how many times the replay itself is attempted.

Two implementations share the :class:`WriteJournal` protocol:

* :class:`MemoryJournal` — the original in-process journal extracted
  from :class:`~repro.store.ArrayStore`. Intents live in thread-local
  lists (each thread's in-flight operation owns its own transaction);
  it survives injected faults, not process death. This is the default
  every existing single-store configuration keeps.
* :class:`IntentJournal` — a crash-consistent on-disk journal: intent
  records with CRC32-guarded headers and payloads are appended and
  fsynced *before* the first data write (journal-before-data ordering),
  commit markers are appended after the operation completes and fsynced
  lazily in groups (group commit), and :meth:`IntentJournal.recover`
  replays any transaction whose commit marker is missing when the file
  is reopened. Because replay is idempotent, a lost commit marker costs
  a redundant replay, never correctness — which is exactly what makes
  group commit safe.

One journal instance can be **shared across stores**: every record
carries the ``shard`` id of the store that logged it (the
:class:`~repro.volume.VolumeManager` gives each of its shards a unique
id), transactions are per ``(thread, shard)``, and recovery can be
filtered per shard so each store rolls forward exactly its own writes.
"""

from __future__ import annotations

import logging
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator, Protocol
from zlib import crc32

__all__ = [
    "IntentJournal",
    "JournalCorruptionError",
    "JournalRecord",
    "MemoryJournal",
    "WriteJournal",
]

logger = logging.getLogger(__name__)

#: Record kinds in the on-disk format.
_KIND_INTENT = 1
_KIND_COMMIT = 2

#: On-disk record header: magic, kind, shard, disk, txn, offset, length,
#: data-chunk count, parity-chunk count, payload CRC32, header CRC32.
_HEADER = struct.Struct("<2sBxIiQQIHHII")
_MAGIC = b"RJ"


class JournalCorruptionError(RuntimeError):
    """A journal record failed its checksum mid-file (not a torn tail)."""


@dataclass(frozen=True)
class JournalRecord:
    """One intended span write: absolute payload at (shard, disk, offset).

    ``meter`` is the ``(data_chunks, parity_chunks)`` split the write
    moves, carried so a replay can account its I/O exactly like the
    original operation would have.
    """

    shard: int
    disk: int
    offset: int
    payload: bytes
    meter: tuple[int, int] = (0, 0)


class WriteJournal(Protocol):
    """Intent-journal protocol the store's write path drives.

    Transaction scope is one mutating run on one shard, executed by one
    thread: ``log`` each intended span, ``seal`` the transaction (a
    durability barrier — nothing may be journaled *after* data writes
    begin), then ``commit`` once every span landed. ``pending`` exposes
    the calling thread's sealed-but-uncommitted records so an
    interrupted operation can be rolled forward in process.
    """

    def log(self, record: JournalRecord) -> None:
        """Add one intended span write to the open transaction."""
        ...  # pragma: no cover - protocol

    def seal(self, shard: int) -> None:
        """Make the open transaction's intents durable (journal-before-
        data: must return before the first data byte is mutated)."""
        ...  # pragma: no cover - protocol

    def commit(self, shard: int) -> None:
        """Retire the transaction: every intended span write landed."""
        ...  # pragma: no cover - protocol

    def pending(self, shard: int) -> list[JournalRecord]:
        """The calling thread's in-flight records for ``shard``."""
        ...  # pragma: no cover - protocol

    def drop_pending(self, shard: int, record: JournalRecord) -> None:
        """Mark one pending record replayed (idempotency bookkeeping)."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release any resources (a shared journal is closed once, by
        its owner)."""
        ...  # pragma: no cover - protocol


class MemoryJournal:
    """The in-process journal: thread-local intent lists, no durability.

    Extracted verbatim in behaviour from the store's original
    ``_journal_tls`` machinery: each thread's in-flight operation owns
    its own transaction, a fault interrupts that same thread, and the
    repair path rolls it forward on that thread too — so concurrent
    writers can never clear each other's entries. ``seal`` is a no-op
    (there is nothing to make durable) and recovery across process
    restarts is impossible by design; that is :class:`IntentJournal`'s
    job.
    """

    #: Memory journals survive injected faults only; reopen recovery is
    #: a no-op, which the store consults to decide whether a journal
    #: needs replay-on-open.
    durable = False

    def __init__(self) -> None:
        self._tls = threading.local()

    def _entries(self) -> dict[int, list[JournalRecord]]:
        by_shard = getattr(self._tls, "by_shard", None)
        if by_shard is None:
            by_shard = self._tls.by_shard = {}
        return by_shard

    def log(self, record: JournalRecord) -> None:
        """Queue ``record`` on the calling thread's pending list."""
        self._entries().setdefault(record.shard, []).append(record)

    def seal(self, shard: int) -> None:
        """No durability barrier to take for an in-memory journal."""
        return None

    def commit(self, shard: int) -> None:
        """Discard the calling thread's pending records for ``shard``."""
        self._entries().pop(shard, None)

    def pending(self, shard: int) -> list[JournalRecord]:
        """Snapshot the calling thread's uncommitted records."""
        return list(self._entries().get(shard, ()))

    def drop_pending(self, shard: int, record: JournalRecord) -> None:
        """Remove one replayed record from the pending list (idempotent)."""
        entries = self._entries().get(shard)
        if entries is not None:
            try:
                entries.remove(record)
            except ValueError:
                pass  # already dropped by an earlier replay: idempotent

    def recover(
        self,
        writer: Callable[[JournalRecord], None],
        shard: int | None = None,
    ) -> int:
        """Nothing survives a restart; present for interface symmetry."""
        return 0

    def close(self) -> None:
        """Nothing to release for an in-memory journal."""
        return None


class IntentJournal:
    """Crash-consistent shared on-disk intent journal.

    Args:
        path: the journal file (created empty if absent). Opening scans
            the existing contents: fully-checksummed transactions whose
            commit marker is missing become *recoverable* and are
            replayed by :meth:`recover`; a torn tail (short or
            checksum-failing final records) is discarded — journal-
            before-data ordering guarantees no data write of that
            transaction ever started.
        group_commit: fsync the file once per this many commit markers
            instead of per commit. Lost markers are harmless (replay is
            idempotent), so the group size only bounds redundant replay
            work after a crash, not correctness.
        checkpoint_records: compact the file once this many records have
            been appended since the last truncation/compaction, *even
            while transactions are open*. The quiescent checkpoint in
            :meth:`commit` only fires when no transaction is in flight —
            under sustained concurrent load that moment never comes and
            the file grows without bound. Compaction atomically rewrites
            the file to just its live (sealed-but-uncommitted +
            unrecovered) transactions, preserving their txn ids so later
            commit markers still match. 0 disables the threshold.

    Thread safety: ``log``/``seal``/``commit`` may be called from many
    threads (one in-flight transaction per ``(thread, shard)``); all
    file appends happen under one internal lock, so records are never
    interleaved mid-record.
    """

    durable = True

    def __init__(
        self,
        path: str | Path,
        group_commit: int = 8,
        checkpoint_records: int = 1024,
    ) -> None:
        if group_commit < 1:
            raise ValueError("group_commit must be >= 1")
        if checkpoint_records < 0:
            raise ValueError("checkpoint_records must be >= 0")
        self.path = Path(path)
        self.group_commit = group_commit
        self.checkpoint_records = checkpoint_records
        #: Threshold-triggered compactions performed (diagnostics).
        self.compactions = 0
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._next_txn = 1
        self._unsynced_commits = 0
        self._records_since_checkpoint = 0
        #: Sealed-but-uncommitted transactions by id, shared across
        #: threads so `pending_records()` can audit the whole journal.
        self._open_txns: dict[int, list[JournalRecord]] = {}
        self._txn_of_thread: dict[tuple[int, int], int] = {}
        #: Transactions found uncommitted on open, awaiting `recover`.
        self._recoverable: dict[int, list[JournalRecord]] = {}
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if not self.path.exists():
            self.path.touch()
        self._scan()
        self._file = open(self.path, "ab", buffering=0)

    # ------------------------------------------------------------------
    # on-disk format
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(kind: int, txn: int, record: JournalRecord) -> bytes:
        payload = record.payload if kind == _KIND_INTENT else b""
        data, parity = record.meter
        head = _HEADER.pack(
            _MAGIC, kind, record.shard, record.disk, txn, record.offset,
            len(payload), data, parity, crc32(payload), 0,
        )
        # Header CRC covers everything before the CRC field itself.
        head = head[:-4] + struct.pack("<I", crc32(head[:-4]))
        return head + payload

    @staticmethod
    def _decode(buf: bytes, cursor: int) -> tuple[int, int, JournalRecord] | None:
        """Parse one record at ``cursor``; None = clean torn tail."""
        head_end = cursor + _HEADER.size
        if head_end > len(buf):
            return None if cursor == len(buf) else _torn(cursor)
        head = buf[cursor:head_end]
        (magic, kind, shard, disk, txn, offset, length, data, parity,
         payload_crc, head_crc) = _HEADER.unpack(head)
        if magic != _MAGIC or crc32(head[:-4]) != head_crc:
            return _torn(cursor)
        payload_end = head_end + length
        if payload_end > len(buf):
            return _torn(cursor)
        payload = buf[head_end:payload_end]
        if crc32(payload) != payload_crc:
            return _torn(cursor)
        record = JournalRecord(
            shard=shard, disk=disk, offset=offset, payload=payload,
            meter=(data, parity),
        )
        return kind, txn, record

    def _scan(self) -> None:
        """Parse the file, partition transactions committed/uncommitted."""
        buf = self.path.read_bytes()
        cursor = 0
        intents: dict[int, list[JournalRecord]] = {}
        committed: set[int] = set()
        top_txn = 0
        records_seen = 0
        while cursor < len(buf):
            parsed = self._decode(buf, cursor)
            if parsed is None:
                break
            kind, txn, record = parsed
            top_txn = max(top_txn, txn)
            records_seen += 1
            if kind == _KIND_COMMIT:
                committed.add(txn)
                intents.pop(txn, None)
            else:
                intents.setdefault(txn, []).append(record)
            cursor += _HEADER.size + len(record.payload)
        self._records_since_checkpoint = records_seen
        if cursor < len(buf):
            logger.warning(
                "journal %s: discarding torn tail at byte %d of %d",
                self.path, cursor, len(buf),
            )
        self._recoverable = intents
        self._next_txn = top_txn + 1
        if intents:
            logger.info(
                "journal %s: %d uncommitted transaction(s) await recovery",
                self.path, len(intents),
            )

    # ------------------------------------------------------------------
    # low-level file ops (override points for crash-injection tests)
    # ------------------------------------------------------------------
    def _append(self, data: bytes) -> None:
        self._file.write(data)

    def _sync(self) -> None:
        os.fsync(self._file.fileno())

    # ------------------------------------------------------------------
    # WriteJournal protocol
    # ------------------------------------------------------------------
    def _open_records(self, shard: int) -> list[JournalRecord]:
        by_shard = getattr(self._tls, "by_shard", None)
        if by_shard is None:
            by_shard = self._tls.by_shard = {}
        return by_shard.setdefault(shard, [])

    def log(self, record: JournalRecord) -> None:
        """Queue an intent on the calling thread's open transaction."""
        self._open_records(record.shard).append(record)

    def seal(self, shard: int) -> None:
        """Append + fsync the open transaction's intents (the barrier)."""
        records = self._open_records(shard)
        if not records:
            return
        key = (threading.get_ident(), shard)
        with self._lock:
            txn = self._next_txn
            self._next_txn += 1
            blob = b"".join(
                self._encode(_KIND_INTENT, txn, record) for record in records
            )
            self._append(blob)
            self._sync()
            self._open_txns[txn] = list(records)
            self._txn_of_thread[key] = txn
            self._records_since_checkpoint += len(records)
            self._maybe_compact_locked()

    def commit(self, shard: int) -> None:
        """Append the commit marker; fsync once per ``group_commit``."""
        records = self._open_records(shard)
        records.clear()
        key = (threading.get_ident(), shard)
        with self._lock:
            txn = self._txn_of_thread.pop(key, None)
            if txn is None:
                return  # nothing sealed (journal-off path): no-op
            self._open_txns.pop(txn, None)
            marker = JournalRecord(shard=shard, disk=0, offset=0, payload=b"")
            self._append(self._encode(_KIND_COMMIT, txn, marker))
            self._unsynced_commits += 1
            if self._unsynced_commits >= self.group_commit:
                self._sync()
                self._unsynced_commits = 0
            self._records_since_checkpoint += 1
            if not self._open_txns and not self._recoverable:
                self._checkpoint_locked()
            else:
                self._maybe_compact_locked()

    def pending(self, shard: int) -> list[JournalRecord]:
        """Snapshot the calling thread's not-yet-committed intents."""
        return list(self._open_records(shard))

    def drop_pending(self, shard: int, record: JournalRecord) -> None:
        """Remove one replayed record from the open list (idempotent)."""
        entries = self._open_records(shard)
        try:
            entries.remove(record)
        except ValueError:
            pass  # already dropped: replay retried after partial progress

    # ------------------------------------------------------------------
    # recovery / audit
    # ------------------------------------------------------------------
    def recover(
        self,
        writer: Callable[[JournalRecord], None],
        shard: int | None = None,
    ) -> int:
        """Roll forward uncommitted transactions found at open.

        ``writer`` receives each :class:`JournalRecord` and must persist
        its payload at (disk, offset) of the record's shard. With
        ``shard`` given only that shard's transactions replay (a volume
        recovers shard by shard as it opens each store); transactions
        are replayed in txn order. Returns span writes replayed. Each
        recovered transaction gets a commit marker, so a second
        ``recover`` — or a crash mid-recovery followed by another open —
        replays only what is still unmarked (idempotent end to end).
        """
        replayed = 0
        with self._lock:
            todo = sorted(
                txn for txn, records in self._recoverable.items()
                if shard is None or any(r.shard == shard for r in records)
            )
        for txn in todo:
            records = self._recoverable.get(txn, ())
            for record in records:
                if shard is None or record.shard == shard:
                    writer(record)
                    replayed += 1
            with self._lock:
                remaining = [
                    r for r in self._recoverable.get(txn, ())
                    if shard is not None and r.shard != shard
                ]
                if remaining:
                    self._recoverable[txn] = remaining
                    continue
                self._recoverable.pop(txn, None)
                marker = JournalRecord(
                    shard=shard if shard is not None else 0,
                    disk=0, offset=0, payload=b"",
                )
                self._append(self._encode(_KIND_COMMIT, txn, marker))
                self._sync()
        if replayed:
            logger.info(
                "journal %s: recovered %d span write(s)%s",
                self.path, replayed,
                f" for shard {shard}" if shard is not None else "",
            )
        return replayed

    def pending_records(self) -> list[JournalRecord]:
        """Every record not yet retired: sealed-but-uncommitted
        transactions of live threads plus unrecovered transactions from
        a previous process. The close-flush audit asserts this is empty
        after an orderly shutdown."""
        with self._lock:
            records = [
                record
                for txn in sorted(self._open_txns)
                for record in self._open_txns[txn]
            ]
            records.extend(
                record
                for txn in sorted(self._recoverable)
                for record in self._recoverable[txn]
            )
        return records

    def iter_records(self) -> Iterator[tuple[int, int, JournalRecord]]:
        """Parse the on-disk file: yields ``(kind, txn, record)``
        (diagnostics and tests; the torn tail is silently clipped)."""
        buf = self.path.read_bytes()
        cursor = 0
        while cursor < len(buf):
            parsed = self._decode(buf, cursor)
            if parsed is None:
                return
            yield parsed
            cursor += _HEADER.size + len(parsed[2].payload)

    # ------------------------------------------------------------------
    # checkpoint / lifecycle
    # ------------------------------------------------------------------
    def _checkpoint_locked(self) -> None:
        """Truncate the file: every logged transaction is retired."""
        self._file.truncate(0)
        self._file.seek(0)
        self._sync()
        self._unsynced_commits = 0
        self._records_since_checkpoint = 0

    def _maybe_compact_locked(self) -> None:
        """Compact once the append count crosses ``checkpoint_records``."""
        if (
            self.checkpoint_records
            and self._records_since_checkpoint >= self.checkpoint_records
        ):
            self._compact_locked()

    def _compact_locked(self) -> None:
        """Rewrite the file to just its live transactions, atomically.

        The sustained-load companion of :meth:`_checkpoint_locked`:
        retired transactions (intents plus commit markers) dominate the
        file under steady traffic, and with some transaction always in
        flight the quiescent truncation never fires. Live records —
        sealed-but-uncommitted plus unrecovered — are re-encoded under
        their *original* txn ids into a temp file which atomically
        replaces the journal, so a commit marker appended afterwards
        still matches its intents and a crash at any point leaves either
        the complete old file or the complete new one (both recover
        identically: the live set is the same).
        """
        live: list[bytes] = []
        count = 0
        for source in (self._open_txns, self._recoverable):
            for txn in sorted(source):
                for record in source[txn]:
                    live.append(self._encode(_KIND_INTENT, txn, record))
                    count += 1
        tmp = self.path.with_name(self.path.name + ".compact")
        with open(tmp, "wb") as handle:
            handle.write(b"".join(live))
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)
        self._file.close()
        self._file = open(self.path, "ab", buffering=0)
        self._sync()
        self._unsynced_commits = 0
        self._records_since_checkpoint = count
        self.compactions += 1
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "journal %s: compacted to %d live record(s)",
                self.path, count,
            )

    def checkpoint(self) -> bool:
        """Truncate the journal if nothing is pending; returns success."""
        with self._lock:
            if self._open_txns or self._recoverable:
                return False
            self._checkpoint_locked()
            return True

    def close(self) -> None:
        """Flush commit markers and close the file handle."""
        with self._lock:
            if self._file.closed:
                return
            if self._unsynced_commits:
                self._sync()
                self._unsynced_commits = 0
            if not self._open_txns and not self._recoverable:
                self._checkpoint_locked()
            self._file.close()

    def __enter__(self) -> "IntentJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _torn(cursor: int) -> None:
    """A checksum failure is treated as the torn tail: journal-before-
    data ordering means nothing after it ever mutated the array."""
    return None
