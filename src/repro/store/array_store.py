"""A persistent erasure-coded chunk store over per-disk backing files.

Layout: disk ``d`` is one file of ``stripes * rows`` chunks; element
``(row, col)`` of stripe ``s`` lives at chunk offset ``s * rows + row`` of
disk ``col``'s file — the same mapping the simulator's RAID controller
uses. The public interface is a logical chunk device:

* :meth:`ArrayStore.write_chunks` / :meth:`read_chunks` — logical I/O
  with parity maintenance;
* :meth:`fail_disk` / :meth:`rebuild` — take a disk offline (its file is
  zeroed, like a replaced drive) and reconstruct it from survivors;
* :meth:`scrub` — verify every stripe's parity chains.

Write path (the paper's headline property, Sec. III / Table 2): a small
write takes the **delta read-modify-write fast path** — read the old data
chunk and the parity chunks that depend on it (``ArrayCode.
parity_dependents``, derived from the generator matrix), XOR the data
delta through each, write back. On TIP that is exactly 1 data + 3 parity
chunks read and written, the provable optimum; chained codes (STAR,
Triple-Star) touch more. Runs for which RMW would cost more element I/Os
than the naive path — and all degraded writes — fall back to the
**full-stripe path** (load, re-encode, store), i.e. reconstruct-write at
stripe granularity. Selection reuses the RMW cost model of
``repro.analysis.write_path``.

Every operation is metered: :attr:`ArrayStore.io` accumulates chunk
reads/writes split by data/parity for the store's lifetime, and
:attr:`ArrayStore.last_io` holds the same counters for the most recent
public operation — this is how tests and the write-path ablation prove
the per-write I/O footprint rather than assume it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import BinaryIO

import numpy as np

from repro.analysis.write_path import full_stripe_cost, rmw_cost
from repro.codes.base import ArrayCode, Cell, Decoder

__all__ = ["ArrayStore", "DiskFailedError", "IoCounters", "WRITE_MODES"]

#: Valid ``write_mode`` arguments: ``auto`` picks per run via the cost
#: model, ``delta``/``stripe`` force one path (degraded writes always use
#: the stripe path regardless).
WRITE_MODES = ("auto", "delta", "stripe")


class DiskFailedError(RuntimeError):
    """Raised when an operation needs a disk that is marked failed."""


@dataclass
class IoCounters:
    """Chunk-granularity I/O accounting, split by element role.

    Counts chunks actually transferred to/from backing files. EMPTY
    (structural-zero) elements are not counted: they carry no information
    and no real layout would allocate them.
    """

    data_chunks_read: int = 0
    parity_chunks_read: int = 0
    data_chunks_written: int = 0
    parity_chunks_written: int = 0

    @property
    def chunks_read(self) -> int:
        """Total chunks read (data + parity)."""
        return self.data_chunks_read + self.parity_chunks_read

    @property
    def chunks_written(self) -> int:
        """Total chunks written (data + parity)."""
        return self.data_chunks_written + self.parity_chunks_written

    @property
    def total_chunks(self) -> int:
        """Total chunk I/Os (reads + writes)."""
        return self.chunks_read + self.chunks_written

    def reset(self) -> None:
        """Zero all counters in place."""
        self.data_chunks_read = 0
        self.parity_chunks_read = 0
        self.data_chunks_written = 0
        self.parity_chunks_written = 0

    def snapshot(self) -> "IoCounters":
        """An independent copy of the current counts."""
        return replace(self)

    def __sub__(self, other: "IoCounters") -> "IoCounters":
        return IoCounters(
            self.data_chunks_read - other.data_chunks_read,
            self.parity_chunks_read - other.parity_chunks_read,
            self.data_chunks_written - other.data_chunks_written,
            self.parity_chunks_written - other.parity_chunks_written,
        )


class ArrayStore:
    """An erasure-coded chunk store persisted as one file per disk.

    Args:
        code: the array code protecting the store.
        directory: where the per-disk files live (created if missing).
        stripes: stripe count; capacity = ``stripes * code.num_data``
            chunks.
        chunk_bytes: chunk (element) size in bytes.
        write_mode: ``"auto"`` (default) picks delta RMW vs full-stripe
            per run by element-I/O cost; ``"delta"`` / ``"stripe"`` force
            one path (delta still falls back while degraded).
        batch_workers: worker processes for bulk decode during rebuild
            (1 = in-process). Fan-out splits the batched stripe range
            over shared-memory buffers (:mod:`repro.codec.parallel`);
            results are byte-identical for any worker count.
        rebuild_batch: stripes read, bulk-decoded and written back per
            rebuild round. Batching turns per-stripe reads into one
            contiguous span read per surviving disk and lets the
            compiled recovery plan run over wide packets.

    Reopening a directory whose backing files don't match the requested
    geometry raises ``ValueError`` rather than destroying the contents.
    Backing files are kept open (unbuffered) for the store's lifetime;
    call :meth:`close` or use the store as a context manager.
    """

    def __init__(
        self,
        code: ArrayCode,
        directory: str | Path,
        stripes: int = 16,
        chunk_bytes: int = 4096,
        write_mode: str = "auto",
        batch_workers: int = 1,
        rebuild_batch: int = 32,
    ) -> None:
        if stripes <= 0 or chunk_bytes <= 0:
            raise ValueError("stripes and chunk_bytes must be positive")
        if write_mode not in WRITE_MODES:
            raise ValueError(
                f"write_mode must be one of {WRITE_MODES}, got {write_mode!r}"
            )
        if batch_workers < 1:
            raise ValueError("batch_workers must be >= 1")
        if rebuild_batch < 1:
            raise ValueError("rebuild_batch must be >= 1")
        self.code = code
        self.directory = Path(directory)
        self.stripes = stripes
        self.chunk_bytes = chunk_bytes
        self.write_mode = write_mode
        self.batch_workers = batch_workers
        self.rebuild_batch = rebuild_batch
        self.failed: set[int] = set()
        self.io = IoCounters()
        self.last_io = IoCounters()
        #: Stripe-runs served by the delta fast path / full-stripe path.
        self.fast_path_writes = 0
        self.slow_path_writes = 0
        self.directory.mkdir(parents=True, exist_ok=True)
        self._disk_bytes = stripes * code.rows * chunk_bytes
        self._handles: dict[int, BinaryIO] = {}
        self._decoder: Decoder | None = None
        self._plan_cache: dict[tuple[int, int], bool] = {}
        self._full_stripe_ios = full_stripe_cost(code).total_ios
        # Chunks a whole-column transfer moves, split (data, parity) —
        # EMPTY cells carry no information and are not metered.
        self._col_profile = [
            (
                sum(
                    1
                    for r in range(code.rows)
                    if code.kind(r, c) == Cell.DATA
                ),
                sum(
                    1
                    for r in range(code.rows)
                    if code.kind(r, c) == Cell.PARITY
                ),
            )
            for c in range(code.cols)
        ]
        for disk in range(code.cols):
            path = self._disk_path(disk)
            if path.exists():
                actual = path.stat().st_size
                if actual != self._disk_bytes:
                    raise ValueError(
                        f"{path} holds {actual} bytes but the requested "
                        f"geometry (stripes={stripes}, rows={code.rows}, "
                        f"chunk_bytes={chunk_bytes}) needs "
                        f"{self._disk_bytes}; refusing to wipe an existing "
                        f"store — reopen with the original geometry or use "
                        f"a fresh directory"
                    )
            else:
                path.write_bytes(b"\0" * self._disk_bytes)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close all backing-file handles (reopened lazily if reused)."""
        for handle in self._handles.values():
            handle.close()
        self._handles.clear()

    def __enter__(self) -> "ArrayStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def capacity_chunks(self) -> int:
        """Logical chunks the store can hold."""
        return self.stripes * self.code.num_data

    def _disk_path(self, disk: int) -> Path:
        return self.directory / f"disk{disk:03d}.img"

    def _handle(self, disk: int) -> BinaryIO:
        """The disk's persistent unbuffered file handle (opened once)."""
        handle = self._handles.get(disk)
        if handle is None or handle.closed:
            handle = self._disk_path(disk).open("r+b", buffering=0)
            self._handles[disk] = handle
        return handle

    def _read_span(self, disk: int, offset: int, length: int) -> bytes:
        handle = self._handle(disk)
        handle.seek(offset)
        parts = []
        remaining = length
        while remaining:
            piece = handle.read(remaining)
            if not piece:
                raise IOError(
                    f"short read on disk {disk} at offset {offset}"
                )
            parts.append(piece)
            remaining -= len(piece)
        return b"".join(parts) if len(parts) > 1 else parts[0]

    def _count(self, data: int, parity: int, *, wrote: bool) -> None:
        for counters in (self.io, self.last_io):
            if wrote:
                counters.data_chunks_written += data
                counters.parity_chunks_written += parity
            else:
                counters.data_chunks_read += data
                counters.parity_chunks_read += parity

    def _count_element(self, pos: tuple[int, int], *, wrote: bool) -> None:
        kind = self.code.kind(*pos)
        if kind == Cell.EMPTY:
            return
        is_parity = kind == Cell.PARITY
        self._count(int(not is_parity), int(is_parity), wrote=wrote)

    def _current_decoder(self) -> Decoder:
        """The decoder for the present failure set, reused across stripes
        and operations (the algebra is solved once per ``(code, failed)``)."""
        key = tuple(sorted(self.failed))
        if self._decoder is None or self._decoder.failed != key:
            self._decoder = self.code.decoder_for(key)
        return self._decoder

    # ------------------------------------------------------------------
    # element / stripe I/O
    # ------------------------------------------------------------------
    def _read_element(self, stripe: int, pos: tuple[int, int]) -> np.ndarray:
        row, col = pos
        if col in self.failed:
            raise DiskFailedError(f"disk {col} is failed")
        offset = (stripe * self.code.rows + row) * self.chunk_bytes
        data = self._read_span(col, offset, self.chunk_bytes)
        self._count_element(pos, wrote=False)
        return np.frombuffer(data, dtype=np.uint8).copy()

    def _write_element(
        self, stripe: int, pos: tuple[int, int], chunk: np.ndarray
    ) -> None:
        row, col = pos
        if col in self.failed:
            return  # writes to failed disks are dropped, as in a real array
        offset = (stripe * self.code.rows + row) * self.chunk_bytes
        handle = self._handle(col)
        handle.seek(offset)
        handle.write(chunk.tobytes())
        self._count_element(pos, wrote=True)

    def _load_stripe(self, stripe: int) -> np.ndarray:
        """Read a whole stripe (failed columns come back zeroed)."""
        return self._load_stripe_batch(stripe, 1)

    def _load_stripe_batch(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive stripes as one *wide* stripe.

        The result has shape ``(rows, cols, count * chunk_bytes)``:
        element ``(r, c)``'s packet is the concatenation of that
        element's chunks across the batch, stripe-major — so stripe
        ``start + i`` is the ``[:, :, i*chunk : (i+1)*chunk]`` slice and
        a single ``Decoder.decode_columns`` call over the wide stripe
        bulk-decodes the whole batch. Each surviving disk is read as one
        contiguous span (failed columns come back zeroed).
        """
        rows, cols, chunk = self.code.rows, self.code.cols, self.chunk_bytes
        wide = np.zeros((rows, cols, count * chunk), dtype=np.uint8)
        # Guaranteed view: ``wide`` is C-contiguous, so splitting its last
        # axis never copies. Axis 2 is the stripe index within the batch.
        by_stripe = wide.reshape(rows, cols, count, chunk)
        span = rows * chunk
        for col in range(cols):
            if col in self.failed:
                continue
            raw = self._read_span(col, start * span, count * span)
            per_stripe = np.frombuffer(raw, dtype=np.uint8).reshape(
                count, rows, chunk
            )
            by_stripe[:, col] = per_stripe.transpose(1, 0, 2)
            data, parity = self._col_profile[col]
            self._count(data * count, parity * count, wrote=False)
        return wide

    def _store_stripe(
        self,
        stripe: int,
        data: np.ndarray,
        writable: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        """Write a stripe back; ``writable`` overrides the failed-column
        skip for columns being rebuilt."""
        span = self.code.rows * self.chunk_bytes
        for col in range(self.code.cols):
            if col in self.failed and col not in writable:
                continue
            handle = self._handle(col)
            handle.seek(stripe * span)
            handle.write(data[:, col, :].tobytes())
            data_cells, parity_cells = self._col_profile[col]
            self._count(data_cells, parity_cells, wrote=True)

    # ------------------------------------------------------------------
    # logical chunk I/O
    # ------------------------------------------------------------------
    def write_chunks(self, start: int, chunks: np.ndarray) -> None:
        """Write consecutive logical chunks starting at index ``start``.

        Each per-stripe run goes through either the delta read-modify-
        write fast path (small runs, healthy array) or the full-stripe
        load/re-encode/store path (large runs, or while degraded — the
        stripe is reconstructed first so parity recomputation sees
        correct data).
        """
        chunks = np.asarray(chunks, dtype=np.uint8)
        if chunks.ndim != 2 or chunks.shape[1] != self.chunk_bytes:
            raise ValueError(
                f"chunks must be (k, {self.chunk_bytes}), got {chunks.shape}"
            )
        if start < 0 or start + chunks.shape[0] > self.capacity_chunks:
            raise ValueError("write beyond store capacity")
        self.last_io = IoCounters()
        per_stripe = self.code.num_data
        index = 0
        while index < chunks.shape[0]:
            logical = start + index
            stripe, within = divmod(logical, per_stripe)
            run = min(per_stripe - within, chunks.shape[0] - index)
            if self._use_delta(within, run):
                self._delta_write(stripe, within, chunks[index : index + run])
                self.fast_path_writes += 1
            else:
                self._full_stripe_write(
                    stripe, within, chunks[index : index + run]
                )
                self.slow_path_writes += 1
            index += run

    def _use_delta(self, within: int, run: int) -> bool:
        """Pick the write path for a run of ``run`` chunks at ``within``.

        Degraded arrays always reconstruct (a delta against unknown old
        data on a failed column is impossible); otherwise ``write_mode``
        forces a path or ``auto`` compares RMW element I/Os against the
        full-stripe baseline, caching the verdict per ``(within, run)``.
        """
        if self.failed:
            return False
        if self.write_mode != "auto":
            return self.write_mode == "delta"
        key = (within, run)
        verdict = self._plan_cache.get(key)
        if verdict is None:
            positions = [
                self.code.data_positions[within + offset]
                for offset in range(run)
            ]
            verdict = (
                rmw_cost(self.code, positions).total_ios
                < self._full_stripe_ios
            )
            self._plan_cache[key] = verdict
        return verdict

    def _delta_write(
        self, stripe: int, within: int, chunks: np.ndarray
    ) -> None:
        """Delta RMW: read old data + dependent parities only, XOR the
        data delta through each dependent chain, write back."""
        code = self.code
        parity_deltas: dict[tuple[int, int], np.ndarray] = {}
        for offset in range(chunks.shape[0]):
            pos = code.data_positions[within + offset]
            new = chunks[offset]
            old = self._read_element(stripe, pos)
            delta = np.bitwise_xor(old, new)
            self._write_element(stripe, pos, new)
            for parity in code.parity_dependents[pos]:
                acc = parity_deltas.get(parity)
                if acc is None:
                    # copy: the same delta buffer feeds several parities
                    parity_deltas[parity] = delta.copy()
                else:
                    np.bitwise_xor(acc, delta, out=acc)
        for parity in sorted(parity_deltas):
            old = self._read_element(stripe, parity)
            np.bitwise_xor(old, parity_deltas[parity], out=old)
            self._write_element(stripe, parity, old)

    def _full_stripe_write(
        self, stripe: int, within: int, chunks: np.ndarray
    ) -> None:
        grid = self._load_stripe(stripe)
        if self.failed:
            # Degraded write: reconstruct the stripe before updating
            # so parity recomputation sees correct data.
            self._current_decoder().decode_columns(grid)
        for offset in range(chunks.shape[0]):
            row, col = self.code.data_positions[within + offset]
            grid[row, col] = chunks[offset]
        self.code.encode(grid)
        self._store_stripe(stripe, grid)

    def read_chunks(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` logical chunks from ``start`` (degraded-safe)."""
        if count <= 0:
            raise ValueError("count must be positive")
        if start < 0 or start + count > self.capacity_chunks:
            raise ValueError("read beyond store capacity")
        self.last_io = IoCounters()
        out = np.zeros((count, self.chunk_bytes), dtype=np.uint8)
        per_stripe = self.code.num_data
        index = 0
        while index < count:
            logical = start + index
            stripe, within = divmod(logical, per_stripe)
            run = min(per_stripe - within, count - index)
            positions = [
                self.code.data_positions[within + offset]
                for offset in range(run)
            ]
            needs_decode = self.failed and any(
                col in self.failed for _, col in positions
            )
            if self.failed:
                grid = self._load_stripe(stripe)
                if needs_decode:
                    self._current_decoder().decode_columns(grid)
                for offset, (row, col) in enumerate(positions):
                    out[index + offset] = grid[row, col]
            else:
                for offset, pos in enumerate(positions):
                    out[index + offset] = self._read_element(stripe, pos)
            index += run
        return out

    # ------------------------------------------------------------------
    # failures, rebuild, scrubbing
    # ------------------------------------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Mark ``disk`` failed and wipe its backing file (drive swap)."""
        if not 0 <= disk < self.code.cols:
            raise ValueError(f"disk {disk} out of range")
        if len(self.failed | {disk}) > self.code.faults:
            raise DiskFailedError(
                f"failing disk {disk} would exceed the fault budget "
                f"({self.code.faults})"
            )
        self.failed.add(disk)
        handle = self._handle(disk)
        handle.seek(0)
        handle.write(b"\0" * self._disk_bytes)

    def rebuild(self) -> int:
        """Reconstruct every failed disk from survivors; returns stripes
        rebuilt. The store is fully healthy afterwards.

        Batched pipeline: each round reads ``rebuild_batch`` stripes as
        one wide stripe (one contiguous span read per surviving disk),
        bulk-decodes it with the compiled recovery plan — fanned out over
        ``batch_workers`` processes when configured — and writes the
        stripes back.

        Exception-safe: ``failed`` stays marked until *every* stripe has
        been decoded and stored, so an error partway through (I/O,
        decode) leaves the store correctly degraded — reads keep
        reconstructing on the fly and a later :meth:`rebuild` can retry —
        instead of a "healthy" array whose rebuilt columns hold zeros.
        """
        if not self.failed:
            return 0
        self.last_io = IoCounters()
        failed = frozenset(self.failed)
        decoder = self._current_decoder()
        rows, cols, chunk = self.code.rows, self.code.cols, self.chunk_bytes
        batch = max(1, min(self.rebuild_batch, self.stripes))
        for start in range(0, self.stripes, batch):
            count = min(batch, self.stripes - start)
            wide = self._load_stripe_batch(start, count)
            decoder.decode_columns(wide, workers=self.batch_workers)
            by_stripe = wide.reshape(rows, cols, count, chunk)
            for i in range(count):
                self._store_stripe(
                    start + i, by_stripe[:, :, i, :], writable=failed
                )
        self.failed.clear()
        return self.stripes

    def scrub(self) -> list[int]:
        """Verify all stripes; returns the indices of corrupt stripes."""
        if self.failed:
            raise DiskFailedError("cannot scrub a degraded array")
        self.last_io = IoCounters()
        return [
            stripe
            for stripe in range(self.stripes)
            if not self.code.verify_stripe(self._load_stripe(stripe))
        ]
