"""A persistent erasure-coded chunk store over per-disk backing files.

Layout: disk ``d`` is one file of ``stripes * rows`` chunks; element
``(row, col)`` of stripe ``s`` lives at chunk offset ``s * rows + row`` of
disk ``col``'s file — the same mapping the simulator's RAID controller
uses. The public interface is a logical chunk device:

* :meth:`ArrayStore.write_chunks` / :meth:`read_chunks` — logical I/O
  with parity maintenance;
* :meth:`fail_disk` / :meth:`rebuild` — take a disk offline (its file is
  zeroed, like a replaced drive) and reconstruct it from survivors;
* :meth:`scrub` — verify every stripe's parity chains.

Write path (the paper's headline property, Sec. III / Table 2): a small
write takes the **delta read-modify-write fast path** — read the old data
chunk and the parity chunks that depend on it (``ArrayCode.
parity_dependents``, derived from the generator matrix), XOR the data
delta through each, write back. On TIP that is exactly 1 data + 3 parity
chunks read and written, the provable optimum; chained codes (STAR,
Triple-Star) touch more. Runs for which RMW would cost more element I/Os
than the naive path — and all degraded writes — fall back to the
**full-stripe path** (load, re-encode, store), i.e. reconstruct-write at
stripe granularity. Selection reuses the RMW cost model of
``repro.analysis.write_path``.

Every operation is metered: :attr:`ArrayStore.io` accumulates chunk
reads/writes split by data/parity for the store's lifetime, and
:attr:`ArrayStore.last_io` holds the same counters for the most recent
public operation — this is how tests and the write-path ablation prove
the per-write I/O footprint rather than assume it.

With ``cache_stripes > 0`` a write-back stripe cache
(:mod:`repro.raid.cache`) sits in front of the delta path: healthy
logical I/O is absorbed, successive parity deltas per stripe are
XOR-coalesced, and parity is committed once per flush (eviction,
:meth:`ArrayStore.flush`, :meth:`ArrayStore.close`) with data strictly
before parity. The cache's :class:`CacheStats` report raw-vs-coalesced
chunk I/O; the store's own counters then meter the coalesced traffic.
"""

from __future__ import annotations

import logging
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Sequence

import numpy as np

from repro.codes.base import ArrayCode, Cell, Decoder
from repro.raid.mapping import ChunkRun
from repro.raid.planner import BatchItem, RequestPlanner, RunPlan
from repro.store.journal import JournalRecord, MemoryJournal, WriteJournal
from repro.store.metering import IoCounters, SyscallCounters

if TYPE_CHECKING:
    from repro.faults.inject import FaultPlan

__all__ = ["ArrayStore", "DiskFailedError", "IoCounters", "WRITE_MODES"]

logger = logging.getLogger(__name__)

#: Valid ``write_mode`` arguments: ``auto`` picks per run via the cost
#: model, ``delta``/``stripe`` force one path (degraded writes always use
#: the stripe path regardless).
WRITE_MODES = ("auto", "delta", "stripe")

#: ``write_mode`` → planner write strategy. The store executes plans; the
#: planner (shared with the DiskSim controller) owns path selection.
_MODE_TO_STRATEGY = {"auto": "delta", "delta": "delta-always", "stripe": "stripe"}

#: Scatter-gather availability (Linux/BSD yes, some platforms no). The
#: batched span path degrades to the single-call pread/joined-pwrite
#: fallbacks — still one syscall per span — when vectored I/O is absent.
_HAS_PREADV = hasattr(os, "preadv")
_HAS_PWRITEV = hasattr(os, "pwritev")


class DiskFailedError(RuntimeError):
    """Raised when an operation needs a disk that is marked failed."""


class ArrayStore:
    """An erasure-coded chunk store persisted as one file per disk.

    Args:
        code: the array code protecting the store.
        directory: where the per-disk files live (created if missing).
        stripes: stripe count; capacity = ``stripes * code.num_data``
            chunks.
        chunk_bytes: chunk (element) size in bytes.
        write_mode: ``"auto"`` (default) picks delta RMW vs full-stripe
            per run by element-I/O cost; ``"delta"`` / ``"stripe"`` force
            one path (delta still falls back while degraded).
        batch_workers: worker processes for bulk decode during rebuild
            (1 = in-process). Fan-out splits the batched stripe range
            over shared-memory buffers (:mod:`repro.codec.parallel`);
            results are byte-identical for any worker count.
        rebuild_batch: stripes read, bulk-decoded and written back per
            rebuild round. Batching turns per-stripe reads into one
            contiguous span read per surviving disk and lets the
            compiled recovery plan run over wide packets.
        cache_stripes: capacity of the write-back stripe cache
            (:class:`repro.raid.cache.StripeCache`) in stripes; 0
            (default) disables caching. With a cache, healthy logical
            I/O is absorbed and parity deltas from successive writes to
            one stripe are XOR-coalesced, committed on eviction /
            :meth:`flush` / :meth:`close` with data strictly before
            parity. While degraded the cache is drained and bypassed.
        fault_plan: a :class:`repro.faults.inject.FaultPlan` to inject
            at the span-I/O boundary (every backing-file read/write
            passes through a :class:`~repro.faults.inject.
            FaultyDiskBackend`); ``None`` (default) runs faultless.
            With a plan set, mutating writes additionally keep an
            in-memory journal so a write interrupted mid-flight by an
            injected fault can be rolled forward with
            :meth:`complete_interrupted_write`.
        journal: a :class:`~repro.store.journal.WriteJournal` to record
            write intents in. ``None`` (default) keeps the original
            behaviour: a private in-memory :class:`~repro.store.journal.
            MemoryJournal`, active only while a fault plan is attached.
            Passing a journal explicitly — typically a shared on-disk
            :class:`~repro.store.journal.IntentJournal` — journals
            *every* mutating run (journal-before-data), and if the
            journal holds unrecovered records for this store's
            ``shard_id`` from a previous process they are rolled
            forward during ``__init__`` before any I/O is served.
        shard_id: this store's id inside a shared journal (and inside a
            :class:`~repro.volume.VolumeManager`); 0 for standalone
            stores.
        span_bridge_chunks: gap-bridging distance (in chunks) for
            :meth:`execute_batch` span coalescing — two planned chunk
            I/Os on one disk separated by at most this many uncovered
            chunks merge into one span, trading extra bytes moved at
            memory speed for one syscall saved. 0 coalesces strictly
            adjacent chunks only. Logical :class:`IoCounters` are
            unaffected (bridged gaps are not metered).

    Reopening a directory whose backing files don't match the requested
    geometry raises ``ValueError`` rather than destroying the contents.
    Backing files are kept open (unbuffered) for the store's lifetime;
    call :meth:`close` or use the store as a context manager.
    """

    def __init__(
        self,
        code: ArrayCode,
        directory: str | Path,
        stripes: int = 16,
        chunk_bytes: int = 4096,
        write_mode: str = "auto",
        batch_workers: int = 1,
        rebuild_batch: int = 32,
        cache_stripes: int = 0,
        fault_plan: "FaultPlan | None" = None,
        journal: WriteJournal | None = None,
        shard_id: int = 0,
        span_bridge_chunks: int = 16,
    ) -> None:
        if stripes <= 0 or chunk_bytes <= 0:
            raise ValueError("stripes and chunk_bytes must be positive")
        if span_bridge_chunks < 0:
            raise ValueError("span_bridge_chunks must be >= 0")
        if write_mode not in WRITE_MODES:
            raise ValueError(
                f"write_mode must be one of {WRITE_MODES}, got {write_mode!r}"
            )
        if batch_workers < 1:
            raise ValueError("batch_workers must be >= 1")
        if rebuild_batch < 1:
            raise ValueError("rebuild_batch must be >= 1")
        if cache_stripes < 0:
            raise ValueError("cache_stripes must be >= 0")
        self.code = code
        self.directory = Path(directory)
        self.stripes = stripes
        self.chunk_bytes = chunk_bytes
        self.write_mode = write_mode
        self.batch_workers = batch_workers
        self.rebuild_batch = rebuild_batch
        self.failed: set[int] = set()
        self.io = IoCounters()
        self.last_io = IoCounters()
        #: Physical backing-file syscalls (orthogonal to the logical
        #: chunk counters above — see :class:`SyscallCounters`).
        self.syscalls = SyscallCounters()
        #: Max uncovered chunks :meth:`execute_batch` bridges when
        #: coalescing planned chunk I/Os into per-disk spans. A bridged
        #: gap trades a memory-speed copy for a saved syscall; gap bytes
        #: are pre-read in the same batch and written back unchanged.
        self.span_bridge_chunks = span_bridge_chunks
        #: Stripe-runs served by the delta fast path / full-stripe path.
        self.fast_path_writes = 0
        self.slow_path_writes = 0
        #: The shared RAID planning layer: address math + write-path
        #: selection, identical to the DiskSim controller's.
        self.planner = RequestPlanner(
            code, chunk_bytes, write_strategy=_MODE_TO_STRATEGY[write_mode]
        )
        self.cache = None
        if cache_stripes:
            # Deferred import: the cache layers on this module's counters.
            from repro.raid.cache import StripeCache

            self.cache = StripeCache(
                self, code, chunk_bytes, cache_stripes,
                raw_planner=self.planner,
            )
        self.directory.mkdir(parents=True, exist_ok=True)
        self._disk_bytes = self.planner.mapping.disk_bytes(stripes)
        self._handles: dict[int, BinaryIO] = {}
        self._decoder: Decoder | None = None
        # Thread-safety primitives. Span I/O itself is positional
        # (os.pread/os.pwrite — no shared file cursor); these locks cover
        # the remaining shared mutable state so concurrent callers under
        # the service layer's per-stripe discipline cannot corrupt
        # bookkeeping: handle open/close, counter increments, the decoder
        # memo, and the write-watcher registry.
        self._handles_lock = threading.Lock()
        self._meter_lock = threading.Lock()
        self._decoder_lock = threading.Lock()
        self._watchers_lock = threading.Lock()
        #: The write-intent journal. Default: a private in-memory
        #: journal, active only under a fault plan (it exists to roll an
        #: injected-fault-interrupted write forward; absolute span
        #: values make the replay idempotent). An explicitly passed
        #: journal — e.g. a volume's shared on-disk IntentJournal —
        #: journals every mutating run and is never closed by this
        #: store (its owner closes it once).
        self.shard_id = shard_id
        self._owns_journal = journal is None
        self._journal_always = journal is not None
        self.journal: WriteJournal = (
            journal if journal is not None else MemoryJournal()
        )
        #: Observers of foreground writes: each registered set collects
        #: the stripe indices mutated while it is watching (used by the
        #: incremental repair loop to re-rebuild stripes written during
        #: a rebuild tick).
        self._write_watchers: list[set[int]] = []
        self.fault_plan: "FaultPlan | None" = None
        self._backend = None
        if fault_plan is not None:
            self.set_fault_plan(fault_plan)
        # Chunks a whole-column transfer moves, split (data, parity) —
        # EMPTY cells carry no information and are not metered.
        self._col_profile = [
            (
                sum(
                    1
                    for r in range(code.rows)
                    if code.kind(r, c) == Cell.DATA
                ),
                sum(
                    1
                    for r in range(code.rows)
                    if code.kind(r, c) == Cell.PARITY
                ),
            )
            for c in range(code.cols)
        ]
        for disk in range(code.cols):
            path = self._disk_path(disk)
            if path.exists():
                actual = path.stat().st_size
                if actual != self._disk_bytes:
                    raise ValueError(
                        f"{path} holds {actual} bytes but the requested "
                        f"geometry (stripes={stripes}, rows={code.rows}, "
                        f"chunk_bytes={chunk_bytes}) needs "
                        f"{self._disk_bytes}; refusing to wipe an existing "
                        f"store — reopen with the original geometry or use "
                        f"a fresh directory"
                    )
            else:
                path.write_bytes(b"\0" * self._disk_bytes)
        recover = getattr(self.journal, "recover", None)
        if recover is not None and getattr(self.journal, "durable", False):
            # Replay-on-open: roll forward any write intents a previous
            # process sealed but never committed, before serving any
            # I/O. Recovery bypasses fault injection (it models the
            # controller's own recovery path, not foreground traffic)
            # and is idempotent — a crash mid-recovery just replays the
            # still-unmarked transactions on the next open.
            recover(self._recover_record, shard=self.shard_id)

    def _recover_record(self, record: JournalRecord) -> None:
        """Persist one recovered journal record (raw span write)."""
        self._raw_write_span(record.disk, record.offset, record.payload)
        self._count(*record.meter, wrote=True)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush the cache, then close all backing-file handles
        (reopened lazily if reused).

        The handle close runs even when the cache flush raises (the
        flush error still propagates): dirty write-back state must
        never silently pin open file handles.
        """
        try:
            if self.cache is not None:
                self.cache.flush()
        finally:
            with self._handles_lock:
                for handle in self._handles.values():
                    handle.close()
                self._handles.clear()

    def set_fault_plan(self, plan: "FaultPlan | None") -> None:
        """Attach (or with ``None`` detach) a fault-injection plan.

        All subsequent span I/O flows through a
        :class:`~repro.faults.inject.FaultyDiskBackend` consulting the
        plan; the raw backing files stay the source of truth.
        """
        self.fault_plan = plan
        if plan is None:
            self._backend = None
            return
        from repro.faults.inject import FaultyDiskBackend

        self._backend = FaultyDiskBackend(
            self._raw_read_span, self._raw_write_span, plan, self.chunk_bytes
        )

    def flush(self) -> int:
        """Write back every dirty cached stripe; returns stripes flushed
        (0 when uncached — the uncached store is always write-through)."""
        if self.cache is None:
            return 0
        return self.cache.flush()

    def __enter__(self) -> "ArrayStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    @property
    def capacity_chunks(self) -> int:
        """Logical chunks the store can hold."""
        return self.stripes * self.code.num_data

    @property
    def capacity_bytes(self) -> int:
        """Logical bytes the store can hold."""
        return self.capacity_chunks * self.chunk_bytes

    def _disk_path(self, disk: int) -> Path:
        return self.directory / f"disk{disk:03d}.img"

    def _handle(self, disk: int) -> BinaryIO:
        """The disk's persistent unbuffered file handle (opened once)."""
        with self._handles_lock:
            handle = self._handles.get(disk)
            if handle is None or handle.closed:
                handle = self._disk_path(disk).open("r+b", buffering=0)
                self._handles[disk] = handle
            return handle

    def _raw_read_span(self, disk: int, offset: int, length: int) -> bytes:
        # Positional read: no shared file cursor, so concurrent span I/Os
        # on one disk never interleave seek/read pairs.
        fd = self._handle(disk).fileno()
        parts = []
        remaining = length
        cursor = offset
        calls = 0
        while remaining:
            piece = os.pread(fd, remaining, cursor)
            calls += 1
            if not piece:
                raise IOError(
                    f"short read on disk {disk} at offset {offset}"
                )
            parts.append(piece)
            remaining -= len(piece)
            cursor += len(piece)
        with self._meter_lock:
            self.syscalls.reads += calls
        return b"".join(parts) if len(parts) > 1 else parts[0]

    def _raw_write_span(self, disk: int, offset: int, data: bytes) -> None:
        fd = self._handle(disk).fileno()
        view = memoryview(data)
        cursor = offset
        calls = 0
        while view:
            written = os.pwrite(fd, view, cursor)
            calls += 1
            view = view[written:]
            cursor += written
        with self._meter_lock:
            self.syscalls.writes += calls

    def _vector_read_span(
        self, disk: int, offset: int, length: int
    ) -> np.ndarray:
        """Read one span with a single ``preadv`` into a fresh buffer.

        ``preadv`` with one destination buffer is the zero-copy form of
        ``pread`` — the kernel fills the numpy buffer directly, skipping
        the intermediate ``bytes`` object. Platforms without ``preadv``
        fall back to :meth:`_raw_read_span` (still one syscall per span,
        plus one copy).
        """
        buf = np.empty(length, dtype=np.uint8)
        if not _HAS_PREADV:
            buf[:] = np.frombuffer(
                self._raw_read_span(disk, offset, length), dtype=np.uint8
            )
            return buf
        fd = self._handle(disk).fileno()
        view = memoryview(buf)
        cursor = offset
        calls = 0
        while view:
            got = os.preadv(fd, [view], cursor)
            calls += 1
            if not got:
                raise IOError(
                    f"short read on disk {disk} at offset {offset}"
                )
            view = view[got:]
            cursor += got
        with self._meter_lock:
            self.syscalls.vector_reads += calls
        return buf

    def _vector_write_span(self, disk: int, offset: int, data: np.ndarray) -> None:
        """Write one merged span with a single ``pwritev``.

        The batch path folds deltas *in place* inside the span's
        pre-read buffer, so write-back is always one contiguous slice
        of that buffer — a single-iovec gather straight from the numpy
        memory, no join copy. Platforms without ``pwritev`` fall back
        to :meth:`_raw_write_span` (one write, plus the ``tobytes``
        copy).
        """
        if not _HAS_PWRITEV:
            self._raw_write_span(disk, offset, data.tobytes())
            return
        fd = self._handle(disk).fileno()
        view = memoryview(data)
        cursor = offset
        calls = 0
        while view:
            written = os.pwritev(fd, [view], cursor)
            calls += 1
            view = view[written:]
            cursor += written
        with self._meter_lock:
            self.syscalls.vector_writes += calls

    def _read_span(self, disk: int, offset: int, length: int) -> bytes:
        if self._backend is not None:
            return self._backend.read(disk, offset, length)
        return self._raw_read_span(disk, offset, length)

    def _write_span(self, disk: int, offset: int, data: bytes) -> None:
        if self._backend is not None:
            self._backend.write(disk, offset, data)
        else:
            self._raw_write_span(disk, offset, data)

    def _reset_last_io(self) -> None:
        """Start a fresh ``last_io`` window for one public operation.

        ``last_io`` is inherently a *single-caller* diagnostic: under
        concurrent callers the windows of different operations overlap
        and the per-operation attribution is meaningless (the aggregate
        :attr:`io` stays exact — every increment happens under the meter
        lock). The service layer therefore reports per-request latency
        and aggregate counters instead of per-request ``last_io``.
        """
        with self._meter_lock:
            self.last_io = IoCounters()

    def _count(self, data: int, parity: int, *, wrote: bool) -> None:
        with self._meter_lock:
            for counters in (self.io, self.last_io):
                if wrote:
                    counters.data_chunks_written += data
                    counters.parity_chunks_written += parity
                else:
                    counters.data_chunks_read += data
                    counters.parity_chunks_read += parity

    def _count_element(self, pos: tuple[int, int], *, wrote: bool) -> None:
        kind = self.code.kind(*pos)
        if kind == Cell.EMPTY:
            return
        is_parity = kind == Cell.PARITY
        self._count(int(not is_parity), int(is_parity), wrote=wrote)

    def _current_decoder(self) -> Decoder:
        """The decoder for the present failure set, reused across stripes
        and operations (the algebra is solved once per ``(code, failed)``)."""
        key = tuple(sorted(self.failed))
        with self._decoder_lock:
            if self._decoder is None or self._decoder.failed != key:
                self._decoder = self.code.decoder_for(key)
            return self._decoder

    # ------------------------------------------------------------------
    # element / stripe I/O
    # ------------------------------------------------------------------
    def _read_element(self, stripe: int, pos: tuple[int, int]) -> np.ndarray:
        row, col = pos
        if col in self.failed:
            raise DiskFailedError(f"disk {col} is failed")
        offset = (stripe * self.code.rows + row) * self.chunk_bytes
        data = self._read_span(col, offset, self.chunk_bytes)
        self._count_element(pos, wrote=False)
        return np.frombuffer(data, dtype=np.uint8).copy()

    def _write_element(
        self, stripe: int, pos: tuple[int, int], chunk: np.ndarray
    ) -> None:
        row, col = pos
        if col in self.failed:
            return  # writes to failed disks are dropped, as in a real array
        offset = (stripe * self.code.rows + row) * self.chunk_bytes
        self._write_span(col, offset, chunk.tobytes())
        self._count_element(pos, wrote=True)
        # Element writes mutate surviving columns outside the planner
        # path (scrubber repairs, cache flushes): an in-flight rebuild
        # must re-reconstruct the stripe afterwards. Snapshot the
        # registry (C-level copy, atomic under the GIL) so concurrent
        # register/deregister can't disturb the iteration.
        for watcher in tuple(self._write_watchers):
            watcher.add(stripe)

    def read_element(self, stripe: int, pos: tuple[int, int]) -> np.ndarray:
        """Raw element read for the cache layer (no parity maintenance)."""
        return self._read_element(stripe, pos)

    def write_element(
        self, stripe: int, pos: tuple[int, int], chunk: np.ndarray
    ) -> None:
        """Raw element write for the cache layer (no parity maintenance).

        The caller owns stripe consistency: the write-back cache commits
        a stripe's data chunks and its coalesced parity updates together
        at flush time.
        """
        self._write_element(stripe, pos, chunk)

    def _load_stripe(self, stripe: int) -> np.ndarray:
        """Read a whole stripe (failed columns come back zeroed)."""
        return self._load_stripe_batch(stripe, 1)

    def _load_stripe_batch(
        self, start: int, count: int, shared: bool = False
    ) -> np.ndarray:
        """Read ``count`` consecutive stripes as one *wide* stripe.

        The result has shape ``(rows, cols, count * chunk_bytes)``:
        element ``(r, c)``'s packet is the concatenation of that
        element's chunks across the batch, stripe-major — so stripe
        ``start + i`` is the ``[:, :, i*chunk : (i+1)*chunk]`` slice and
        a single ``Decoder.decode_columns`` call over the wide stripe
        bulk-decodes the whole batch. Each surviving disk is read as one
        contiguous span (failed columns come back zeroed).

        With ``shared=True`` the grid is allocated from the fan-out
        pool's shared memory (:func:`repro.codec.parallel.shared_empty`),
        so a following multiprocess ``decode_columns`` passes workers
        segment offsets instead of gather-copying ~the whole batch; the
        rebuild path uses this when ``batch_workers > 1``. Shared grids
        are transient per batch — the next ``shared=True`` call may
        reuse or replace the backing segment.
        """
        rows, cols, chunk = self.code.rows, self.code.cols, self.chunk_bytes
        if shared:
            from repro.codec.parallel import shared_empty

            flat = shared_empty(
                (rows * cols, count * chunk), role="store-rebuild"
            )
            wide = flat.reshape(rows, cols, count * chunk)
            wide[...] = 0
        else:
            wide = np.zeros((rows, cols, count * chunk), dtype=np.uint8)
        # Guaranteed view: ``wide`` is C-contiguous, so splitting its last
        # axis never copies. Axis 2 is the stripe index within the batch.
        by_stripe = wide.reshape(rows, cols, count, chunk)
        span = rows * chunk
        for col in range(cols):
            if col in self.failed:
                continue
            raw = self._read_span(col, start * span, count * span)
            per_stripe = np.frombuffer(raw, dtype=np.uint8).reshape(
                count, rows, chunk
            )
            by_stripe[:, col] = per_stripe.transpose(1, 0, 2)
            data, parity = self._col_profile[col]
            self._count(data * count, parity * count, wrote=False)
        return wide

    def _store_stripe(
        self,
        stripe: int,
        data: np.ndarray,
        writable: frozenset[int] | set[int] = frozenset(),
    ) -> None:
        """Write a stripe back; ``writable`` overrides the failed-column
        skip for columns being rebuilt."""
        span = self.code.rows * self.chunk_bytes
        for col in range(self.code.cols):
            if col in self.failed and col not in writable:
                continue
            self._write_span(col, stripe * span, data[:, col, :].tobytes())
            data_cells, parity_cells = self._col_profile[col]
            self._count(data_cells, parity_cells, wrote=True)

    # ------------------------------------------------------------------
    # write journal & write watchers (crash-consistency support)
    # ------------------------------------------------------------------
    @property
    def _journalling(self) -> bool:
        """True when mutating runs record their intents.

        Always on with an explicit (shared / on-disk) journal; with the
        default private in-memory journal, only while a fault plan is
        attached (nothing else can interrupt a write mid-flight).
        """
        return self._journal_always or self.fault_plan is not None

    def _journal_entry(
        self, stripe: int, pos: tuple[int, int], chunk: np.ndarray
    ) -> None:
        """Record one pending element write (no-op while not journaling)."""
        if not self._journalling:
            return
        row, col = pos
        kind = self.code.kind(row, col)
        meter = (int(kind == Cell.DATA), int(kind == Cell.PARITY))
        offset = (stripe * self.code.rows + row) * self.chunk_bytes
        self.journal.log(
            JournalRecord(
                shard=self.shard_id, disk=col, offset=offset,
                payload=chunk.tobytes(), meter=meter,
            )
        )

    def _seal_journal(self) -> None:
        """Durability barrier: journal-before-data. Must return before
        the run's first span write mutates the array."""
        if self._journalling:
            self.journal.seal(self.shard_id)

    def _commit_journal(self) -> None:
        """Retire the run's transaction: every intended write landed."""
        if self._journalling:
            self.journal.commit(self.shard_id)

    def complete_interrupted_write(self) -> int:
        """Roll the journal of an interrupted write forward; returns the
        span writes replayed.

        A fault surfacing mid-write (a disk fail-stopping between the
        data and parity writes of a delta run, say) leaves the stripe's
        parity chains inconsistent — the classic write hole. The journal
        holds every span the interrupted operation intended to write, as
        *absolute* values, so replaying it (skipping disks that have
        since failed) is idempotent and restores consistency no matter
        where the original write stopped. Call after handling the fault
        (replacing / failing the disk); a clean journal returns 0.

        Idempotent under repetition *and* interruption: each record is
        dropped from the pending set only once its replay write
        returned, so a second fault mid-replay loses nothing — the next
        call replays exactly the remainder — and once the journal is
        committed further calls are no-ops. The same discipline makes it
        safe for the on-disk journal to observe the identical
        interrupted write again at reopen: replay-on-open rewrites the
        same absolute spans.
        """
        return self._roll_journal_forward(skip=self.failed)

    def quarantine_interrupted_write(self, skip_disk: int | None) -> int:
        """Roll the calling thread's interrupted write forward *before*
        its stripe locks are released; returns the span writes replayed.

        The journal replays absolute span values, so the roll-forward
        must happen before any later write to the same stripe can land —
        otherwise the stale absolutes would silently erase that write's
        parity deltas (and the eventual rebuild would then "solve" the
        corrupted parity into a wrong data chunk with clean syndromes).
        The service's fault path calls this from the faulting worker
        while it still holds the shared array lock and its stripe locks,
        which is exactly that before-anyone-else window. ``skip_disk``
        is the disk the in-flight fault names: it is not formally failed
        yet, but writing to it would just re-raise. Its record is
        dropped unwritten — identical to what
        :meth:`complete_interrupted_write` does once the disk is marked
        failed — because its content already lives in the replayed
        parity.
        """
        skip = set(self.failed)
        if skip_disk is not None:
            skip.add(skip_disk)
        return self._roll_journal_forward(skip=skip)

    def _roll_journal_forward(self, skip: "set[int] | frozenset[int]") -> int:
        replayed = 0
        for record in self.journal.pending(self.shard_id):
            if record.disk not in skip:
                self._write_span(record.disk, record.offset, record.payload)
                self._count(*record.meter, wrote=True)
                replayed += 1
            self.journal.drop_pending(self.shard_id, record)
        self.journal.commit(self.shard_id)
        if replayed and logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "store: rolled forward %d journaled span writes", replayed
            )
        return replayed

    def watch_writes(self) -> set[int]:
        """Register and return a live set that collects the stripe index
        of every foreground write executed while watching."""
        watcher: set[int] = set()
        with self._watchers_lock:
            self._write_watchers.append(watcher)
        return watcher

    def unwatch_writes(self, watcher: set[int]) -> None:
        """Deregister a set returned by :meth:`watch_writes`."""
        with self._watchers_lock:
            self._write_watchers.remove(watcher)

    # ------------------------------------------------------------------
    # logical byte / chunk I/O
    # ------------------------------------------------------------------
    def write_chunks(self, start: int, chunks: np.ndarray) -> None:
        """Write consecutive logical chunks starting at index ``start``.

        Each per-stripe run executes the plan the shared RAID planner
        produces: the delta read-modify-write fast path (small runs,
        healthy array) or the full-stripe load/re-encode/store path
        (large runs, or while degraded — the stripe is reconstructed
        first so parity recomputation sees correct data).
        """
        chunks = np.asarray(chunks, dtype=np.uint8)
        if chunks.ndim != 2 or chunks.shape[1] != self.chunk_bytes:
            raise ValueError(
                f"chunks must be (k, {self.chunk_bytes}), got {chunks.shape}"
            )
        if start < 0 or start + chunks.shape[0] > self.capacity_chunks:
            raise ValueError("write beyond store capacity")
        self._reset_last_io()
        self._route_write(
            start * self.chunk_bytes, np.ascontiguousarray(chunks).reshape(-1)
        )

    def write_bytes(self, offset: int, data: bytes | np.ndarray) -> None:
        """Write ``data`` at byte ``offset``; any alignment is accepted.

        Unaligned heads/tails splice into the old chunk contents the
        write path reads anyway (the delta path pre-reads old data, the
        stripe path loads the stripe), so partial-chunk RMW costs no
        extra chunk I/Os over an aligned write of the same span.
        """
        buf = (
            np.ascontiguousarray(data, dtype=np.uint8).reshape(-1)
            if isinstance(data, np.ndarray)
            else np.frombuffer(bytes(data), dtype=np.uint8)
        )
        if buf.size == 0:
            raise ValueError("cannot write zero bytes")
        if offset < 0 or offset + buf.size > self.capacity_bytes:
            raise ValueError("write beyond store capacity")
        self._reset_last_io()
        self._route_write(offset, buf)

    def _route_write(self, offset: int, buf: np.ndarray) -> None:
        """Send a validated write through the cache or the direct path.

        Degraded arrays disengage the cache: any write-back state is
        drained (surviving parity still absorbs the coalesced deltas —
        correct degraded-write semantics) and dropped so no stale chunk
        can be served after the array changes underneath the cache.
        """
        if self.cache is not None:
            if self.failed:
                self.cache.drop()
            else:
                self.cache.write(offset, buf)
                return
        self._execute_write(offset, buf)

    def _execute_write(self, offset: int, buf: np.ndarray) -> None:
        failed_key = tuple(sorted(self.failed))
        cursor = 0
        for run in self.planner.mapping.byte_runs(offset, buf.size):
            payload = buf[cursor : cursor + run.nbytes]
            plan = self.planner.plan_write_run(
                run.start,
                run.length,
                failed_key,
                partial=run.is_partial(self.chunk_bytes),
            )
            if plan.path == "delta":
                self._delta_write_run(run, payload)
                self.fast_path_writes += 1
            else:
                self._stripe_write_run(run, payload, plan)
                self.slow_path_writes += 1
            for watcher in tuple(self._write_watchers):
                watcher.add(run.stripe)
            cursor += run.nbytes

    def _splice(
        self, run: ChunkRun, index: int, cursor: int, payload: np.ndarray,
        old: np.ndarray | None,
    ) -> tuple[np.ndarray, int]:
        """New contents of the ``index``-th covered chunk of ``run``.

        Full chunks come straight from the payload; a partial head/tail
        splices the payload fragment onto ``old`` (the pre-read chunk).
        Returns ``(new_chunk, bytes_consumed)``.
        """
        chunk = self.chunk_bytes
        skip = run.skip if index == 0 else 0
        take = min(chunk - skip, run.nbytes - cursor)
        if skip == 0 and take == chunk:
            return payload[cursor : cursor + chunk], chunk
        assert old is not None
        new = old.copy()
        new[skip : skip + take] = payload[cursor : cursor + take]
        return new, take

    def _delta_write_run(self, run: ChunkRun, payload: np.ndarray) -> None:
        """Delta RMW: read old data + dependent parities only, XOR the
        data delta through each dependent chain, write back.

        Two strict phases, matching the planner's read-then-write plan
        shape: *every* pre-read (old data, then old parity) completes
        before the first byte is mutated, so a read-side injected fault
        (latent sector, fail-stop) surfaces while the stripe is still
        untouched and the whole run can simply be retried after repair.
        The write phase is journaled first (see
        :meth:`complete_interrupted_write`), then lands data before
        parity.
        """
        code = self.code
        # -- read phase -------------------------------------------------
        parity_deltas: dict[tuple[int, int], np.ndarray] = {}
        new_data: list[tuple[tuple[int, int], np.ndarray]] = []
        cursor = 0
        for index in range(run.length):
            pos = code.data_positions[run.start + index]
            old = self._read_element(run.stripe, pos)
            new, consumed = self._splice(run, index, cursor, payload, old)
            cursor += consumed
            delta = np.bitwise_xor(old, new)
            new_data.append((pos, new))
            for parity in code.parity_dependents[pos]:
                acc = parity_deltas.get(parity)
                if acc is None:
                    # copy: the same delta buffer feeds several parities
                    parity_deltas[parity] = delta.copy()
                else:
                    np.bitwise_xor(acc, delta, out=acc)
        new_parity: list[tuple[tuple[int, int], np.ndarray]] = []
        for parity in sorted(parity_deltas):
            old = self._read_element(run.stripe, parity)
            np.bitwise_xor(old, parity_deltas[parity], out=old)
            new_parity.append((parity, old))
        # -- write phase ------------------------------------------------
        for pos, chunk in new_data + new_parity:
            self._journal_entry(run.stripe, pos, chunk)
        self._seal_journal()
        for pos, chunk in new_data:
            self._write_element(run.stripe, pos, chunk)
        for pos, chunk in new_parity:
            self._write_element(run.stripe, pos, chunk)
        self._commit_journal()

    def _stripe_write_run(
        self, run: ChunkRun, payload: np.ndarray, plan: RunPlan
    ) -> None:
        """Full-stripe path: (load, reconstruct,) splice, re-encode, store.

        An aligned whole-stripe overwrite (``plan.reads`` empty) builds
        the stripe fresh — every data element is replaced, so nothing
        old is needed and no pre-reads happen, matching the plan.
        """
        if plan.reads:
            grid = self._load_stripe(run.stripe)
            if plan.decode:
                # Degraded write: reconstruct the stripe before updating
                # so parity recomputation sees correct data.
                self._current_decoder().decode_columns(grid)
        else:
            grid = np.zeros(
                (self.code.rows, self.code.cols, self.chunk_bytes),
                dtype=np.uint8,
            )
        cursor = 0
        for index in range(run.length):
            row, col = self.code.data_positions[run.start + index]
            old = grid[row, col] if plan.reads else None
            new, consumed = self._splice(run, index, cursor, payload, old)
            cursor += consumed
            grid[row, col] = new
        self.code.encode(grid)
        if self._journalling:
            span = self.code.rows * self.chunk_bytes
            for col in range(self.code.cols):
                if col in self.failed:
                    continue
                self.journal.log(
                    JournalRecord(
                        shard=self.shard_id,
                        disk=col,
                        offset=run.stripe * span,
                        payload=grid[:, col, :].tobytes(),
                        meter=self._col_profile[col],
                    )
                )
        self._seal_journal()
        self._store_stripe(run.stripe, grid)
        self._commit_journal()

    def read_chunks(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` logical chunks from ``start`` (degraded-safe)."""
        if count <= 0:
            raise ValueError("count must be positive")
        if start < 0 or start + count > self.capacity_chunks:
            raise ValueError("read beyond store capacity")
        self._reset_last_io()
        flat = self._route_read(start * self.chunk_bytes,
                                count * self.chunk_bytes)
        return flat.reshape(count, self.chunk_bytes)

    def read_bytes(self, offset: int, length: int) -> np.ndarray:
        """Read ``length`` bytes at ``offset`` (degraded-safe).

        Chunk-granular underneath — partial head/tail chunks are read
        whole and sliced, exactly as the planner prices them.
        """
        if length <= 0:
            raise ValueError("length must be positive")
        if offset < 0 or offset + length > self.capacity_bytes:
            raise ValueError("read beyond store capacity")
        self._reset_last_io()
        return self._route_read(offset, length)

    def _route_read(self, offset: int, length: int) -> np.ndarray:
        """Send a validated read through the cache or the direct path."""
        if self.cache is not None:
            if self.failed:
                self.cache.drop()
            else:
                return self.cache.read(offset, length)
        return self._execute_read(offset, length)

    def _execute_read(self, offset: int, length: int) -> np.ndarray:
        out = np.empty(length, dtype=np.uint8)
        failed_key = tuple(sorted(self.failed))
        cursor = 0
        for run in self.planner.mapping.byte_runs(offset, length):
            plan = self.planner.plan_read_run(run.start, run.length, failed_key)
            cursor += self._read_run_into(run, plan, out, cursor)
        return out

    def _read_run_into(
        self, run: ChunkRun, plan: RunPlan, out: np.ndarray, base: int
    ) -> int:
        """Execute one read run into ``out`` at ``base``; returns bytes
        produced (``run.nbytes``)."""
        chunk = self.chunk_bytes
        grid = None
        if plan.decode:
            # The run touches a failed column: read every survivor of
            # the stripe and reconstruct on the fly.
            grid = self._load_stripe(run.stripe)
            self._current_decoder().decode_columns(grid)
        consumed = 0
        cursor = base
        for index in range(run.length):
            row, col = self.code.data_positions[run.start + index]
            if grid is not None:
                data = grid[row, col]
            else:
                data = self._read_element(run.stripe, (row, col))
            skip = run.skip if index == 0 else 0
            take = min(chunk - skip, run.nbytes - consumed)
            out[cursor : cursor + take] = data[skip : skip + take]
            cursor += take
            consumed += take
        return consumed

    # ------------------------------------------------------------------
    # batched execution (cross-request span I/O)
    # ------------------------------------------------------------------
    def execute_batch(
        self, ops: "Sequence[tuple[bool, int, object]]"
    ) -> list[np.ndarray | None]:
        """Execute a batch of requests with cross-request span I/O.

        ``ops`` is a sequence of ``(is_write, offset, payload)`` tuples:
        writes carry their payload (bytes or uint8 array), reads carry
        their byte length. Returns one entry per op, in order — ``None``
        for writes, the read data for reads.

        The batch is planned once (:meth:`RequestPlanner.plan_batch`):
        per-stripe run groups where every run takes the delta fast path
        execute through merged, gap-bridged per-disk spans — one
        ``preadv``/``pwritev`` per span instead of one ``pread``/
        ``pwrite`` per chunk per request — with all delta folding done
        in memory between the two span phases, one sealed journal
        transaction covering the whole batch, and chunk
        :class:`IoCounters` metered from the per-item run plans so the
        logical accounting is byte-for-byte what replaying the ops
        serially would meter (the paper's 1+3 contract; only
        :attr:`syscalls` sees the coalescing). Degraded arrays, stores
        with a fault plan attached, cached stores, stripe-path run
        groups and single-op batches fall back to the serial machinery,
        which is trivially equivalent.

        **Concurrency contract**: the caller must guarantee no other
        writer mutates the store for the duration of the call — not
        just the touched stripes. Gap bridging writes back chunks
        *between* planned writes (pre-read in the same batch, written
        back unchanged), and those gap chunks can belong to stripes the
        batch never locked; a concurrent writer could race them. The
        batching service dispatches batches from a single thread while
        holding the array lock shared (maintenance takes it exclusive),
        which satisfies the contract.
        """
        normalized: list[tuple[bool, int, np.ndarray | int]] = []
        for is_write, offset, payload in ops:
            if is_write:
                buf = (
                    np.ascontiguousarray(payload, dtype=np.uint8).reshape(-1)
                    if isinstance(payload, np.ndarray)
                    else np.frombuffer(bytes(payload), dtype=np.uint8)
                )
                if buf.size == 0:
                    raise ValueError("cannot write zero bytes")
                if offset < 0 or offset + buf.size > self.capacity_bytes:
                    raise ValueError("write beyond store capacity")
                normalized.append((True, offset, buf))
            else:
                length = int(payload)  # type: ignore[arg-type]
                if length <= 0:
                    raise ValueError("length must be positive")
                if offset < 0 or offset + length > self.capacity_bytes:
                    raise ValueError("read beyond store capacity")
                normalized.append((False, offset, length))
        if not normalized:
            return []
        self._reset_last_io()
        if self.cache is not None:
            if self.failed:
                self.cache.drop()
            else:
                return self.cache.apply_batch(normalized)
        if self.failed or self._backend is not None or len(normalized) < 2:
            return self._serial_batch(normalized)
        return self._span_batch(normalized)

    def _serial_batch(
        self, ops: list[tuple[bool, int, np.ndarray | int]]
    ) -> list[np.ndarray | None]:
        """Execute a batch op-by-op through the serial machinery."""
        results: list[np.ndarray | None] = []
        for is_write, offset, payload in ops:
            if is_write:
                self._execute_write(offset, payload)
                results.append(None)
            else:
                results.append(self._execute_read(offset, payload))
        return results

    def _span_batch(
        self, ops: list[tuple[bool, int, np.ndarray | int]]
    ) -> list[np.ndarray | None]:
        """The merged span path (healthy, uncached, unfaulted, ≥2 ops)."""
        chunk = self.chunk_bytes
        plan = self.planner.plan_batch(
            [
                (is_write, offset, payload.size if is_write else payload)
                for is_write, offset, payload in ops
            ],
            bridge=self.span_bridge_chunks,
        )
        results: list[np.ndarray | None] = [
            None if is_write else np.empty(payload, dtype=np.uint8)
            for is_write, _, payload in ops
        ]
        # Phase 1 — bulk pre-read: one vectored syscall per merged span.
        # ``state`` maps (disk, lba_chunk) to a *view into the span
        # buffer*; folding mutates the views in place, so later items in
        # a group observe earlier items' writes exactly as serial
        # execution order would — and write-back (phase 3) is a single
        # contiguous slice of the already-updated buffer per span.
        state: dict[tuple[int, int], np.ndarray] = {}
        cover: dict[int, list[tuple[int, np.ndarray]]] = {}
        for span in plan.read_spans:
            buf = self._vector_read_span(
                span.disk, span.lba_chunk * chunk, span.chunks * chunk
            )
            cover.setdefault(span.disk, []).append((span.lba_chunk, buf))
            for i, lba in enumerate(span.lbas()):
                state[(span.disk, lba)] = buf[i * chunk : (i + 1) * chunk]
        counts = plan.counts
        if counts.chunks_read:
            self._count(
                counts.data_chunks_read,
                counts.parity_chunks_read,
                wrote=False,
            )
        # Phase 2 — fold every batchable group in memory, arrival order.
        dirty: dict[tuple[int, int], np.ndarray] = {}
        for group in plan.batchable_groups:
            for item in group.items:
                if item.is_write:
                    self._fold_write_item(
                        group.stripe, item, ops[item.op_index][2],
                        state, dirty,
                    )
                    self.fast_path_writes += 1
                    for watcher in tuple(self._write_watchers):
                        watcher.add(group.stripe)
                else:
                    self._fill_read_item(
                        group.stripe, item, state, results[item.op_index]
                    )
        # Phase 3 — journal-before-data (one sealed transaction for the
        # whole batch), then one vectored write-back per merged span.
        # Span gaps rewrite ``state`` contents that were never dirtied —
        # byte-identical to what phase 1 read, see the class docstring.
        journalled = self._journalling and bool(dirty)
        if journalled:
            rows = self.code.rows
            for disk, lba in sorted(dirty):
                self._journal_entry(
                    lba // rows, (lba % rows, disk), dirty[(disk, lba)]
                )
            self._seal_journal()
        # Every write span lies inside one read span (the planner
        # expands read coverage over write-span gaps), so its bytes are
        # one contiguous, already-folded slice of that span's buffer.
        for span in plan.write_spans:
            start, buf = next(
                (start, buf)
                for start, buf in cover[span.disk]
                if start <= span.lba_chunk
                and span.stop <= start + buf.size // chunk
            )
            self._vector_write_span(
                span.disk,
                span.lba_chunk * chunk,
                buf[
                    (span.lba_chunk - start) * chunk
                    : (span.stop - start) * chunk
                ],
            )
        if counts.chunks_written:
            self._count(
                counts.data_chunks_written,
                counts.parity_chunks_written,
                wrote=True,
            )
        if journalled:
            self._commit_journal()
        # Phase 4 — stripe-path / decoding groups: the serial per-run
        # machinery (meters and journals itself, per run, as ever).
        for group in plan.fallback_groups:
            for item in group.items:
                if item.is_write:
                    buf = ops[item.op_index][2]
                    payload = buf[item.cursor : item.cursor + item.run.nbytes]
                    if item.plan.path == "delta":
                        self._delta_write_run(item.run, payload)
                        self.fast_path_writes += 1
                    else:
                        self._stripe_write_run(item.run, payload, item.plan)
                        self.slow_path_writes += 1
                    for watcher in tuple(self._write_watchers):
                        watcher.add(item.run.stripe)
                else:
                    self._read_run_into(
                        item.run, item.plan,
                        results[item.op_index], item.cursor,
                    )
        return results

    def _fold_write_item(
        self,
        stripe: int,
        item: BatchItem,
        buf: np.ndarray,
        state: dict[tuple[int, int], np.ndarray],
        dirty: dict[tuple[int, int], np.ndarray],
    ) -> None:
        """Fold one delta write run into the batch state (no disk I/O).

        The in-memory mirror of :meth:`_delta_write_run`: splice new
        data over ``state`` (the pre-read or already-folded contents),
        XOR each data delta through its dependent parity chains. Every
        ``state`` entry is a view into a span buffer and is updated *in
        place*, so the span write-back needs no gather — the buffer
        already holds the folded bytes; ``dirty`` marks which views the
        journal must record.
        """
        code = self.code
        rows = code.rows
        run = item.run
        payload = buf[item.cursor : item.cursor + run.nbytes]
        parity_deltas: dict[tuple[int, int], np.ndarray] = {}
        cursor = 0
        for index in range(run.length):
            row, col = code.data_positions[run.start + index]
            key = (col, stripe * rows + row)
            old = state[key]
            new, consumed = self._splice(run, index, cursor, payload, old)
            cursor += consumed
            delta = np.bitwise_xor(old, new)
            old[:] = new  # fold into the span buffer itself
            dirty[key] = old
            for parity in code.parity_dependents[(row, col)]:
                acc = parity_deltas.get(parity)
                if acc is None:
                    # copy: the same delta buffer feeds several parities
                    parity_deltas[parity] = delta.copy()
                else:
                    np.bitwise_xor(acc, delta, out=acc)
        for parity in sorted(parity_deltas):
            row, col = parity
            key = (col, stripe * rows + row)
            view = state[key]
            np.bitwise_xor(view, parity_deltas[parity], out=view)
            dirty[key] = view

    def _fill_read_item(
        self,
        stripe: int,
        item: BatchItem,
        state: dict[tuple[int, int], np.ndarray],
        out: np.ndarray,
    ) -> None:
        """Serve one read run from the batch state into ``out``."""
        chunk = self.chunk_bytes
        rows = self.code.rows
        run = item.run
        consumed = 0
        cursor = item.cursor
        for index in range(run.length):
            row, col = self.code.data_positions[run.start + index]
            data = state[(col, stripe * rows + row)]
            skip = run.skip if index == 0 else 0
            take = min(chunk - skip, run.nbytes - consumed)
            out[cursor : cursor + take] = data[skip : skip + take]
            cursor += take
            consumed += take

    # ------------------------------------------------------------------
    # failures, rebuild, scrubbing
    # ------------------------------------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Mark ``disk`` failed and wipe its backing file (drive swap)."""
        if not 0 <= disk < self.code.cols:
            raise ValueError(f"disk {disk} out of range")
        if len(self.failed | {disk}) > self.code.faults:
            raise DiskFailedError(
                f"failing disk {disk} would exceed the fault budget "
                f"({self.code.faults})"
            )
        self.failed.add(disk)
        logger.info(
            "store: disk %d failed (%d/%d fault budget used)",
            disk, len(self.failed), self.code.faults,
        )
        # Raw write: the zeroed file models a factory-fresh replacement
        # drive, so the wipe itself is never subject to fault injection.
        self._raw_write_span(disk, 0, b"\0" * self._disk_bytes)
        if self.cache is not None:
            # Drain write-back state immediately under degraded semantics:
            # deltas land in surviving parity, and no stale chunk can be
            # served after the array changed underneath the cache.
            self.cache.drop()

    def rebuild(self) -> int:
        """Reconstruct every failed disk from survivors; returns stripes
        rebuilt. The store is fully healthy afterwards.

        Batched pipeline: each round reads ``rebuild_batch`` stripes as
        one wide stripe (one contiguous span read per surviving disk),
        bulk-decodes it with the compiled recovery plan — fanned out over
        ``batch_workers`` processes when configured — and writes the
        stripes back.

        Exception-safe: ``failed`` stays marked until *every* stripe has
        been decoded and stored, so an error partway through (I/O,
        decode) leaves the store correctly degraded — reads keep
        reconstructing on the fly and a later :meth:`rebuild` can retry —
        instead of a "healthy" array whose rebuilt columns hold zeros.
        """
        if not self.failed:
            return 0
        self._reset_last_io()
        logger.info(
            "store: rebuild of disks %s starting (%d stripes)",
            sorted(self.failed), self.stripes,
        )
        self.rebuild_stripes(0, self.stripes)
        self.finish_rebuild()
        return self.stripes

    def rebuild_stripes(self, start: int, count: int) -> int:
        """Reconstruct the failed columns of ``count`` stripes from
        ``start``, in place, *without* changing the failure state.

        This is the incremental unit the throttled repair loop drives:
        the array stays formally degraded (reads keep reconstructing on
        the fly, writes keep skipping failed columns) until every stripe
        — including any re-dirtied by concurrent foreground writes, see
        :meth:`watch_writes` — has been rebuilt and the caller invokes
        :meth:`finish_rebuild`. Returns the stripes rebuilt.
        """
        if not self.failed:
            return 0
        if start < 0 or count < 0 or start + count > self.stripes:
            raise ValueError("stripe range out of bounds")
        if self.cache is not None:
            # Commit coalesced deltas to surviving parity and drop the
            # cache before reading stripes straight off the disks.
            self.cache.drop()
        failed = frozenset(self.failed)
        decoder = self._current_decoder()
        rows, cols, chunk = self.code.rows, self.code.cols, self.chunk_bytes
        batch = max(1, min(self.rebuild_batch, count or 1))
        for base in range(start, start + count, batch):
            n = min(batch, start + count - base)
            wide = self._load_stripe_batch(
                base, n, shared=self.batch_workers > 1
            )
            decoder.decode_columns(wide, workers=self.batch_workers)
            by_stripe = wide.reshape(rows, cols, n, chunk)
            for i in range(n):
                self._store_stripe(
                    base + i, by_stripe[:, :, i, :], writable=failed
                )
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "store: rebuilt stripes [%d, %d) for disks %s",
                start, start + count, sorted(failed),
            )
        return count

    def finish_rebuild(self) -> None:
        """Declare the rebuild complete: clear the failure set.

        Only call once every stripe has been reconstructed via
        :meth:`rebuild_stripes` (and any stripes written during the
        rebuild re-reconstructed); :meth:`rebuild` does this bookkeeping
        itself.
        """
        if self.failed:
            logger.info(
                "store: rebuild of disks %s complete", sorted(self.failed)
            )
        self.failed.clear()

    def read_stripes(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` consecutive stripes as one metered wide grid of
        shape ``(rows, cols, count * chunk_bytes)``; failed columns come
        back zeroed. Stripe ``start + i`` is the
        ``[:, :, i*chunk : (i+1)*chunk]`` slice — the layout
        ``Decoder.decode_columns`` and the scrubber's batched syndrome
        check consume directly.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if start < 0 or start + count > self.stripes:
            raise ValueError("stripe range out of bounds")
        return self._load_stripe_batch(start, count)

    def scrub(self) -> list[int]:
        """Verify all stripes; returns the indices of corrupt stripes."""
        if self.failed:
            raise DiskFailedError("cannot scrub a degraded array")
        self._reset_last_io()
        if self.cache is not None:
            self.cache.flush()
        return [
            stripe
            for stripe in range(self.stripes)
            if not self.code.verify_stripe(self._load_stripe(stripe))
        ]
