"""A persistent erasure-coded chunk store over per-disk backing files.

Layout: disk ``d`` is one file of ``stripes * rows`` chunks; element
``(row, col)`` of stripe ``s`` lives at chunk offset ``s * rows + row`` of
disk ``col``'s file — the same mapping the simulator's RAID controller
uses. The public interface is a logical chunk device:

* :meth:`ArrayStore.write_chunks` / :meth:`read_chunks` — logical I/O
  with parity maintenance (read-modify-write on partial stripes);
* :meth:`fail_disk` / :meth:`rebuild` — take a disk offline (its file is
  truncated, like a replaced drive) and reconstruct it from survivors;
* :meth:`read_degraded` — serve reads while disks are missing, decoding
  on the fly;
* :meth:`scrub` — verify every stripe's parity chains.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.codes.base import ArrayCode

__all__ = ["ArrayStore", "DiskFailedError"]


class DiskFailedError(RuntimeError):
    """Raised when an operation needs a disk that is marked failed."""


class ArrayStore:
    """An erasure-coded chunk store persisted as one file per disk.

    Args:
        code: the array code protecting the store.
        directory: where the per-disk files live (created if missing).
        stripes: stripe count; capacity = ``stripes * code.num_data``
            chunks.
        chunk_bytes: chunk (element) size in bytes.
    """

    def __init__(
        self,
        code: ArrayCode,
        directory: str | Path,
        stripes: int = 16,
        chunk_bytes: int = 4096,
    ) -> None:
        if stripes <= 0 or chunk_bytes <= 0:
            raise ValueError("stripes and chunk_bytes must be positive")
        self.code = code
        self.directory = Path(directory)
        self.stripes = stripes
        self.chunk_bytes = chunk_bytes
        self.failed: set[int] = set()
        self.directory.mkdir(parents=True, exist_ok=True)
        self._disk_bytes = stripes * code.rows * chunk_bytes
        for disk in range(code.cols):
            path = self._disk_path(disk)
            if not path.exists() or path.stat().st_size != self._disk_bytes:
                path.write_bytes(b"\0" * self._disk_bytes)

    # ------------------------------------------------------------------
    @property
    def capacity_chunks(self) -> int:
        """Logical chunks the store can hold."""
        return self.stripes * self.code.num_data

    def _disk_path(self, disk: int) -> Path:
        return self.directory / f"disk{disk:03d}.img"

    def _read_element(self, stripe: int, pos: tuple[int, int]) -> np.ndarray:
        row, col = pos
        if col in self.failed:
            raise DiskFailedError(f"disk {col} is failed")
        offset = (stripe * self.code.rows + row) * self.chunk_bytes
        with self._disk_path(col).open("rb") as handle:
            handle.seek(offset)
            data = handle.read(self.chunk_bytes)
        return np.frombuffer(data, dtype=np.uint8).copy()

    def _write_element(
        self, stripe: int, pos: tuple[int, int], chunk: np.ndarray
    ) -> None:
        row, col = pos
        if col in self.failed:
            return  # writes to failed disks are dropped, as in a real array
        offset = (stripe * self.code.rows + row) * self.chunk_bytes
        with self._disk_path(col).open("r+b") as handle:
            handle.seek(offset)
            handle.write(chunk.tobytes())

    def _load_stripe(self, stripe: int) -> np.ndarray:
        """Read a whole stripe (failed columns come back zeroed)."""
        out = np.zeros(
            (self.code.rows, self.code.cols, self.chunk_bytes), dtype=np.uint8
        )
        for col in range(self.code.cols):
            if col in self.failed:
                continue
            with self._disk_path(col).open("rb") as handle:
                handle.seek(stripe * self.code.rows * self.chunk_bytes)
                raw = handle.read(self.code.rows * self.chunk_bytes)
            out[:, col, :] = np.frombuffer(raw, dtype=np.uint8).reshape(
                self.code.rows, self.chunk_bytes
            )
        return out

    def _store_stripe(self, stripe: int, data: np.ndarray) -> None:
        for col in range(self.code.cols):
            if col in self.failed:
                continue
            with self._disk_path(col).open("r+b") as handle:
                handle.seek(stripe * self.code.rows * self.chunk_bytes)
                handle.write(data[:, col, :].tobytes())

    # ------------------------------------------------------------------
    # logical chunk I/O
    # ------------------------------------------------------------------
    def write_chunks(self, start: int, chunks: np.ndarray) -> None:
        """Write consecutive logical chunks starting at index ``start``.

        Partial stripes use read-modify-write over the surviving disks;
        the affected parities are recomputed from the full stripe content
        so the store stays consistent even while degraded.
        """
        chunks = np.asarray(chunks, dtype=np.uint8)
        if chunks.ndim != 2 or chunks.shape[1] != self.chunk_bytes:
            raise ValueError(
                f"chunks must be (k, {self.chunk_bytes}), got {chunks.shape}"
            )
        if start < 0 or start + chunks.shape[0] > self.capacity_chunks:
            raise ValueError("write beyond store capacity")
        per_stripe = self.code.num_data
        index = 0
        while index < chunks.shape[0]:
            logical = start + index
            stripe, within = divmod(logical, per_stripe)
            run = min(per_stripe - within, chunks.shape[0] - index)
            grid = self._load_stripe(stripe)
            if self.failed:
                # Degraded write: reconstruct the stripe before updating
                # so parity recomputation sees correct data.
                self.code.decode(grid, tuple(self.failed))
            for offset in range(run):
                row, col = self.code.data_positions[within + offset]
                grid[row, col] = chunks[index + offset]
            self.code.encode(grid)
            self._store_stripe(stripe, grid)
            index += run

    def read_chunks(self, start: int, count: int) -> np.ndarray:
        """Read ``count`` logical chunks from ``start`` (degraded-safe)."""
        if count <= 0:
            raise ValueError("count must be positive")
        if start < 0 or start + count > self.capacity_chunks:
            raise ValueError("read beyond store capacity")
        out = np.zeros((count, self.chunk_bytes), dtype=np.uint8)
        per_stripe = self.code.num_data
        index = 0
        while index < count:
            logical = start + index
            stripe, within = divmod(logical, per_stripe)
            run = min(per_stripe - within, count - index)
            grid = self._load_stripe(stripe)
            needs_decode = self.failed and any(
                self.code.data_positions[within + offset][1] in self.failed
                for offset in range(run)
            )
            if needs_decode:
                self.code.decode(grid, tuple(self.failed))
            for offset in range(run):
                row, col = self.code.data_positions[within + offset]
                out[index + offset] = grid[row, col]
            index += run
        return out

    # ------------------------------------------------------------------
    # failures, rebuild, scrubbing
    # ------------------------------------------------------------------
    def fail_disk(self, disk: int) -> None:
        """Mark ``disk`` failed and wipe its backing file (drive swap)."""
        if not 0 <= disk < self.code.cols:
            raise ValueError(f"disk {disk} out of range")
        if len(self.failed | {disk}) > self.code.faults:
            raise DiskFailedError(
                f"failing disk {disk} would exceed the fault budget "
                f"({self.code.faults})"
            )
        self.failed.add(disk)
        self._disk_path(disk).write_bytes(b"\0" * self._disk_bytes)

    def rebuild(self) -> int:
        """Reconstruct every failed disk from survivors; returns stripes
        rebuilt. The store is fully healthy afterwards."""
        if not self.failed:
            return 0
        failed = tuple(sorted(self.failed))
        for stripe in range(self.stripes):
            grid = self._load_stripe(stripe)
            self.code.decode(grid, failed)
            self.failed.clear()  # allow writes to the rebuilt columns
            self._store_stripe(stripe, grid)
            self.failed.update(failed)
        self.failed.clear()
        return self.stripes

    def scrub(self) -> list[int]:
        """Verify all stripes; returns the indices of corrupt stripes."""
        if self.failed:
            raise DiskFailedError("cannot scrub a degraded array")
        return [
            stripe
            for stripe in range(self.stripes)
            if not self.code.verify_stripe(self._load_stripe(stripe))
        ]
