"""Bulk packet codec: scheduled XOR execution on numpy buffers.

Encoding multiplies the data vector by the generator's parity rows;
decoding replays a :class:`~repro.codes.base.Decoder` recovery schedule.
Two execution engines are available:

* ``interpreted`` — :meth:`XorSchedule.apply`, the reference executor
  (fresh packet per assign step); kept as the equivalence oracle.
* ``compiled`` (default) — :class:`~repro.bitmatrix.plan.CompiledPlan`:
  the schedule lowered once to a flat in-place program executed with
  zero per-step allocation and cache-blocked column tiling, via
  :meth:`StripeCodec.encode_into` / :meth:`StripeCodec.decode_into` on
  one contiguous ``(num_elements, width)`` uint8 matrix.

Both are the Python equivalent of the word-wise XOR loops the paper's C
implementation runs, so relative speeds track XOR counts; the compiled
engine removes the interpreter's allocation and DRAM traffic overheads.
Multicore fan-out over shared-memory buffers lives in
:mod:`repro.codec.parallel` and is reachable from the throughput
measurers via ``workers=``.
"""

from __future__ import annotations

import itertools
import random
import time
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.bitmatrix import XorSchedule, smart_schedule
from repro.codes.base import ArrayCode

__all__ = [
    "StripeCodec",
    "ThroughputResult",
    "encode_schedule_for",
    "kernel_name",
    "measure_encode_throughput",
    "measure_decode_throughput",
]

#: Supported execution engines for the throughput measurers.
ENGINES = ("compiled", "interpreted")

#: Kernel identifiers the measurers dispatch to, pinned by tests so a
#: refactor can never silently reroute a measurement (e.g. an
#: interpreted ``schedule.apply`` leaking into a compiled-engine number).
KERNEL_INTERPRETED = "XorSchedule.apply"
KERNEL_COMPILED = "CompiledPlan.execute_into"
KERNEL_PARALLEL = "parallel_execute[zero-copy]"

# ----------------------------------------------------------------------
# encode-schedule memoization
# ----------------------------------------------------------------------
#: Greedy bit-matrix scheduling is quadratic in parity rows and runs per
#: StripeCodec construction; benchmarks that rebuild codecs per run were
#: paying that search repeatedly. Keyed by geometry *and* the parity
#: submatrix bytes, so two same-named codes with different chains can
#: never collide; small LRU because entries are tiny but unbounded
#: growth across a long sweep of geometries would not be.
_SCHEDULE_CACHE: OrderedDict[tuple, XorSchedule] = OrderedDict()
_SCHEDULE_CACHE_MAX = 32


def encode_schedule_for(code: ArrayCode) -> XorSchedule:
    """The memoized encode schedule (parity rows of the generator).

    Operating on the expanded (pure-data) rows lets the scheduler share
    common subexpressions across chained parities; memoization makes
    repeated ``StripeCodec`` construction for the same code geometry
    O(1) after the first.
    """
    generator = code.generator_matrix()
    parity_rows = [code.element_index[pos] for pos in code.parity_positions]
    matrix = np.ascontiguousarray(generator[parity_rows, :])
    key = (code.name, code.rows, code.cols, code.faults, matrix.tobytes())
    schedule = _SCHEDULE_CACHE.get(key)
    if schedule is None:
        schedule = smart_schedule(matrix)
        _SCHEDULE_CACHE[key] = schedule
        while len(_SCHEDULE_CACHE) > _SCHEDULE_CACHE_MAX:
            _SCHEDULE_CACHE.popitem(last=False)
    else:
        _SCHEDULE_CACHE.move_to_end(key)
    return schedule


class StripeCodec:
    """Packet codec for one code: precomputed schedules, bulk execution.

    Args:
        code: the array code.
        packet_size: bytes per element packet (the paper uses 4 KB).
        tile_bytes: cache-tile width for the compiled engine (``None`` =
            auto-sized from the plan's row footprint).
    """

    def __init__(
        self,
        code: ArrayCode,
        packet_size: int = 4096,
        tile_bytes: int | None = None,
    ) -> None:
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if tile_bytes is not None and tile_bytes <= 0:
            raise ValueError("tile_bytes must be positive")
        self.code = code
        self.packet_size = packet_size
        self.tile_bytes = tile_bytes
        self._encode_schedule = encode_schedule_for(code)
        self._encode_plan = self._encode_schedule.compile()

    @property
    def data_bytes_per_stripe(self) -> int:
        """Payload bytes carried by one stripe."""
        return self.code.num_data * self.packet_size

    @property
    def encode_xors(self) -> int:
        """Packet XORs per stripe encode (after scheduling)."""
        return self._encode_schedule.xor_count

    @property
    def encode_plan(self):
        """The compiled encode plan (shared; treat as read-only)."""
        return self._encode_plan

    @staticmethod
    def _check_packets(
        packets: list[np.ndarray], expected: int, what: str
    ) -> None:
        """Validate packet count, dtype, contiguity and mutual shape.

        The XOR schedules broadcast packets against each other and the
        compiled engine executes ``out=`` ops on them, so a mismatched
        width would surface as a cryptic numpy broadcast error and a
        non-C-contiguous packet would defeat the contiguous inner loops
        the plan's tiling assumes; fail here with a message naming the
        offending packet instead.
        """
        if len(packets) != expected:
            raise ValueError(
                f"expected {expected} {what} packets, got {len(packets)}"
            )
        shape: tuple[int, ...] | None = None
        for i, packet in enumerate(packets):
            if not isinstance(packet, np.ndarray):
                raise ValueError(
                    f"{what} packet {i} must be a numpy uint8 array, got "
                    f"{type(packet).__name__}"
                )
            if packet.dtype != np.uint8:
                raise ValueError(
                    f"{what} packet {i} must have dtype uint8, got "
                    f"{packet.dtype}"
                )
            if not packet.flags.c_contiguous:
                raise ValueError(
                    f"{what} packet {i} is not C-contiguous; pass "
                    f"np.ascontiguousarray(packet) — the compiled engine "
                    f"runs in-place ops on contiguous buffers"
                )
            if shape is None:
                shape = packet.shape
            elif packet.shape != shape:
                raise ValueError(
                    f"{what} packet {i} has shape {packet.shape} but "
                    f"packet 0 has shape {shape}; all packets must match"
                )

    def _check_matrix(
        self, matrix: np.ndarray, rows: int, what: str
    ) -> np.ndarray:
        """Validate one contiguous ``(rows, width)`` uint8 matrix."""
        if not isinstance(matrix, np.ndarray):
            raise ValueError(f"{what} must be a numpy uint8 matrix")
        if matrix.ndim != 2 or matrix.shape[0] != rows:
            raise ValueError(
                f"{what} must have shape ({rows}, width), got {matrix.shape}"
            )
        if matrix.dtype != np.uint8:
            raise ValueError(f"{what} must have dtype uint8, got {matrix.dtype}")
        if not matrix.flags.c_contiguous:
            raise ValueError(
                f"{what} is not C-contiguous; pass np.ascontiguousarray(...)"
            )
        return matrix

    # ------------------------------------------------------------------
    # interpreted (reference) packet API
    # ------------------------------------------------------------------
    def encode_packets(self, data: list[np.ndarray]) -> list[np.ndarray]:
        """Compute all parity packets for logical data packets.

        Interpreted reference path; the compiled equivalent is
        :meth:`encode_into`.
        """
        self._check_packets(data, self.code.num_data, "data")
        return self._encode_schedule.apply(data)

    def decode_packets(
        self, failed: tuple[int, ...], known: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Recover the packets of ``failed`` columns from survivors.

        ``known`` must list the surviving elements' packets in the order
        of ``Decoder.plan.known_positions``. Interpreted reference path;
        the compiled equivalent is :meth:`decode_into`.
        """
        decoder = self.code.decoder_for(failed)
        self._check_packets(
            known, len(decoder.plan.known_positions), "survivor"
        )
        return decoder.plan.schedule.apply(known)

    # ------------------------------------------------------------------
    # compiled batch API
    # ------------------------------------------------------------------
    def encode_into(
        self, data: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Encode a ``(num_data, width)`` matrix into parity rows.

        Executes the compiled plan tile by tile — zero per-step
        allocation, output bytes identical to :meth:`encode_packets`.

        Args:
            data: contiguous ``(num_data, width)`` uint8 matrix; row
                order is the code's logical data order.
            out: optional preallocated ``(num_parity, width)`` uint8
                matrix (allocated when omitted).

        Returns:
            ``out``, parity rows in ``code.parity_positions`` order.
        """
        data = self._check_matrix(data, self.code.num_data, "data")
        if out is None:
            out = np.empty(
                (self.code.num_parity, data.shape[1]), dtype=np.uint8
            )
        else:
            out = self._check_matrix(out, self.code.num_parity, "out")
            if out.shape[1] != data.shape[1]:
                raise ValueError(
                    f"out width {out.shape[1]} != data width {data.shape[1]}"
                )
        self._encode_plan.execute_into(data, out, tile_bytes=self.tile_bytes)
        return out

    def decode_into(
        self,
        failed: tuple[int, ...],
        known: np.ndarray,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Recover ``failed`` columns' elements from a survivor matrix.

        Args:
            failed: failed column indices.
            known: contiguous ``(num_known, width)`` uint8 matrix, rows
                in ``Decoder.plan.known_positions`` order.
            out: optional ``(num_unknown, width)`` uint8 matrix, rows in
                ``Decoder.plan.unknown_positions`` order.

        Returns:
            ``out`` with every erased element reconstructed.
        """
        decoder = self.code.decoder_for(failed)
        known = self._check_matrix(
            known, len(decoder.plan.known_positions), "survivor"
        )
        plan = decoder.compiled_plan()
        if out is None:
            out = np.empty(
                (len(decoder.plan.unknown_positions), known.shape[1]),
                dtype=np.uint8,
            )
        else:
            out = self._check_matrix(
                out, len(decoder.plan.unknown_positions), "out"
            )
            if out.shape[1] != known.shape[1]:
                raise ValueError(
                    f"out width {out.shape[1]} != survivor width "
                    f"{known.shape[1]}"
                )
        plan.execute_into(known, out, tile_bytes=self.tile_bytes)
        return out


@dataclass
class ThroughputResult:
    """Outcome of one throughput measurement."""

    name: str
    total_bytes: int
    seconds: float
    xors_per_element: float

    @property
    def gib_per_second(self) -> float:
        """Throughput in GiB/s of data processed."""
        return self.total_bytes / (1 << 30) / max(self.seconds, 1e-12)


def _check_engine(engine: str, workers: int) -> None:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if engine == "interpreted" and workers > 1:
        raise ValueError("multicore fan-out requires the compiled engine")


def kernel_name(engine: str, workers: int = 1) -> str:
    """The kernel an ``(engine, workers)`` pair dispatches to.

    Both throughput measurers branch on exactly this mapping, so a test
    pinning it pins what every engine string actually measures:

    * ``("interpreted", 1)`` → :data:`KERNEL_INTERPRETED` — the
      reference ``XorSchedule.apply`` of the *dense* schedule;
    * ``("compiled", 1)`` → :data:`KERNEL_COMPILED` — the same
      run-fused ``CompiledPlan.execute_into`` that
      :meth:`StripeCodec.encode_into` / :meth:`StripeCodec.decode_into`
      execute;
    * ``("compiled", >1)`` → :data:`KERNEL_PARALLEL` — multiprocess
      fan-out of that same plan over pooled shared-memory buffers
      (allocated with :func:`repro.codec.parallel.shared_empty`, so the
      timed region contains no gather/scatter copies).
    """
    _check_engine(engine, workers)
    if engine == "interpreted":
        return KERNEL_INTERPRETED
    return KERNEL_PARALLEL if workers > 1 else KERNEL_COMPILED


def measure_encode_throughput(
    code: ArrayCode,
    data_bytes: int = 64 << 20,
    packet_size: int = 4096,
    seed: int = 0,
    engine: str = "compiled",
    workers: int = 1,
    tile_bytes: int | None = None,
) -> ThroughputResult:
    """Encode ``data_bytes`` of random data; report GiB/s (Fig. 14a).

    Packets of all stripes are batched into one ``(num_data, S)`` buffer
    so a stripe's worth of XOR work runs as a handful of large vectorized
    XORs, mirroring the paper's memory-bandwidth-bound setup. ``engine``
    selects interpreted vs compiled execution; ``workers > 1`` fans the
    compiled plan out over processes on shared-memory buffers.
    """
    kernel = kernel_name(engine, workers)
    codec = StripeCodec(code, packet_size, tile_bytes=tile_bytes)
    stripes = -(-data_bytes // codec.data_bytes_per_stripe)  # ceil division
    width = stripes * packet_size
    rng = np.random.default_rng(seed)
    if kernel == KERNEL_PARALLEL:
        from repro.codec.parallel import parallel_encode_into, shared_empty

        # Zero-copy: inputs and outputs live in pooled shared memory, so
        # the timed region is pure fan-out execution (no gather/scatter).
        data = shared_empty((code.num_data, width), role="bench-enc-in")
        data[...] = rng.integers(
            0, 256, size=(code.num_data, width), dtype=np.uint8
        )
        out = shared_empty((code.num_parity, width), role="bench-enc-out")
        out.fill(0)  # fault the pages outside the timed region
        start = time.perf_counter()
        parallel_encode_into(codec, data, out, workers=workers)
        elapsed = time.perf_counter() - start
    else:
        data = rng.integers(
            0, 256, size=(code.num_data, width), dtype=np.uint8
        )
        if kernel == KERNEL_INTERPRETED:
            packets = [data[i] for i in range(code.num_data)]
            start = time.perf_counter()
            codec.encode_packets(packets)
            elapsed = time.perf_counter() - start
        else:
            out = np.empty((code.num_parity, width), dtype=np.uint8)
            out.fill(0)  # fault the pages outside the timed region
            start = time.perf_counter()
            codec.encode_into(data, out)
            elapsed = time.perf_counter() - start
    return ThroughputResult(
        name=code.name,
        total_bytes=code.num_data * width,
        seconds=elapsed,
        xors_per_element=codec.encode_xors / code.num_data,
    )


def measure_decode_throughput(
    code: ArrayCode,
    data_bytes: int = 64 << 20,
    packet_size: int = 4096,
    patterns: int = 10,
    seed: int = 0,
    engine: str = "compiled",
    workers: int = 1,
    tile_bytes: int | None = None,
) -> ThroughputResult:
    """Average decoding throughput over random failures (Fig. 15a).

    For each sampled failure pattern (failures may hit data and parity
    disks alike, as in the paper), the recovery schedule runs over the
    survivors of a ``data_bytes``-sized region; throughput is data bytes
    per second of recovery work, averaged across patterns. Schedule
    construction and plan compilation (the algebra) are excluded,
    matching the paper's steady-state measurement. The compiled engine
    times :meth:`StripeCodec.decode_into` itself — the fused two-stage
    plan, exactly the production path — while ``xors_per_element``
    always reports the dense schedule's count (the paper's decode cost
    metric; see ``Decoder.fused_xor_count`` for the executed count).
    """
    kernel = kernel_name(engine, workers)
    codec = StripeCodec(code, packet_size, tile_bytes=tile_bytes)
    stripes = -(-data_bytes // codec.data_bytes_per_stripe)  # ceil division
    width = stripes * packet_size
    rng_np = np.random.default_rng(seed)
    rng = random.Random(seed)
    all_combos = list(
        itertools.combinations(range(code.cols), code.faults)
    )
    combos = (
        rng.sample(all_combos, patterns)
        if len(all_combos) > patterns
        else all_combos
    )
    total_seconds = 0.0
    total_xor_per_elem = 0.0
    for combo in combos:
        decoder = code.decoder_for(combo)
        num_known = len(decoder.plan.known_positions)
        num_unknown = len(decoder.plan.unknown_positions)
        fill = rng_np.integers(
            0, 256, size=(num_known, width), dtype=np.uint8
        )
        if kernel == KERNEL_INTERPRETED:
            packets = [fill[i] for i in range(num_known)]
            start = time.perf_counter()
            decoder.plan.schedule.apply(packets)
            total_seconds += time.perf_counter() - start
        elif kernel == KERNEL_PARALLEL:
            from repro.codec.parallel import parallel_decode_into, shared_empty

            # Zero-copy: survivors and outputs in pooled shared memory,
            # so the timed region is pure fan-out execution.
            known = shared_empty((num_known, width), role="bench-dec-in")
            known[...] = fill
            out = shared_empty((num_unknown, width), role="bench-dec-out")
            out.fill(0)  # fault the pages outside the timed region
            decoder.compiled_plan()  # compile outside the timed region
            start = time.perf_counter()
            parallel_decode_into(codec, combo, known, out, workers=workers)
            total_seconds += time.perf_counter() - start
        else:
            out = np.empty((num_unknown, width), dtype=np.uint8)
            out.fill(0)  # fault the pages outside the timed region
            decoder.compiled_plan()  # compile outside the timed region
            start = time.perf_counter()
            codec.decode_into(combo, fill, out)
            total_seconds += time.perf_counter() - start
        total_xor_per_elem += decoder.xor_count / code.num_data
    count = len(combos)
    return ThroughputResult(
        name=code.name,
        total_bytes=code.num_data * width * count,
        seconds=total_seconds,
        xors_per_element=total_xor_per_elem / count,
    )
