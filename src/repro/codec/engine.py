"""Bulk packet codec: scheduled XOR execution on numpy buffers.

Encoding multiplies the data vector by the generator's parity rows;
decoding replays a :class:`~repro.codes.base.Decoder` recovery schedule.
Both are executed as packet XORs (``numpy.bitwise_xor`` on contiguous
uint8 buffers), the Python equivalent of the word-wise XOR loops the
paper's C implementation runs, so relative speeds track XOR counts.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass

import numpy as np

from repro.bitmatrix import smart_schedule
from repro.codes.base import ArrayCode

__all__ = [
    "StripeCodec",
    "ThroughputResult",
    "measure_encode_throughput",
    "measure_decode_throughput",
]


class StripeCodec:
    """Packet codec for one code: precomputed schedules, bulk execution.

    Args:
        code: the array code.
        packet_size: bytes per element packet (the paper uses 4 KB).
    """

    def __init__(self, code: ArrayCode, packet_size: int = 4096) -> None:
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        self.code = code
        self.packet_size = packet_size
        # Encoding schedule: parity rows of the generator matrix, computed
        # with bit-matrix scheduling over the expanded chains. Operating on
        # the expanded (pure-data) rows lets the scheduler share common
        # subexpressions across chained parities.
        generator = code.generator_matrix()
        parity_rows = [
            code.element_index[pos] for pos in code.parity_positions
        ]
        self._encode_schedule = smart_schedule(generator[parity_rows, :])

    @property
    def data_bytes_per_stripe(self) -> int:
        """Payload bytes carried by one stripe."""
        return self.code.num_data * self.packet_size

    @property
    def encode_xors(self) -> int:
        """Packet XORs per stripe encode (after scheduling)."""
        return self._encode_schedule.xor_count

    @staticmethod
    def _check_packets(
        packets: list[np.ndarray], expected: int, what: str
    ) -> None:
        """Validate packet count, dtype and mutual shape up front.

        The XOR schedules broadcast packets against each other, so a
        mismatched width would otherwise surface as a cryptic numpy
        broadcast error deep inside ``XorSchedule.apply``; fail here with
        a message naming the offending packet instead.
        """
        if len(packets) != expected:
            raise ValueError(
                f"expected {expected} {what} packets, got {len(packets)}"
            )
        shape: tuple[int, ...] | None = None
        for i, packet in enumerate(packets):
            if not isinstance(packet, np.ndarray):
                raise ValueError(
                    f"{what} packet {i} must be a numpy uint8 array, got "
                    f"{type(packet).__name__}"
                )
            if packet.dtype != np.uint8:
                raise ValueError(
                    f"{what} packet {i} must have dtype uint8, got "
                    f"{packet.dtype}"
                )
            if shape is None:
                shape = packet.shape
            elif packet.shape != shape:
                raise ValueError(
                    f"{what} packet {i} has shape {packet.shape} but "
                    f"packet 0 has shape {shape}; all packets must match"
                )

    def encode_packets(self, data: list[np.ndarray]) -> list[np.ndarray]:
        """Compute all parity packets for logical data packets."""
        self._check_packets(data, self.code.num_data, "data")
        return self._encode_schedule.apply(data)

    def decode_packets(
        self, failed: tuple[int, ...], known: list[np.ndarray]
    ) -> list[np.ndarray]:
        """Recover the packets of ``failed`` columns from survivors.

        ``known`` must list the surviving elements' packets in the order
        of ``Decoder.plan.known_positions``.
        """
        decoder = self.code.decoder_for(failed)
        self._check_packets(
            known, len(decoder.plan.known_positions), "survivor"
        )
        return decoder.plan.schedule.apply(known)


@dataclass
class ThroughputResult:
    """Outcome of one throughput measurement."""

    name: str
    total_bytes: int
    seconds: float
    xors_per_element: float

    @property
    def gib_per_second(self) -> float:
        """Throughput in GiB/s of data processed."""
        return self.total_bytes / (1 << 30) / max(self.seconds, 1e-12)


def measure_encode_throughput(
    code: ArrayCode,
    data_bytes: int = 64 << 20,
    packet_size: int = 4096,
    seed: int = 0,
) -> ThroughputResult:
    """Encode ``data_bytes`` of random data; report GiB/s (Fig. 14a).

    Packets of all stripes are batched into one ``(num_data, S)`` buffer so
    a stripe's worth of XOR work runs as a handful of large vectorized
    XORs, mirroring the paper's single-core memory-bandwidth-bound setup.
    """
    codec = StripeCodec(code, packet_size)
    stripes = -(-data_bytes // codec.data_bytes_per_stripe)  # ceil division
    width = stripes * packet_size
    rng = np.random.default_rng(seed)
    data = [
        rng.integers(0, 256, size=width, dtype=np.uint8)
        for _ in range(code.num_data)
    ]
    start = time.perf_counter()
    codec.encode_packets(data)
    elapsed = time.perf_counter() - start
    return ThroughputResult(
        name=code.name,
        total_bytes=code.num_data * width,
        seconds=elapsed,
        xors_per_element=codec.encode_xors / code.num_data,
    )


def measure_decode_throughput(
    code: ArrayCode,
    data_bytes: int = 64 << 20,
    packet_size: int = 4096,
    patterns: int = 10,
    seed: int = 0,
) -> ThroughputResult:
    """Average decoding throughput over random failures (Fig. 15a).

    For each sampled failure pattern (failures may hit data and parity
    disks alike, as in the paper), the recovery schedule runs over the
    survivors of a ``data_bytes``-sized region; throughput is data bytes
    per second of recovery work, averaged across patterns. Schedule
    construction (the algebra) is excluded, matching the paper's
    steady-state measurement.
    """
    codec = StripeCodec(code, packet_size)
    stripes = -(-data_bytes // codec.data_bytes_per_stripe)  # ceil division
    width = stripes * packet_size
    rng_np = np.random.default_rng(seed)
    rng = random.Random(seed)
    all_combos = list(
        itertools.combinations(range(code.cols), code.faults)
    )
    combos = (
        rng.sample(all_combos, patterns)
        if len(all_combos) > patterns
        else all_combos
    )
    total_seconds = 0.0
    total_xor_per_elem = 0.0
    for combo in combos:
        decoder = code.decoder_for(combo)
        known = [
            rng_np.integers(0, 256, size=width, dtype=np.uint8)
            for _ in decoder.plan.known_positions
        ]
        start = time.perf_counter()
        decoder.plan.schedule.apply(known)
        total_seconds += time.perf_counter() - start
        total_xor_per_elem += decoder.xor_count / code.num_data
    count = len(combos)
    return ThroughputResult(
        name=code.name,
        total_bytes=code.num_data * width * count,
        seconds=total_seconds,
        xors_per_element=total_xor_per_elem / count,
    )
