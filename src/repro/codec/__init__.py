"""Packet-level encode/decode throughput measurement (Figs. 14a, 15a).

The paper measures GB/s encoding and decoding 256 MB of random memory
with 4 KB packets on one core. :mod:`repro.codec.engine` reproduces that
methodology on numpy buffers: the XOR schedules derived from each code's
chains/parity-check matrix are executed on large packets, so throughput is
dominated by the same per-element XOR counts that Figs. 14b/15b report.
The default engine executes schedules as compiled zero-allocation plans
(:mod:`repro.bitmatrix.plan`); :mod:`repro.codec.parallel` fans plans out
over worker processes on shared-memory buffers.
"""

from repro.codec.engine import (
    StripeCodec,
    ThroughputResult,
    encode_schedule_for,
    kernel_name,
    measure_encode_throughput,
    measure_decode_throughput,
)
from repro.codec.parallel import (
    parallel_decode_into,
    parallel_encode_into,
    parallel_execute,
    shared_empty,
)

__all__ = [
    "StripeCodec",
    "ThroughputResult",
    "encode_schedule_for",
    "kernel_name",
    "measure_encode_throughput",
    "measure_decode_throughput",
    "parallel_encode_into",
    "parallel_decode_into",
    "parallel_execute",
    "shared_empty",
]
