"""Multicore XOR execution: compiled plans fanned out over processes.

The compiled engine is single-threaded numpy; past memory-bandwidth
saturation of one core, the only way further is more cores. XOR plans
are embarrassingly parallel along the packet width — every output byte
column depends only on the same byte column of the inputs — so the
fan-out **splits the stripe range**: each worker executes the *same*
:class:`~repro.bitmatrix.plan.CompiledPlan` over a disjoint, 4 KiB-
aligned column span of shared-memory input/output buffers. Results are
byte-identical for any worker count because every output byte is
produced by exactly one worker running exactly the sequential program.

Mechanics: inputs are gathered into one ``multiprocessing.shared_memory``
segment, the pickled plan plus segment names and the span bounds go to a
``ProcessPoolExecutor``, workers attach and execute in place, and the
parent scatters the output segment back. Worker pools are created once
per worker count and reused across calls, and the shared-memory segments
are pooled too (grown geometrically, unlinked at interpreter exit), so
steady-state fan-out pays neither fork/spawn nor segment create/unlink
cost.

Fan-out only pays past a per-worker size threshold: dispatching to the
pool and copying through shared memory cost real time, and below roughly
a megabyte per worker the serial path always wins (the regression the
first BENCH_engine.json recorded — forced 2- and 4-worker fan-out on a
1-CPU host ran 5x slower than serial). An **auto** worker count
(``workers=None`` or ``0``) therefore measures, once per process, the
pool's round-trip dispatch latency against serial XOR throughput, and
engages the pool only when every worker gets at least
:func:`fanout_threshold_bytes` of span — serial otherwise. An explicit
integer ``workers`` remains a forced count, bypassing the threshold
(tests rely on forced fan-out being byte-identical at any width).
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.bitmatrix.plan import CompiledPlan
from repro.codec.engine import StripeCodec

__all__ = [
    "auto_worker_count",
    "fanout_threshold_bytes",
    "parallel_execute",
    "parallel_encode_into",
    "parallel_decode_into",
    "resolve_workers",
    "split_spans",
]

#: Span boundaries are aligned to the paper's packet size so workers
#: never share a cache line and spans map to whole packets.
SPAN_ALIGN = 4096

#: Never fan out spans smaller than this, whatever calibration says:
#: below 1 MiB per worker the shared-memory copies alone dominate.
MIN_SPAN_BYTES = 1 << 20

#: Safety margin over the measured dispatch-latency break-even point.
#: Fan-out must *clearly* win before auto mode engages the pool.
_THRESHOLD_MARGIN = 4.0

_pools: dict[int, ProcessPoolExecutor] = {}

#: Calibrated per-worker span thresholds, keyed by worker count
#: (measured once per process; tests may pre-seed to force behavior).
_auto_thresholds: dict[int, int] = {}


def resolve_workers(workers: int | None) -> int:
    """``None``/``0`` → one worker per CPU; otherwise the given count.

    This is the *forced* resolution. :func:`parallel_execute` resolves
    auto requests through :func:`auto_worker_count` instead, which also
    applies the measured per-worker size threshold.
    """
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


def _serial_xor_bytes_per_second() -> float:
    """Best-of-3 throughput of one in-process XOR over 8 MiB buffers."""
    size = 8 << 20
    a = np.ones(size, dtype=np.uint8)
    b = np.full(size, 0x5A, dtype=np.uint8)
    out = np.empty(size, dtype=np.uint8)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        np.bitwise_xor(a, b, out=out)
        best = min(best, time.perf_counter() - t0)
    return size / max(best, 1e-9)


def _noop() -> None:
    """Worker no-op used to measure pool dispatch latency."""


def _pool_round_trip_seconds(workers: int) -> float:
    """Best-of-5 latency of dispatching one task batch to the pool."""
    pool = _pool(workers)
    pool.submit(_noop).result()  # absorb the one-time spawn cost
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        futures = [pool.submit(_noop) for _ in range(workers)]
        for future in futures:
            future.result()
        best = min(best, time.perf_counter() - t0)
    return best


def fanout_threshold_bytes(workers: int) -> int:
    """Per-worker span bytes below which fan-out loses to serial.

    Calibrated once per process and worker count: the pool's measured
    round-trip dispatch latency, converted to bytes at the measured
    serial XOR rate, times a safety margin — floored at
    :data:`MIN_SPAN_BYTES`. Pre-seed :data:`_auto_thresholds` in tests
    to pin the policy without timing noise.
    """
    threshold = _auto_thresholds.get(workers)
    if threshold is None:
        overhead = _pool_round_trip_seconds(workers)
        rate = _serial_xor_bytes_per_second()
        threshold = max(
            MIN_SPAN_BYTES, int(_THRESHOLD_MARGIN * overhead * rate)
        )
        _auto_thresholds[workers] = threshold
    return threshold


def auto_worker_count(width: int) -> int:
    """Workers the auto policy picks for a ``width``-byte span.

    1 (serial) on single-CPU hosts or when the width cannot give every
    worker at least :func:`fanout_threshold_bytes`; otherwise as many
    CPUs as the width supports.
    """
    cpus = os.cpu_count() or 1
    if cpus <= 1 or width < 2 * MIN_SPAN_BYTES:
        return 1
    count = min(cpus, width // fanout_threshold_bytes(cpus))
    return max(1, count)


def split_spans(
    width: int, parts: int, align: int = SPAN_ALIGN
) -> list[tuple[int, int]]:
    """Split ``[0, width)`` into ≤ ``parts`` aligned contiguous spans.

    Interior boundaries are rounded to ``align``; degenerate (empty)
    spans are dropped, so narrow buffers yield fewer spans than workers.
    """
    if width <= 0:
        return []
    if parts <= 1:
        return [(0, width)]
    bounds = [0]
    for i in range(1, parts):
        cut = (width * i // parts) // align * align
        if cut > bounds[-1]:
            bounds.append(cut)
    bounds.append(width)
    return [
        (lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def _pool(workers: int) -> ProcessPoolExecutor:
    """A reusable executor for ``workers`` processes."""
    pool = _pools.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _pools[workers] = pool
    return pool


class _SegmentPool:
    """Shared-memory segments reused across fan-out calls.

    Creating and unlinking a ``SharedMemory`` segment per call costs a
    pair of syscalls plus page faults on first touch — measurable against
    sub-gigabyte workloads. The pool keeps one segment per role
    (gather/scatter), grown geometrically when a call needs more, and
    unlinks everything at interpreter exit.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}

    def get(self, role: str, nbytes: int) -> shared_memory.SharedMemory:
        """A segment of at least ``nbytes`` for ``role``, reused if big
        enough, else replaced with one grown geometrically."""
        segment = self._segments.get(role)
        if segment is not None and segment.size >= nbytes:
            return segment
        size = max(nbytes, 1)
        if segment is not None:
            size = max(size, 2 * segment.size)
            segment.close()
            segment.unlink()
        segment = shared_memory.SharedMemory(create=True, size=size)
        self._segments[role] = segment
        return segment

    def release(self) -> None:
        """Close and unlink every pooled segment."""
        for segment in self._segments.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()


_segments = _SegmentPool()


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    _segments.release()
    for pool in _pools.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _pools.clear()


def _execute_span(
    plan_bytes: bytes,
    in_name: str,
    in_shape: tuple[int, int],
    out_name: str,
    out_shape: tuple[int, int],
    lo: int,
    hi: int,
    tile_bytes: int | None,
) -> None:
    """Worker body: run the plan over one column span of the shared bufs."""
    plan: CompiledPlan = pickle.loads(plan_bytes)
    shm_in = shared_memory.SharedMemory(name=in_name)
    try:
        shm_out = shared_memory.SharedMemory(name=out_name)
        try:
            ins = np.ndarray(in_shape, dtype=np.uint8, buffer=shm_in.buf)
            outs = np.ndarray(out_shape, dtype=np.uint8, buffer=shm_out.buf)
            plan.execute_into(
                [row[lo:hi] for row in ins],
                [row[lo:hi] for row in outs],
                tile_bytes=tile_bytes,
            )
            del ins, outs
        finally:
            shm_out.close()
    finally:
        shm_in.close()


def parallel_execute(
    plan: CompiledPlan,
    inputs: np.ndarray | Sequence[np.ndarray],
    outputs: np.ndarray | Sequence[np.ndarray],
    workers: int | None = None,
    tile_bytes: int | None = None,
) -> None:
    """Execute ``plan`` with the width split across worker processes.

    Byte-identical to ``plan.execute_into(inputs, outputs)`` for every
    worker count. ``workers=None`` (or 0) is **auto**: the pool engages
    only when :func:`auto_worker_count` says the width clears the
    measured per-worker overhead threshold — serial otherwise. An
    explicit count forces fan-out regardless (falling back to in-process
    execution only when the width is too narrow to split at all). Input
    rows are gathered into pooled shared memory and outputs scattered
    back, so callers keep ordinary numpy arrays or views.
    """
    ins = plan._as_rows(inputs, plan.num_inputs, "input")
    outs = plan._as_rows(outputs, len(plan.outputs), "output")
    if not outs:
        return
    width = outs[0].shape[0]
    if workers is None or workers <= 0:
        workers = auto_worker_count(width)
    spans = split_spans(width, workers)
    if len(spans) <= 1:
        plan.execute_into(ins, outs, tile_bytes=tile_bytes)
        return
    n_in, n_out = len(ins), len(outs)
    shm_in = _segments.get("in", n_in * width)
    shm_out = _segments.get("out", n_out * width)
    shared_ins = np.ndarray((n_in, width), dtype=np.uint8, buffer=shm_in.buf)
    for i, row in enumerate(ins):
        shared_ins[i] = row
    plan_bytes = pickle.dumps(plan)
    futures = [
        _pool(workers).submit(
            _execute_span,
            plan_bytes,
            shm_in.name,
            (n_in, width),
            shm_out.name,
            (n_out, width),
            lo,
            hi,
            tile_bytes,
        )
        for lo, hi in spans
    ]
    for future in futures:
        future.result()
    shared_outs = np.ndarray(
        (n_out, width), dtype=np.uint8, buffer=shm_out.buf
    )
    for i, row in enumerate(outs):
        row[:] = shared_outs[i]
    del shared_ins, shared_outs


def parallel_encode_into(
    codec: StripeCodec,
    data: np.ndarray,
    out: np.ndarray | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Multicore :meth:`StripeCodec.encode_into` (same bytes, any count)."""
    code = codec.code
    if out is None:
        out = np.empty((code.num_parity, data.shape[1]), dtype=np.uint8)
    parallel_execute(
        codec.encode_plan,
        data,
        out,
        workers=workers,
        tile_bytes=codec.tile_bytes,
    )
    return out


def parallel_decode_into(
    codec: StripeCodec,
    failed: tuple[int, ...],
    known: np.ndarray,
    out: np.ndarray | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Multicore :meth:`StripeCodec.decode_into` (same bytes, any count)."""
    decoder = codec.code.decoder_for(failed)
    if out is None:
        out = np.empty(
            (len(decoder.plan.unknown_positions), known.shape[1]),
            dtype=np.uint8,
        )
    parallel_execute(
        decoder.compiled_plan(),
        known,
        out,
        workers=workers,
        tile_bytes=codec.tile_bytes,
    )
    return out
