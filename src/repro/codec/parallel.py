"""Multicore XOR execution: compiled plans fanned out over processes.

The compiled engine is single-threaded numpy; past memory-bandwidth
saturation of one core, the only way further is more cores. XOR plans
are embarrassingly parallel along the packet width — every output byte
column depends only on the same byte column of the inputs — so the
fan-out **splits the stripe range**: each worker executes the *same*
:class:`~repro.bitmatrix.plan.CompiledPlan` over a disjoint, 4 KiB-
aligned column span of shared-memory input/output buffers. Results are
byte-identical for any worker count because every output byte is
produced by exactly one worker running exactly the sequential program.

Mechanics: inputs are gathered into one ``multiprocessing.shared_memory``
segment, the pickled plan plus segment names and the span bounds go to a
``ProcessPoolExecutor``, workers attach and execute in place, and the
parent scatters the output segment back. Worker pools are created once
per worker count and reused across calls so steady-state fan-out pays no
fork/spawn cost.
"""

from __future__ import annotations

import atexit
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.bitmatrix.plan import CompiledPlan
from repro.codec.engine import StripeCodec

__all__ = [
    "parallel_execute",
    "parallel_encode_into",
    "parallel_decode_into",
    "resolve_workers",
    "split_spans",
]

#: Span boundaries are aligned to the paper's packet size so workers
#: never share a cache line and spans map to whole packets.
SPAN_ALIGN = 4096

_pools: dict[int, ProcessPoolExecutor] = {}


def resolve_workers(workers: int | None) -> int:
    """``None``/``0`` → one worker per CPU; otherwise the given count."""
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


def split_spans(
    width: int, parts: int, align: int = SPAN_ALIGN
) -> list[tuple[int, int]]:
    """Split ``[0, width)`` into ≤ ``parts`` aligned contiguous spans.

    Interior boundaries are rounded to ``align``; degenerate (empty)
    spans are dropped, so narrow buffers yield fewer spans than workers.
    """
    if width <= 0:
        return []
    if parts <= 1:
        return [(0, width)]
    bounds = [0]
    for i in range(1, parts):
        cut = (width * i // parts) // align * align
        if cut > bounds[-1]:
            bounds.append(cut)
    bounds.append(width)
    return [
        (lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def _pool(workers: int) -> ProcessPoolExecutor:
    """A reusable executor for ``workers`` processes."""
    pool = _pools.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _pools[workers] = pool
    return pool


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _pools.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _pools.clear()


def _execute_span(
    plan_bytes: bytes,
    in_name: str,
    in_shape: tuple[int, int],
    out_name: str,
    out_shape: tuple[int, int],
    lo: int,
    hi: int,
    tile_bytes: int | None,
) -> None:
    """Worker body: run the plan over one column span of the shared bufs."""
    plan: CompiledPlan = pickle.loads(plan_bytes)
    shm_in = shared_memory.SharedMemory(name=in_name)
    try:
        shm_out = shared_memory.SharedMemory(name=out_name)
        try:
            ins = np.ndarray(in_shape, dtype=np.uint8, buffer=shm_in.buf)
            outs = np.ndarray(out_shape, dtype=np.uint8, buffer=shm_out.buf)
            plan.execute_into(
                [row[lo:hi] for row in ins],
                [row[lo:hi] for row in outs],
                tile_bytes=tile_bytes,
            )
            del ins, outs
        finally:
            shm_out.close()
    finally:
        shm_in.close()


def parallel_execute(
    plan: CompiledPlan,
    inputs: np.ndarray | Sequence[np.ndarray],
    outputs: np.ndarray | Sequence[np.ndarray],
    workers: int | None = None,
    tile_bytes: int | None = None,
) -> None:
    """Execute ``plan`` with the width split across worker processes.

    Byte-identical to ``plan.execute_into(inputs, outputs)`` for every
    worker count. Falls back to in-process execution when the width is
    too narrow to split or ``workers`` resolves to 1. Input rows are
    gathered into shared memory and outputs scattered back, so callers
    keep ordinary numpy arrays or views.
    """
    workers = resolve_workers(workers)
    ins = plan._as_rows(inputs, plan.num_inputs, "input")
    outs = plan._as_rows(outputs, len(plan.outputs), "output")
    if not outs:
        return
    width = outs[0].shape[0]
    spans = split_spans(width, workers)
    if len(spans) <= 1:
        plan.execute_into(ins, outs, tile_bytes=tile_bytes)
        return
    n_in, n_out = len(ins), len(outs)
    shm_in = shared_memory.SharedMemory(
        create=True, size=max(n_in * width, 1)
    )
    try:
        shm_out = shared_memory.SharedMemory(create=True, size=n_out * width)
        try:
            shared_ins = np.ndarray(
                (n_in, width), dtype=np.uint8, buffer=shm_in.buf
            )
            for i, row in enumerate(ins):
                shared_ins[i] = row
            plan_bytes = pickle.dumps(plan)
            futures = [
                _pool(workers).submit(
                    _execute_span,
                    plan_bytes,
                    shm_in.name,
                    (n_in, width),
                    shm_out.name,
                    (n_out, width),
                    lo,
                    hi,
                    tile_bytes,
                )
                for lo, hi in spans
            ]
            for future in futures:
                future.result()
            shared_outs = np.ndarray(
                (n_out, width), dtype=np.uint8, buffer=shm_out.buf
            )
            for i, row in enumerate(outs):
                row[:] = shared_outs[i]
            del shared_ins, shared_outs
        finally:
            shm_out.close()
            shm_out.unlink()
    finally:
        shm_in.close()
        shm_in.unlink()


def parallel_encode_into(
    codec: StripeCodec,
    data: np.ndarray,
    out: np.ndarray | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Multicore :meth:`StripeCodec.encode_into` (same bytes, any count)."""
    code = codec.code
    if out is None:
        out = np.empty((code.num_parity, data.shape[1]), dtype=np.uint8)
    parallel_execute(
        codec.encode_plan,
        data,
        out,
        workers=workers,
        tile_bytes=codec.tile_bytes,
    )
    return out


def parallel_decode_into(
    codec: StripeCodec,
    failed: tuple[int, ...],
    known: np.ndarray,
    out: np.ndarray | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Multicore :meth:`StripeCodec.decode_into` (same bytes, any count)."""
    decoder = codec.code.decoder_for(failed)
    if out is None:
        out = np.empty(
            (len(decoder.plan.unknown_positions), known.shape[1]),
            dtype=np.uint8,
        )
    parallel_execute(
        decoder.compiled_plan(),
        known,
        out,
        workers=workers,
        tile_bytes=codec.tile_bytes,
    )
    return out
