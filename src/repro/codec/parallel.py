"""Multicore XOR execution: compiled plans fanned out over processes.

The compiled engine is single-threaded numpy; past memory-bandwidth
saturation of one core, the only way further is more cores. XOR plans
are embarrassingly parallel along the packet width — every output byte
column depends only on the same byte column of the inputs — so the
fan-out **splits the stripe range**: each worker executes the *same*
:class:`~repro.bitmatrix.plan.CompiledPlan` over a disjoint, 4 KiB-
aligned column span of shared-memory input/output buffers. Results are
byte-identical for any worker count because every output byte is
produced by exactly one worker running exactly the sequential program.

Mechanics: inputs are gathered into one ``multiprocessing.shared_memory``
segment, the pickled plan plus segment names, per-row byte offsets and
the span bounds go to a ``ProcessPoolExecutor``, workers attach and
execute in place, and the parent scatters the output segment back.
Worker pools are created once per worker count and reused across calls,
and the shared-memory segments are pooled too (grown geometrically,
unlinked at interpreter exit), so steady-state fan-out pays neither
fork/spawn nor segment create/unlink cost.

**Zero-copy fan-out**: the gather/scatter copies are pure overhead when
the caller's buffers already live in a pool-owned segment.
:func:`shared_empty` hands out uint8 matrices backed by pooled shared
memory; :func:`parallel_execute` recognizes rows residing in any pooled
segment (by address range) and passes workers the segment name plus the
rows' true offsets instead of copying — the batched rebuild path of
``ArrayStore`` and the throughput measurers allocate their wide grids
this way. A ``shared_empty`` matrix stays valid until the next
``shared_empty`` call **for the same role with a larger size** (the pool
grows by replacing segments), so treat it as a transient batch buffer:
allocate, fill, execute, read back, re-request.

Fan-out only pays past a per-worker size threshold: dispatching to the
pool and copying through shared memory cost real time, and below roughly
a megabyte per worker the serial path always wins (the regression the
first BENCH_engine.json recorded — forced 2- and 4-worker fan-out on a
1-CPU host ran 5x slower than serial). An **auto** worker count
(``workers=None`` or ``0``) therefore measures, once per process, the
pool's round-trip dispatch latency against serial XOR throughput, and
engages the pool only when every worker gets at least
:func:`fanout_threshold_bytes` of span — serial otherwise. An explicit
integer ``workers`` remains a forced count, bypassing the threshold
(tests rely on forced fan-out being byte-identical at any width).
"""

from __future__ import annotations

import atexit
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.bitmatrix.plan import CompiledPlan
from repro.codec.engine import StripeCodec

__all__ = [
    "auto_worker_count",
    "fanout_threshold_bytes",
    "parallel_execute",
    "parallel_encode_into",
    "parallel_decode_into",
    "resolve_workers",
    "shared_empty",
    "split_spans",
]

#: Span boundaries are aligned to the paper's packet size so workers
#: never share a cache line and spans map to whole packets.
SPAN_ALIGN = 4096

#: Never fan out spans smaller than this, whatever calibration says:
#: below 1 MiB per worker the shared-memory copies alone dominate.
MIN_SPAN_BYTES = 1 << 20

#: Safety margin over the measured dispatch-latency break-even point.
#: Fan-out must *clearly* win before auto mode engages the pool.
_THRESHOLD_MARGIN = 4.0

_pools: dict[int, ProcessPoolExecutor] = {}

#: Calibrated per-worker span thresholds, keyed by worker count
#: (measured once per process; tests may pre-seed to force behavior).
_auto_thresholds: dict[int, int] = {}


def resolve_workers(workers: int | None) -> int:
    """``None``/``0`` → one worker per CPU; otherwise the given count.

    This is the *forced* resolution. :func:`parallel_execute` resolves
    auto requests through :func:`auto_worker_count` instead, which also
    applies the measured per-worker size threshold.
    """
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return workers


def _serial_xor_bytes_per_second() -> float:
    """Streaming XOR bandwidth of the serial engine, from the shared
    host calibration (measured once per process in
    :mod:`repro.bitmatrix.tuning` — the same roofline the tile policy
    and ``bench_engine.py`` use, so the fan-out threshold is calibrated
    against the *fused* serial kernel's actual ceiling)."""
    from repro.bitmatrix.tuning import host_profile

    return host_profile().xor_gib_s * (1 << 30)


def _noop() -> None:
    """Worker no-op used to measure pool dispatch latency."""


def _pool_round_trip_seconds(workers: int) -> float:
    """Best-of-5 latency of dispatching one task batch to the pool."""
    pool = _pool(workers)
    pool.submit(_noop).result()  # absorb the one-time spawn cost
    best = float("inf")
    for _ in range(5):
        t0 = time.perf_counter()
        futures = [pool.submit(_noop) for _ in range(workers)]
        for future in futures:
            future.result()
        best = min(best, time.perf_counter() - t0)
    return best


def fanout_threshold_bytes(workers: int) -> int:
    """Per-worker span bytes below which fan-out loses to serial.

    Calibrated once per process and worker count: the pool's measured
    round-trip dispatch latency, converted to bytes at the measured
    serial XOR rate, times a safety margin — floored at
    :data:`MIN_SPAN_BYTES`. Pre-seed :data:`_auto_thresholds` in tests
    to pin the policy without timing noise.
    """
    threshold = _auto_thresholds.get(workers)
    if threshold is None:
        overhead = _pool_round_trip_seconds(workers)
        rate = _serial_xor_bytes_per_second()
        threshold = max(
            MIN_SPAN_BYTES, int(_THRESHOLD_MARGIN * overhead * rate)
        )
        _auto_thresholds[workers] = threshold
    return threshold


def auto_worker_count(width: int) -> int:
    """Workers the auto policy picks for a ``width``-byte span.

    1 (serial) on single-CPU hosts or when the width cannot give every
    worker at least :func:`fanout_threshold_bytes`; otherwise as many
    CPUs as the width supports.
    """
    cpus = os.cpu_count() or 1
    if cpus <= 1 or width < 2 * MIN_SPAN_BYTES:
        return 1
    count = min(cpus, width // fanout_threshold_bytes(cpus))
    return max(1, count)


def split_spans(
    width: int, parts: int, align: int = SPAN_ALIGN
) -> list[tuple[int, int]]:
    """Split ``[0, width)`` into ≤ ``parts`` aligned contiguous spans.

    Interior boundaries are rounded to ``align``; degenerate (empty)
    spans are dropped, so narrow buffers yield fewer spans than workers.
    """
    if width <= 0:
        return []
    if parts <= 1:
        return [(0, width)]
    bounds = [0]
    for i in range(1, parts):
        cut = (width * i // parts) // align * align
        if cut > bounds[-1]:
            bounds.append(cut)
    bounds.append(width)
    return [
        (lo, hi) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
    ]


def _pool(workers: int) -> ProcessPoolExecutor:
    """A reusable executor for ``workers`` processes."""
    pool = _pools.get(workers)
    if pool is None:
        pool = ProcessPoolExecutor(max_workers=workers)
        _pools[workers] = pool
    return pool


class _SegmentPool:
    """Shared-memory segments reused across fan-out calls.

    Creating and unlinking a ``SharedMemory`` segment per call costs a
    pair of syscalls plus page faults on first touch — measurable against
    sub-gigabyte workloads. The pool keeps one segment per role
    (gather/scatter), grown geometrically when a call needs more, and
    unlinks everything at interpreter exit.
    """

    def __init__(self) -> None:
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._retired: list[shared_memory.SharedMemory] = []

    def get(self, role: str, nbytes: int) -> shared_memory.SharedMemory:
        """A segment of at least ``nbytes`` for ``role``, reused if big
        enough, else replaced with one grown geometrically."""
        segment = self._segments.get(role)
        if segment is not None and segment.size >= nbytes:
            return segment
        size = max(nbytes, 1)
        if segment is not None:
            size = max(size, 2 * segment.size)
            self._retire(segment)
        segment = shared_memory.SharedMemory(create=True, size=size)
        self._segments[role] = segment
        return segment

    def _retire(self, segment: shared_memory.SharedMemory) -> None:
        """Unlink a replaced segment but defer its close to interpreter
        exit.

        A caller may still hold a :func:`shared_empty` matrix backed by
        the old segment, and ``close()`` unmaps the pages out from under
        such views (a segfault, not an exception — numpy's buffer export
        does not reliably block ``mmap.close``). Unlinking immediately
        drops the name so no new attach can find it; the mapping stays
        valid for surviving views. Growth events are rare (geometric),
        so the deferred mappings are bounded.
        """
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        self._retired.append(segment)

    def locate(
        self, rows: Sequence[np.ndarray], width: int
    ) -> tuple[str, list[int]] | None:
        """``(segment_name, per-row byte offsets)`` if **every** row lives
        inside one currently pooled segment, else ``None``.

        Detection is by address range, so any contiguous view into a
        :func:`shared_empty` matrix (or into the pool's own gather
        buffers) qualifies — the caller never tags buffers explicitly.
        """
        if not rows:
            return None
        first = rows[0].ctypes.data
        for name, base, size in self._address_ranges():
            if not base <= first <= base + size - width:
                continue
            offsets = []
            for row in rows:
                off = row.ctypes.data - base
                if row.strides[0] != 1 or not 0 <= off <= size - width:
                    return None
                offsets.append(off)
            return name, offsets
        return None

    def _address_ranges(self) -> list[tuple[str, int, int]]:
        """Live ``(name, base_address, size)`` of every pooled segment."""
        return [
            (
                segment.name,
                np.frombuffer(segment.buf, dtype=np.uint8).ctypes.data,
                segment.size,
            )
            for segment in self._segments.values()
        ]

    def release(self) -> None:
        """Close and unlink every pooled segment (retired ones too)."""
        for segment in list(self._segments.values()) + self._retired:
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            try:
                segment.close()
            except BufferError:  # pragma: no cover - caller still holds views
                pass
        self._segments.clear()
        self._retired.clear()


_segments = _SegmentPool()


def shared_empty(shape: tuple[int, int], role: str = "user") -> np.ndarray:
    """An uninitialized ``(rows, width)`` uint8 matrix in pooled shared
    memory — the zero-copy allocator for fan-out callers.

    Rows (or contiguous views of them) handed to
    :func:`parallel_execute` are recognized by address and passed to
    workers as segment offsets, skipping the gather/scatter copies
    entirely. ``role`` names the pooled segment: repeated calls with the
    same role and a size that fits reuse the same memory (zero
    allocation steady-state); a larger request replaces the segment, so
    a previously returned matrix must not be used across such a call.
    """
    rows, width = shape
    if rows < 0 or width < 0:
        raise ValueError(f"shape must be non-negative, got {shape}")
    segment = _segments.get(f"user:{role}", rows * width)
    return np.ndarray(shape, dtype=np.uint8, buffer=segment.buf)


@atexit.register
def _shutdown_pools() -> None:  # pragma: no cover - interpreter teardown
    _segments.release()
    for pool in _pools.values():
        pool.shutdown(wait=False, cancel_futures=True)
    _pools.clear()


def _execute_span(
    plan_bytes: bytes,
    in_name: str,
    in_offsets: list[int],
    out_name: str,
    out_offsets: list[int],
    width: int,
    lo: int,
    hi: int,
    tile_bytes: int | None,
) -> None:
    """Worker body: run the plan over one column span of the shared bufs.

    Rows are addressed as ``(segment name, byte offset, width)`` — one
    signature for gathered buffers (offsets are ``i * width``) and
    zero-copy caller buffers (offsets are wherever the rows actually
    live, possibly in the same segment for inputs and outputs).
    """
    plan: CompiledPlan = pickle.loads(plan_bytes)
    shm_in = shared_memory.SharedMemory(name=in_name)
    try:
        shm_out = (
            shm_in
            if out_name == in_name
            else shared_memory.SharedMemory(name=out_name)
        )
        try:
            in_flat = np.ndarray(
                (shm_in.size,), dtype=np.uint8, buffer=shm_in.buf
            )
            out_flat = np.ndarray(
                (shm_out.size,), dtype=np.uint8, buffer=shm_out.buf
            )
            plan.execute_into(
                [in_flat[off + lo : off + hi] for off in in_offsets],
                [out_flat[off + lo : off + hi] for off in out_offsets],
                tile_bytes=tile_bytes,
            )
            del in_flat, out_flat
        finally:
            if shm_out is not shm_in:
                shm_out.close()
    finally:
        shm_in.close()


def parallel_execute(
    plan: CompiledPlan,
    inputs: np.ndarray | Sequence[np.ndarray],
    outputs: np.ndarray | Sequence[np.ndarray],
    workers: int | None = None,
    tile_bytes: int | None = None,
) -> None:
    """Execute ``plan`` with the width split across worker processes.

    Byte-identical to ``plan.execute_into(inputs, outputs)`` for every
    worker count. ``workers=None`` (or 0) is **auto**: the pool engages
    only when :func:`auto_worker_count` says the width clears the
    measured per-worker overhead threshold — serial otherwise. An
    explicit count forces fan-out regardless (falling back to in-process
    execution only when the width is too narrow to split at all). Input
    rows are gathered into pooled shared memory and outputs scattered
    back, so callers keep ordinary numpy arrays or views.
    """
    ins = plan._as_rows(inputs, plan.num_inputs, "input")
    outs = plan._as_rows(outputs, len(plan.outputs), "output")
    if not outs:
        return
    width = outs[0].shape[0]
    if workers is None or workers <= 0:
        workers = auto_worker_count(width)
    spans = split_spans(width, workers)
    if len(spans) <= 1:
        plan.execute_into(ins, outs, tile_bytes=tile_bytes)
        return
    n_in, n_out = len(ins), len(outs)

    # Zero-copy when the caller's rows already live in pooled shared
    # memory (shared_empty matrices or views into them); gather/scatter
    # through the pool's own staging segments otherwise.
    in_hit = _segments.locate(ins, width)
    if in_hit is None:
        shm_in = _segments.get("in", n_in * width)
        staged = np.ndarray((n_in, width), dtype=np.uint8, buffer=shm_in.buf)
        for i, row in enumerate(ins):
            staged[i] = row
        del staged
        in_name = shm_in.name
        in_offsets = [i * width for i in range(n_in)]
    else:
        in_name, in_offsets = in_hit
    out_hit = _segments.locate(outs, width)
    if out_hit is None:
        shm_out = _segments.get("out", n_out * width)
        out_name = shm_out.name
        out_offsets = [i * width for i in range(n_out)]
    else:
        out_name, out_offsets = out_hit

    plan_bytes = pickle.dumps(plan)
    futures = [
        _pool(workers).submit(
            _execute_span,
            plan_bytes,
            in_name,
            in_offsets,
            out_name,
            out_offsets,
            width,
            lo,
            hi,
            tile_bytes,
        )
        for lo, hi in spans
    ]
    for future in futures:
        future.result()
    if out_hit is None:
        scattered = np.ndarray(
            (n_out, width), dtype=np.uint8, buffer=shm_out.buf
        )
        for i, row in enumerate(outs):
            row[:] = scattered[i]
        del scattered


def parallel_encode_into(
    codec: StripeCodec,
    data: np.ndarray,
    out: np.ndarray | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Multicore :meth:`StripeCodec.encode_into` (same bytes, any count)."""
    code = codec.code
    if out is None:
        out = np.empty((code.num_parity, data.shape[1]), dtype=np.uint8)
    parallel_execute(
        codec.encode_plan,
        data,
        out,
        workers=workers,
        tile_bytes=codec.tile_bytes,
    )
    return out


def parallel_decode_into(
    codec: StripeCodec,
    failed: tuple[int, ...],
    known: np.ndarray,
    out: np.ndarray | None = None,
    workers: int | None = None,
) -> np.ndarray:
    """Multicore :meth:`StripeCodec.decode_into` (same bytes, any count)."""
    decoder = codec.code.decoder_for(failed)
    if out is None:
        out = np.empty(
            (len(decoder.plan.unknown_positions), known.shape[1]),
            dtype=np.uint8,
        )
    parallel_execute(
        decoder.compiled_plan(),
        known,
        out,
        workers=workers,
        tile_bytes=codec.tile_bytes,
    )
    return out
