"""Structured matrices over GF(2^w) and their GF(2) bit-matrix projections.

Cauchy Reed-Solomon coding (Bloemer et al. 1995, the paper's [4]) replaces
Galois-field multiplications by XORs of whole machine words: every field
element ``e`` acts on a ``w``-bit column vector as a ``w x w`` bit matrix
whose ``j``-th column is ``e * x^j``. Projecting a ``m x k`` Cauchy matrix
element-wise yields an ``mw x kw`` bit matrix whose ones determine the XOR
cost — which is exactly why Cauchy-RS has high update complexity (Sec. II-A1
of the TIP paper).
"""

from __future__ import annotations

import numpy as np

from repro.gf.field import GF2w

__all__ = [
    "cauchy_matrix",
    "vandermonde_matrix",
    "systematic_vandermonde",
    "element_to_bitmatrix",
    "gf_matrix_to_bitmatrix",
    "optimize_cauchy_ones",
]


def cauchy_matrix(
    field: GF2w, rows: int, cols: int, xs: list[int] | None = None,
    ys: list[int] | None = None,
) -> np.ndarray:
    """Build a ``rows x cols`` Cauchy matrix ``C[i][j] = 1/(x_i + y_j)``.

    ``xs`` and ``ys`` must be disjoint lists of distinct field elements;
    by default ``ys = 0..cols-1`` and ``xs = cols..cols+rows-1``, which is
    the textbook (and Jerasure "original") choice.

    Every square submatrix of a Cauchy matrix is invertible, which makes
    the systematic code built from it MDS.
    """
    if xs is None:
        xs = list(range(cols, cols + rows))
    if ys is None:
        ys = list(range(cols))
    if len(xs) != rows or len(ys) != cols:
        raise ValueError("xs/ys lengths must match rows/cols")
    if rows + cols > field.size:
        raise ValueError(
            f"GF(2^{field.w}) too small for a {rows}x{cols} Cauchy matrix"
        )
    if set(xs) & set(ys) or len(set(xs)) != rows or len(set(ys)) != cols:
        raise ValueError("xs and ys must be disjoint sets of distinct elements")
    out = np.zeros((rows, cols), dtype=np.int64)
    for i, x in enumerate(xs):
        for j, y in enumerate(ys):
            out[i, j] = field.inv(x ^ y)
    return out


def vandermonde_matrix(field: GF2w, rows: int, cols: int) -> np.ndarray:
    """Build the ``rows x cols`` Vandermonde matrix ``V[i][j] = i^j``.

    Uses evaluation points ``0, 1, ..., rows-1`` (with ``0^0 = 1``).
    """
    if rows > field.size:
        raise ValueError("more rows than field elements")
    out = np.zeros((rows, cols), dtype=np.int64)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = field.pow(i, j) if (i or not j) else (1 if j == 0 else 0)
    # fix row 0: 0^0 = 1, 0^j = 0
    out[0, :] = 0
    out[0, 0] = 1
    return out


def systematic_vandermonde(field: GF2w, n: int, k: int) -> np.ndarray:
    """Return an ``n x k`` systematic MDS generator (identity on top).

    Construction: start from an ``n x k`` Vandermonde matrix (any ``k``
    rows independent for ``n <= 2^w``), then column-reduce so the top
    ``k x k`` block becomes the identity. Column operations preserve the
    any-k-rows-invertible property, so the result is an MDS generator with
    parity rows ``k..n-1`` — the classic RAID Reed-Solomon construction.
    """
    if k <= 0 or n <= k:
        raise ValueError("need n > k > 0")
    if n > field.size:
        raise ValueError(f"n={n} exceeds GF(2^{field.w}) size")
    mat = vandermonde_matrix(field, n, k)
    # Gauss-Jordan on columns using the top k rows as pivots.
    for col in range(k):
        pivot = next(
            (c for c in range(col, k) if mat[col, c] != 0), None
        )
        if pivot is None:  # pragma: no cover - cannot happen for Vandermonde
            raise ValueError("degenerate Vandermonde matrix")
        if pivot != col:
            mat[:, [col, pivot]] = mat[:, [pivot, col]]
        scale = field.inv(int(mat[col, col]))
        for row in range(n):
            mat[row, col] = field.mul(int(mat[row, col]), scale)
        for other in range(k):
            if other == col or mat[col, other] == 0:
                continue
            factor = int(mat[col, other])
            for row in range(n):
                mat[row, other] ^= field.mul(factor, int(mat[row, col]))
    return mat


def element_to_bitmatrix(field: GF2w, element: int) -> np.ndarray:
    """Project a field element to its ``w x w`` GF(2) multiplication matrix.

    Column ``j`` of the result is the bit representation of
    ``element * x^j`` — multiplying a bit-vector by this matrix equals
    field multiplication by ``element``.
    """
    w = field.w
    out = np.zeros((w, w), dtype=np.uint8)
    for j in range(w):
        product = field.mul(element, 1 << j)
        for i in range(w):
            out[i, j] = (product >> i) & 1
    return out


def gf_matrix_to_bitmatrix(field: GF2w, matrix: np.ndarray) -> np.ndarray:
    """Project an element matrix to its block bit matrix (Cauchy-RS style)."""
    matrix = np.asarray(matrix, dtype=np.int64)
    rows, cols = matrix.shape
    w = field.w
    out = np.zeros((rows * w, cols * w), dtype=np.uint8)
    for i in range(rows):
        for j in range(cols):
            out[i * w:(i + 1) * w, j * w:(j + 1) * w] = element_to_bitmatrix(
                field, int(matrix[i, j])
            )
    return out


def optimize_cauchy_ones(field: GF2w, cauchy: np.ndarray) -> np.ndarray:
    """Reduce the popcount of a Cauchy matrix's bit projection.

    Implements the row-scaling heuristic of Plank & Xu ("Optimizing Cauchy
    Reed-Solomon codes...", NCA'06, the paper's [32]): dividing a whole row
    of the Cauchy matrix by a nonzero constant keeps every square submatrix
    invertible; for each row we pick the divisor that minimizes the number
    of ones in the row's bit projection. Fewer ones = fewer XORs = lower
    encoding cost (but the update complexity remains far from optimal,
    which is the TIP paper's point).
    """
    cauchy = np.array(cauchy, dtype=np.int64, copy=True)
    rows, cols = cauchy.shape
    ones_of: dict[int, int] = {}

    def popcount(element: int) -> int:
        cached = ones_of.get(element)
        if cached is None:
            cached = int(element_to_bitmatrix(field, element).sum())
            ones_of[element] = cached
        return cached

    for i in range(rows):
        best_div, best_ones = 1, sum(popcount(int(e)) for e in cauchy[i])
        for divisor in range(2, field.size):
            total = sum(
                popcount(field.div(int(e), divisor)) for e in cauchy[i]
            )
            if total < best_ones:
                best_div, best_ones = divisor, total
        if best_div != 1:
            for j in range(cols):
                cauchy[i, j] = field.div(int(cauchy[i, j]), best_div)
    return cauchy
