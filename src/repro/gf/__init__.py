"""Galois field GF(2^w) arithmetic and structured matrix constructions.

This subpackage is the substrate for the Reed-Solomon family of baselines:

* :class:`repro.gf.field.GF2w` — table-driven field arithmetic for any
  word size ``1 <= w <= 16``.
* :mod:`repro.gf.matrices` — Cauchy and Vandermonde matrix constructions
  over GF(2^w), plus the projection of field elements to ``w x w`` bit
  matrices used by Cauchy Reed-Solomon coding (Bloemer et al. 1995).
"""

from repro.gf.field import GF2w, DEFAULT_PRIMITIVE_POLYS
from repro.gf.matrices import (
    cauchy_matrix,
    vandermonde_matrix,
    systematic_vandermonde,
    element_to_bitmatrix,
    gf_matrix_to_bitmatrix,
)

__all__ = [
    "GF2w",
    "DEFAULT_PRIMITIVE_POLYS",
    "cauchy_matrix",
    "vandermonde_matrix",
    "systematic_vandermonde",
    "element_to_bitmatrix",
    "gf_matrix_to_bitmatrix",
]
