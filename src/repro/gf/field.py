"""Table-driven GF(2^w) finite-field arithmetic.

The field is represented by integers ``0 .. 2^w - 1`` interpreted as
polynomials over GF(2) modulo a primitive polynomial. Multiplication and
division go through discrete log / antilog tables, the classic approach
used by storage erasure-coding libraries (Jerasure, ISA-L).

Only small word sizes are needed here (Cauchy-RS uses the smallest ``w``
with ``2^w >= n``; classic RS uses ``w = 8``), but the implementation
supports any ``1 <= w <= 16``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF2w", "DEFAULT_PRIMITIVE_POLYS"]

# Primitive polynomials for GF(2^w), expressed with the top bit included
# (e.g. x^8+x^4+x^3+x^2+1 -> 0x11d). These match the Rijndael/Jerasure
# conventions where applicable.
DEFAULT_PRIMITIVE_POLYS: dict[int, int] = {
    1: 0b11,                # x + 1
    2: 0b111,               # x^2 + x + 1
    3: 0b1011,              # x^3 + x + 1
    4: 0b10011,             # x^4 + x + 1
    5: 0b100101,            # x^5 + x^2 + 1
    6: 0b1000011,           # x^6 + x + 1
    7: 0b10001001,          # x^7 + x^3 + 1
    8: 0x11D,               # x^8 + x^4 + x^3 + x^2 + 1
    9: 0b1000010001,        # x^9 + x^4 + 1
    10: 0b10000001001,      # x^10 + x^3 + 1
    11: 0b100000000101,     # x^11 + x^2 + 1
    12: 0b1000001010011,    # x^12 + x^6 + x^4 + x + 1
    13: 0b10000000011011,   # x^13 + x^4 + x^3 + x + 1
    14: 0b100010001000011,  # x^14 + x^10 + x^6 + x + 1
    15: 0b1000000000000011,  # x^15 + x + 1
    16: 0b10001000000001011,  # x^16 + x^12 + x^3 + x + 1
}


class GF2w:
    """Arithmetic in GF(2^w) with log/antilog tables.

    Instances are cached per ``(w, poly)`` so repeated constructions (one
    per code instance) share tables.
    """

    _cache: dict[tuple[int, int], "GF2w"] = {}

    def __new__(cls, w: int, poly: int | None = None) -> "GF2w":
        if not 1 <= w <= 16:
            raise ValueError(f"word size w must be in 1..16, got {w}")
        poly = DEFAULT_PRIMITIVE_POLYS[w] if poly is None else poly
        key = (w, poly)
        cached = cls._cache.get(key)
        if cached is not None:
            return cached
        self = super().__new__(cls)
        self._init_tables(w, poly)
        cls._cache[key] = self
        return self

    def _init_tables(self, w: int, poly: int) -> None:
        self.w = w
        self.poly = poly
        self.size = 1 << w
        self.max_element = self.size - 1
        # antilog[i] = alpha^i ; log[antilog[i]] = i
        antilog = np.zeros(2 * self.size, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        value = 1
        for power in range(self.max_element):
            if power > 0 and value == 1:
                # alpha's order divides max_element but is smaller: the
                # polynomial is irreducible-or-worse but not primitive.
                raise ValueError(
                    f"polynomial {poly:#x} is not primitive for GF(2^{w})"
                )
            antilog[power] = value
            log[value] = power
            value <<= 1
            if value & self.size:
                value ^= poly
            if value >= self.size:
                raise ValueError(
                    f"polynomial {poly:#x} has degree below {w}"
                )
        if value != 1:
            raise ValueError(
                f"polynomial {poly:#x} is not primitive for GF(2^{w})"
            )
        # Double the antilog table so mul never needs an explicit mod.
        antilog[self.max_element: 2 * self.max_element] = antilog[: self.max_element]
        self._antilog = antilog
        self._log = log

    # ------------------------------------------------------------------
    # scalar operations
    # ------------------------------------------------------------------
    def add(self, a: int, b: int) -> int:
        """Field addition (XOR)."""
        return a ^ b

    sub = add  # characteristic 2: subtraction is addition

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log tables."""
        if a == 0 or b == 0:
            return 0
        return int(self._antilog[self._log[a] + self._log[b]])

    def div(self, a: int, b: int) -> int:
        """Field division ``a / b``; raises ZeroDivisionError on b == 0."""
        if b == 0:
            raise ZeroDivisionError("division by zero in GF(2^w)")
        if a == 0:
            return 0
        return int(
            self._antilog[self._log[a] - self._log[b] + self.max_element]
        )

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ZeroDivisionError on a == 0."""
        if a == 0:
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        return int(self._antilog[self.max_element - self._log[a]])

    def pow(self, a: int, exponent: int) -> int:
        """Field exponentiation ``a ** exponent`` (exponent may be negative)."""
        if a == 0:
            if exponent == 0:
                return 1
            if exponent < 0:
                raise ZeroDivisionError("zero to a negative power")
            return 0
        log_a = int(self._log[a]) * exponent
        return int(self._antilog[log_a % self.max_element])

    def alpha_power(self, exponent: int) -> int:
        """Return ``alpha^exponent`` for the generator alpha = x."""
        return int(self._antilog[exponent % self.max_element])

    # ------------------------------------------------------------------
    # matrix / vector operations (dense int64 numpy arrays of elements)
    # ------------------------------------------------------------------
    def mat_mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Matrix product over the field. Small matrices; O(n^3) loops."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ValueError(f"shape mismatch: {a.shape} x {b.shape}")
        out = np.zeros((a.shape[0], b.shape[1]), dtype=np.int64)
        for i in range(a.shape[0]):
            for j in range(b.shape[1]):
                acc = 0
                for k in range(a.shape[1]):
                    acc ^= self.mul(int(a[i, k]), int(b[k, j]))
                out[i, j] = acc
        return out

    def mat_vec(self, a: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Matrix-vector product over the field."""
        return self.mat_mul(a, np.asarray(v, dtype=np.int64).reshape(-1, 1)).ravel()

    def mat_inv(self, a: np.ndarray) -> np.ndarray:
        """Invert a square matrix over the field (Gauss-Jordan).

        Raises ValueError if the matrix is singular.
        """
        a = np.array(a, dtype=np.int64, copy=True)
        size = a.shape[0]
        if a.shape != (size, size):
            raise ValueError(f"matrix must be square, got {a.shape}")
        inverse = np.eye(size, dtype=np.int64)
        for col in range(size):
            pivot = next(
                (row for row in range(col, size) if a[row, col] != 0), None
            )
            if pivot is None:
                raise ValueError("matrix is singular over GF(2^w)")
            if pivot != col:
                a[[col, pivot]] = a[[pivot, col]]
                inverse[[col, pivot]] = inverse[[pivot, col]]
            scale = self.inv(int(a[col, col]))
            for j in range(size):
                a[col, j] = self.mul(int(a[col, j]), scale)
                inverse[col, j] = self.mul(int(inverse[col, j]), scale)
            for row in range(size):
                if row == col or a[row, col] == 0:
                    continue
                factor = int(a[row, col])
                for j in range(size):
                    a[row, j] ^= self.mul(factor, int(a[col, j]))
                    inverse[row, j] ^= self.mul(factor, int(inverse[col, j]))
        return inverse

    # ------------------------------------------------------------------
    # bulk packet operations (byte-region multiply-accumulate, w == 8)
    # ------------------------------------------------------------------
    def mul_region(self, constant: int, region: np.ndarray) -> np.ndarray:
        """Multiply every byte of ``region`` by ``constant`` (w == 8 only).

        This is the hot operation of classic word-based Reed-Solomon; the
        table lookup is vectorized through a 256-entry product table.
        """
        if self.w != 8:
            raise ValueError("mul_region requires w == 8")
        region = np.asarray(region, dtype=np.uint8)
        if constant == 0:
            return np.zeros_like(region)
        if constant == 1:
            return region.copy()
        table = self.mul_table_row(constant)
        return table[region]

    def mul_table_row(self, constant: int) -> np.ndarray:
        """Return the 2^w-entry lookup table ``t[x] = constant * x``."""
        table = np.zeros(self.size, dtype=np.uint8 if self.w <= 8 else np.uint16)
        if constant:
            log_c = int(self._log[constant])
            nonzero = np.arange(1, self.size)
            table[nonzero] = self._antilog[log_c + self._log[nonzero]]
        return table

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF2w(w={self.w}, poly={self.poly:#x})"
