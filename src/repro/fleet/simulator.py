"""The event-driven fleet loop: thousands of stripes, one clock.

:class:`FleetSimulator` wires the pieces together: a
:class:`~repro.fleet.topology.Topology` populated by a placement
strategy, a :class:`~repro.fleet.events.FailureModel` feeding the
deterministic :class:`~repro.fleet.events.EventQueue`, a
:class:`~repro.fleet.repair.RepairScheduler` stretching rebuilds under
bandwidth contention, and a code model answering repairability.

Per-stripe bookkeeping distinguishes two erasure sets:

* the **permanent** set — chunks on fail-stopped disks plus latent
  sector errors. When the code model cannot repair it, the stripe's
  data is *lost*, permanently, and the loss instant is recorded.
* the **inaccessible** set — the permanent set plus chunks on disks
  that are merely down (machine crash, rack power, partition). When
  that is unrepairable the stripe is *unavailable*: reads fail now,
  but the data returns when the domain comes back.

State is tracked incrementally so fleet-sized runs stay fast: every
chunk carries a bad-source bitmask (failed / down / latent), stripes
carry bad-chunk counters, and only stripes whose counters actually
moved get reclassified — with the code model consulted only in the
ambiguous (≥ 2 bad chunks) cases, through a memoized repairability
query. A rack power event touching hundreds of stripes therefore costs
hundreds of counter bumps, not hundreds of decoder consultations.

Unavailability and degraded-stripe time integrate between events
(count × dt), so the reported fractions are exact for the simulated
trajectory, not sampled. Every effective event is appended to
``event_log``; two runs of the same scenario and seed produce identical
logs — the determinism contract the replay tests pin down.

RNG discipline: one placement stream and one event stream, both
spawned from the scenario seed via :class:`numpy.random.SeedSequence`.
Every stochastic draw happens inside an event handler, and the queue
pops in a deterministic order, so the draw sequence — and therefore
the entire history — is a pure function of (scenario, seed, trial
index).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fleet.codemodel import make_fleet_code
from repro.fleet.events import (
    DISK_FAIL,
    DISK_REPAIRED,
    LATENT_MINT,
    LATENT_SCRUB,
    MACHINE_DOWN,
    MACHINE_UP,
    PARTITION_END,
    PARTITION_START,
    RACK_DOWN,
    RACK_UP,
    EventQueue,
    make_failure_model,
)
from repro.fleet.placement import make_placement
from repro.fleet.repair import RepairBandwidth, RepairScheduler
from repro.fleet.scenario import FleetScenario
from repro.fleet.topology import Topology

__all__ = [
    "FleetResult",
    "FleetSummary",
    "FleetSimulator",
    "simulate_fleet",
    "run_fleet_trials",
]

#: Chunk bad-source bits. FAILED and LATENT are *permanent* (data on
#: that chunk is gone until rebuilt); DOWN is transient reachability.
_FAILED = 1
_DOWN = 2
_LATENT = 4
_PERM = _FAILED | _LATENT


@dataclass
class FleetResult:
    """Metrics of one fleet trial."""

    scenario: FleetScenario
    duration_hours: float
    stripes: int
    #: (time, stripe id) of every permanent stripe loss.
    losses: list[tuple[float, int]] = field(default_factory=list)
    unavailable_stripe_hours: float = 0.0
    degraded_stripe_hours: float = 0.0
    repair_read_mib: float = 0.0
    repair_write_mib: float = 0.0
    cross_rack_read_mib: float = 0.0
    repairs_completed: int = 0
    repair_hours_total: float = 0.0
    event_counts: dict[str, int] = field(default_factory=dict)
    #: (time, kind, subject) of every effective event, in pop order.
    event_log: list[tuple[float, str, int]] = field(default_factory=list)
    #: (time, degraded stripes, unavailable stripes, active repairs)
    #: sampled after every effective event.
    series: list[tuple[float, int, int, int]] = field(default_factory=list)

    @property
    def lost_stripes(self) -> int:
        """Stripes that permanently lost data."""
        return len(self.losses)

    @property
    def data_loss_probability(self) -> float:
        """Fraction of stripes lost within the horizon."""
        return self.lost_stripes / self.stripes

    @property
    def any_loss(self) -> bool:
        """Did the fleet lose any stripe at all?"""
        return bool(self.losses)

    @property
    def first_loss_hours(self) -> float | None:
        """Time of the first stripe loss (None if none occurred)."""
        return self.losses[0][0] if self.losses else None

    @property
    def unavailability_fraction(self) -> float:
        """Unavailable stripe-hours over total stripe-hours."""
        return self.unavailable_stripe_hours / (
            self.stripes * self.duration_hours
        )

    @property
    def mean_repair_hours(self) -> float:
        """Mean rebuild duration (0 when nothing was repaired)."""
        if not self.repairs_completed:
            return 0.0
        return self.repair_hours_total / self.repairs_completed


@dataclass
class FleetSummary:
    """Aggregate over independent trials of one scenario."""

    scenario: FleetScenario
    trials: int
    #: Fraction of trials that lost at least one stripe.
    loss_trial_fraction: float
    #: Mean per-trial stripe-loss probability.
    mean_loss_probability: float
    mean_unavailability: float
    mean_repair_read_mib: float
    mean_repair_write_mib: float
    mean_cross_rack_read_mib: float
    mean_repair_hours: float
    total_losses: int


class FleetSimulator:
    """One seeded trial of one scenario. Build, :meth:`run`, read metrics."""

    def __init__(
        self,
        scenario: FleetScenario,
        seed_seq: np.random.SeedSequence | None = None,
    ) -> None:
        self.scenario = scenario
        self.topology = Topology.parse(scenario.topology)
        self.code = make_fleet_code(scenario.code, scenario.n)
        self.model = make_failure_model(
            scenario.failure_model, scenario.mttf_hours
        )
        self.bandwidth = RepairBandwidth(
            disk_mib_s=scenario.disk_mib_s,
            cross_rack_mib_s=scenario.cross_rack_mib_s,
        )
        root = seed_seq or np.random.SeedSequence(scenario.seed)
        placement_seq, event_seq = root.spawn(2)
        placement_rng = np.random.default_rng(placement_seq)
        self.rng = np.random.default_rng(event_seq)

        kwargs = (
            {"permutations": scenario.copyset_permutations}
            if scenario.placement == "copyset"
            else {}
        )
        self.placement = make_placement(
            scenario.placement, self.topology, self.code.width, **kwargs
        )
        #: stripe id -> tuple of hosting disk ids (chunk i on disks[i]).
        self.assignment = self.placement.assign(
            scenario.stripes, placement_rng
        )
        #: disk -> [(stripe, chunk index)] — the rebuild work list.
        self.stripes_on_disk: dict[int, list[tuple[int, int]]] = {
            d: [] for d in range(self.topology.num_disks)
        }
        for stripe, disks in enumerate(self.assignment):
            for chunk, disk in enumerate(disks):
                self.stripes_on_disk[disk].append((stripe, chunk))

        # --- mutable cluster state ---
        self.now = 0.0
        self.failed_disks: set[int] = set()
        #: disk -> count of transient outage sources covering it (its
        #: machine AND its rack can be down at once; the disk is down
        #: while the depth is nonzero).
        self._down_depth = [0] * self.topology.num_disks
        width = self.code.width
        #: per-chunk bad-source bitmask, the incremental ground truth.
        self._chunk_state = [bytearray(width) for _ in range(scenario.stripes)]
        self._bad_count = [0] * scenario.stripes
        self._perm_count = [0] * scenario.stripes
        self._dirty: set[int] = set()
        #: latent id -> (stripe, chunk, disk); ids are mint order.
        self._latents: dict[int, tuple[int, int, int]] = {}
        self._latent_seq = 0
        self.lost: set[int] = set()
        self._unavailable: set[int] = set()
        self._degraded: set[int] = set()
        self._fail_version: dict[int, int] = {}
        #: disk -> time its current outage began (for repair durations).
        self._repair_starts: dict[int, float] = {}
        #: is every single-chunk erasure repairable? (the fast path for
        #: the overwhelmingly common one-bad-chunk stripe state)
        self._single_ok = all(
            self.code.is_repairable(frozenset((c,))) for c in range(width)
        )

        self.queue = EventQueue()
        self.repairs = RepairScheduler(self.bandwidth)
        self.result = FleetResult(
            scenario=scenario,
            duration_hours=scenario.duration_hours,
            stripes=scenario.stripes,
        )
        self._last_integrate = 0.0
        self._schedule_initial()

    # ------------------------------------------------------------------
    # scheduling helpers
    # ------------------------------------------------------------------
    def _schedule_disk_fail(self, disk: int, at: float) -> None:
        version = self._fail_version.get(disk, 0) + 1
        self._fail_version[disk] = version
        self.queue.schedule(at, DISK_FAIL, disk, version)

    def _schedule_initial(self) -> None:
        model, rng = self.model, self.rng
        for disk in range(self.topology.num_disks):
            self._schedule_disk_fail(disk, model.next_disk_failure(rng))
        if model.latent_rate > 0:
            for disk in range(self.topology.num_disks):
                self.queue.schedule(
                    model.next_poisson(model.latent_rate, rng),
                    LATENT_MINT, disk,
                )
        if model.machine_failure_rate > 0:
            for machine in range(self.topology.num_machines):
                self.queue.schedule(
                    model.next_poisson(model.machine_failure_rate, rng),
                    MACHINE_DOWN, machine,
                )
        if model.rack_failure_rate > 0:
            for rack in range(self.topology.racks):
                self.queue.schedule(
                    model.next_poisson(model.rack_failure_rate, rng),
                    RACK_DOWN, rack,
                )
        if model.partition_rate > 0:
            for rack in range(self.topology.racks):
                self.queue.schedule(
                    model.next_poisson(model.partition_rate, rng),
                    PARTITION_START, rack,
                )

    # ------------------------------------------------------------------
    # incremental stripe state
    # ------------------------------------------------------------------
    def _set_chunk_bit(self, stripe: int, chunk: int, bit: int, on: bool) -> None:
        """Flip one bad-source bit; maintain the stripe's counters."""
        row = self._chunk_state[stripe]
        old = row[chunk]
        new = (old | bit) if on else (old & ~bit)
        if new == old:
            return
        row[chunk] = new
        if (old != 0) != (new != 0):
            self._bad_count[stripe] += 1 if new else -1
        if bool(old & _PERM) != bool(new & _PERM):
            self._perm_count[stripe] += 1 if new & _PERM else -1
        self._dirty.add(stripe)

    def _mark_disk(self, disk: int, bit: int, on: bool) -> None:
        """Apply a disk-level transition to every hosted chunk.

        This is the hot loop of the whole simulator (a machine event
        touches every stripe on four disks), so the body of
        :meth:`_set_chunk_bit` is inlined here.
        """
        chunk_state = self._chunk_state
        bad_count, perm_count = self._bad_count, self._perm_count
        dirty = self._dirty
        for stripe, chunk in self.stripes_on_disk[disk]:
            row = chunk_state[stripe]
            old = row[chunk]
            new = (old | bit) if on else (old & ~bit)
            if new == old:
                continue
            row[chunk] = new
            if (old != 0) != (new != 0):
                bad_count[stripe] += 1 if new else -1
            if bool(old & _PERM) != bool(new & _PERM):
                perm_count[stripe] += 1 if new & _PERM else -1
            dirty.add(stripe)

    def _adjust_down(self, disks, delta: int) -> None:
        """Raise/lower the transient-outage depth of a disk range."""
        depth = self._down_depth
        for disk in disks:
            before = depth[disk] > 0
            depth[disk] += delta
            after = depth[disk] > 0
            if before != after:
                self._mark_disk(disk, _DOWN, after)

    def _chunks_with(self, stripe: int, mask: int) -> frozenset[int]:
        row = self._chunk_state[stripe]
        return frozenset(
            c for c in range(self.code.width) if row[c] & mask
        )

    def _reclassify_dirty(self) -> None:
        """Re-derive lost/unavailable/degraded for touched stripes.

        Sorted iteration keeps the loss order (and therefore the event
        log and loss records) deterministic when one event dirties many
        stripes at once.
        """
        dirty, self._dirty = self._dirty, set()
        for stripe in sorted(dirty):
            if stripe in self.lost:
                continue
            perm = self._perm_count[stripe]
            if perm:
                lost_now = (
                    not self._single_ok
                    if perm == 1
                    else not self.code.is_repairable(
                        self._chunks_with(stripe, _PERM)
                    )
                )
                if lost_now:
                    self.lost.add(stripe)
                    self.result.losses.append((self.now, stripe))
                    self._unavailable.discard(stripe)
                    self._degraded.discard(stripe)
                    continue
            bad = self._bad_count[stripe]
            if bad == 0:
                self._degraded.discard(stripe)
                self._unavailable.discard(stripe)
                continue
            self._degraded.add(stripe)
            available = (
                self._single_ok
                if bad == 1
                else self.code.is_repairable(self._chunks_with(stripe, 0xFF))
            )
            if available:
                self._unavailable.discard(stripe)
            else:
                self._unavailable.add(stripe)

    def _integrate_to(self, time: float) -> None:
        """Accumulate unavailability/degraded stripe-hours up to ``time``.

        Lost stripes count as unavailable forever, so the availability
        metric keeps its meaning after a loss event.
        """
        dt = time - self._last_integrate
        if dt > 0:
            self.result.unavailable_stripe_hours += (
                len(self._unavailable) + len(self.lost)
            ) * dt
            self.result.degraded_stripe_hours += len(self._degraded) * dt
            self._last_integrate = time

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_disk_fail(self, disk: int) -> None:
        self.failed_disks.add(disk)
        self._mark_disk(disk, _FAILED, True)
        # Rebuild job: read cost per the code model, write one chunk
        # per hosted stripe; lost stripes have nothing left to rebuild.
        read_mib = 0.0
        cross_mib = 0.0
        write_chunks = 0
        chunk_mib = self.scenario.chunk_mib
        rack = self.topology.rack_of_disk(disk)
        for stripe, chunk in self.stripes_on_disk[disk]:
            if stripe in self.lost:
                continue
            permanent = self._chunks_with(stripe, _PERM)
            reads = self.code.repair_read_chunks(permanent, chunk)
            disks = self.assignment[stripe]
            survivors = [
                d for c, d in enumerate(disks) if c not in permanent
            ]
            if survivors:
                cross = sum(
                    1 for d in survivors
                    if self.topology.rack_of_disk(d) != rack
                )
                cross_fraction = cross / len(survivors)
            else:
                cross_fraction = 0.0
            read_mib += reads * chunk_mib
            cross_mib += reads * chunk_mib * cross_fraction
            write_chunks += 1
        self.result.repair_read_mib += read_mib
        self.result.cross_rack_read_mib += cross_mib
        self.result.repair_write_mib += write_chunks * chunk_mib
        # The job's size is the reconstruction traffic it must move;
        # an empty disk (all its stripes already lost) repairs in one
        # chunk's time rather than instantaneously, keeping the event
        # pattern regular.
        job_mib = max(read_mib, chunk_mib)
        for target, finish, version in self.repairs.start(
            self.now, disk, job_mib
        ):
            self.queue.schedule(finish, DISK_REPAIRED, target, version)
        # Correlated burst: further same-rack failures inside the window.
        candidates = [
            d for d in self.topology.disks_of_rack(rack)
            if d != disk and d not in self.failed_disks
        ]
        for target, delay in self.model.burst_failures(self.rng, candidates):
            self._schedule_disk_fail(target, self.now + delay)
        self._reclassify_dirty()

    def _on_disk_repaired(self, disk: int, version: int) -> None:
        done, reschedules = self.repairs.complete(self.now, disk, version)
        if not done:
            return
        self.result.repairs_completed += 1
        self.result.repair_hours_total += (
            self.now - self._repair_starts.pop(disk, self.now)
        )
        for target, finish, new_version in reschedules:
            self.queue.schedule(finish, DISK_REPAIRED, target, new_version)
        self.failed_disks.discard(disk)
        self._mark_disk(disk, _FAILED, False)
        # The replacement disk starts with fresh sectors: latent errors
        # that lived on the dead disk are rebuilt away.
        for latent_id in [
            lid for lid, (_, _, d) in self._latents.items() if d == disk
        ]:
            stripe, chunk, _ = self._latents.pop(latent_id)
            self._set_chunk_bit(stripe, chunk, _LATENT, False)
        self._schedule_disk_fail(
            disk, self.now + self.model.next_disk_failure(self.rng)
        )
        self._reclassify_dirty()

    def _on_latent_mint(self, disk: int) -> None:
        # Next arrival of this disk's latent process first, so the draw
        # order is independent of whether this mint takes effect.
        self.queue.schedule(
            self.now + self.model.next_poisson(
                self.model.latent_rate, self.rng
            ),
            LATENT_MINT, disk,
        )
        hosted = self.stripes_on_disk[disk]
        if not hosted or disk in self.failed_disks:
            return
        stripe, chunk = hosted[int(self.rng.integers(len(hosted)))]
        if stripe in self.lost:
            return
        if self._chunk_state[stripe][chunk] & _LATENT:
            return
        self._set_chunk_bit(stripe, chunk, _LATENT, True)
        self._latent_seq += 1
        self._latents[self._latent_seq] = (stripe, chunk, disk)
        self.queue.schedule(
            self.now + self.model.scrub_interval_hours,
            LATENT_SCRUB, self._latent_seq,
        )
        self._reclassify_dirty()

    def _on_latent_scrub(self, latent_id: int) -> None:
        stripe, chunk, _ = self._latents.pop(latent_id)
        self._set_chunk_bit(stripe, chunk, _LATENT, False)
        self._reclassify_dirty()

    def _on_domain_down(self, kind: str, subject: int) -> None:
        if kind == MACHINE_DOWN:
            up_kind, downtime = MACHINE_UP, self.model.machine_downtime
            disks = self.topology.disks_of_machine(subject)
        elif kind == RACK_DOWN:
            up_kind, downtime = RACK_UP, self.model.rack_downtime
            disks = self.topology.disks_of_rack(subject)
        else:  # PARTITION_START
            up_kind, downtime = PARTITION_END, self.model.partition_duration
            disks = self.topology.disks_of_rack(subject)
        self._adjust_down(disks, +1)
        self.queue.schedule(
            self.now + downtime.sample(self.rng), up_kind, subject
        )
        self._reclassify_dirty()

    def _on_domain_up(self, kind: str, subject: int) -> None:
        if kind == MACHINE_UP:
            rate, next_kind = self.model.machine_failure_rate, MACHINE_DOWN
            disks = self.topology.disks_of_machine(subject)
        elif kind == RACK_UP:
            rate, next_kind = self.model.rack_failure_rate, RACK_DOWN
            disks = self.topology.disks_of_rack(subject)
        else:  # PARTITION_END
            rate, next_kind = self.model.partition_rate, PARTITION_START
            disks = self.topology.disks_of_rack(subject)
        self._adjust_down(disks, -1)
        self.queue.schedule(
            self.now + self.model.next_poisson(rate, self.rng),
            next_kind, subject,
        )
        self._reclassify_dirty()

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, stop_on_loss: bool = False) -> FleetResult:
        """Run to the horizon (or the first loss) and return the metrics.

        Args:
            stop_on_loss: return as soon as any stripe is lost — the
                oracle mode used to estimate fleet MTTDL against the
                single-array models.
        """
        horizon = self.scenario.duration_hours
        result = self.result
        while self.queue:
            event = self.queue.pop()
            if event.time > horizon:
                break
            self._integrate_to(event.time)
            self.now = event.time
            if self._dispatch(event):
                result.event_counts[event.kind] = (
                    result.event_counts.get(event.kind, 0) + 1
                )
                result.event_log.append(
                    (round(event.time, 9), event.kind, event.subject)
                )
                result.series.append(
                    (
                        self.now,
                        len(self._degraded),
                        len(self._unavailable),
                        self.repairs.active(),
                    )
                )
            if stop_on_loss and result.losses:
                result.duration_hours = self.now
                return result
        self._integrate_to(horizon)
        self.now = horizon
        return result

    def _dispatch(self, event) -> bool:
        """Route one event; returns False for stale (dropped) events."""
        kind, subject, version = event.kind, event.subject, event.version
        if kind == DISK_FAIL:
            if (
                subject in self.failed_disks
                or version != self._fail_version.get(subject)
            ):
                return False
            self._repair_starts[subject] = event.time
            self._on_disk_fail(subject)
            return True
        if kind == DISK_REPAIRED:
            job = self.repairs.jobs.get(subject)
            if job is None or job.version != version:
                return False
            self._on_disk_repaired(subject, version)
            return True
        if kind == LATENT_MINT:
            self._on_latent_mint(subject)
            return True
        if kind == LATENT_SCRUB:
            if subject not in self._latents:
                return False  # already cleared by a disk rebuild
            self._on_latent_scrub(subject)
            return True
        if kind in (MACHINE_DOWN, RACK_DOWN, PARTITION_START):
            self._on_domain_down(kind, subject)
            return True
        if kind in (MACHINE_UP, RACK_UP, PARTITION_END):
            self._on_domain_up(kind, subject)
            return True
        raise AssertionError(f"unknown event kind {kind!r}")


def simulate_fleet(
    scenario: FleetScenario,
    seed_seq: np.random.SeedSequence | None = None,
    stop_on_loss: bool = False,
) -> FleetResult:
    """Build and run one trial of ``scenario``."""
    return FleetSimulator(scenario, seed_seq).run(stop_on_loss=stop_on_loss)


def run_fleet_trials(
    scenario: FleetScenario, trials: int = 10
) -> FleetSummary:
    """Run independent seeded trials and aggregate the fleet metrics.

    Trial ``t`` uses the ``t``-th child of
    ``SeedSequence(scenario.seed)`` — trials are statistically
    independent yet individually reproducible (re-running trial ``t``
    alone gives the same history).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    children = np.random.SeedSequence(scenario.seed).spawn(trials)
    results = [
        FleetSimulator(scenario, child).run() for child in children
    ]
    loss_trials = sum(1 for r in results if r.any_loss)
    return FleetSummary(
        scenario=scenario,
        trials=trials,
        loss_trial_fraction=loss_trials / trials,
        mean_loss_probability=(
            sum(r.data_loss_probability for r in results) / trials
        ),
        mean_unavailability=(
            sum(r.unavailability_fraction for r in results) / trials
        ),
        mean_repair_read_mib=(
            sum(r.repair_read_mib for r in results) / trials
        ),
        mean_repair_write_mib=(
            sum(r.repair_write_mib for r in results) / trials
        ),
        mean_cross_rack_read_mib=(
            sum(r.cross_rack_read_mib for r in results) / trials
        ),
        mean_repair_hours=(
            sum(r.mean_repair_hours for r in results) / trials
        ),
        total_losses=sum(r.lost_stripes for r in results),
    )
