"""Stripe → disk placement strategies (random, copyset, partitioned/PSS).

Placement decides *which* failure combinations are fatal. Every stripe
spreads its ``width`` chunks over ``width`` distinct machines (the
topology constraint every strategy must satisfy — two chunks of one
stripe on one machine would turn a single machine crash into a double
erasure), but strategies differ in how many distinct machine *sets*
exist across the fleet:

* **random** — every stripe samples its own machine set, so the number
  of distinct sets approaches ``C(M, width)``: almost any combination
  of ``faults + 1`` concurrent machine losses hits *some* stripe, but
  each hit stripe loses little. Frequent small losses.
* **copyset** — machines are grouped into a bounded list of *copysets*
  (Cidon et al.: ``p`` random permutations chopped into groups) and
  every stripe lives entirely inside one copyset. Only a failure
  combination covering a copyset can lose data, so loss events become
  rare — but when one happens it takes every stripe of the copyset.
* **pss (partitioned)** — the degenerate copyset family with exactly
  one partition: disjoint groups, minimum possible distinct sets,
  rarest but largest loss events, and the cheapest repair fan-in.

Assignments are produced once, up front, from an injected seeded
generator — the simulator replays the same placement for every
(code, failure-model) cell so cells differ only in the dimension under
study. :func:`validate_assignment` enforces the topology constraints on
whatever a strategy emits; tests drive it adversarially.
"""

from __future__ import annotations

import numpy as np

from repro.fleet.topology import Topology

__all__ = [
    "Placement",
    "RandomPlacement",
    "CopysetPlacement",
    "PartitionedPlacement",
    "PLACEMENTS",
    "make_placement",
    "validate_assignment",
]


def validate_assignment(
    topology: Topology,
    assignment: list[tuple[int, ...]],
    width: int,
) -> None:
    """Raise ValueError unless every stripe obeys the topology constraints.

    Checks, per stripe: exactly ``width`` chunks, every disk id valid,
    all disks distinct, and all hosting machines distinct (the machine
    is the unit shared-fate domain a stripe must never double up on).
    """
    for stripe, disks in enumerate(assignment):
        if len(disks) != width:
            raise ValueError(
                f"stripe {stripe}: {len(disks)} chunks, expected {width}"
            )
        machines = set()
        for disk in disks:
            if not 0 <= disk < topology.num_disks:
                raise ValueError(f"stripe {stripe}: disk {disk} out of range")
            machines.add(topology.machine_of_disk(disk))
        if len(set(disks)) != width:
            raise ValueError(f"stripe {stripe}: duplicate disks {disks}")
        if len(machines) != width:
            raise ValueError(
                f"stripe {stripe}: chunks share a machine ({disks})"
            )


class Placement:
    """Base strategy: owns the topology/width pair and the constraint check.

    Subclasses implement :meth:`machine_sets` (which machines may host a
    stripe together); the base class picks one concrete disk per machine
    and validates the result.
    """

    name = "abstract"

    def __init__(self, topology: Topology, width: int) -> None:
        if width < 1:
            raise ValueError("width must be >= 1")
        if width > topology.num_machines:
            raise ValueError(
                f"stripe width {width} exceeds {topology.num_machines} "
                f"machines — cannot place chunks on distinct machines"
            )
        self.topology = topology
        self.width = width

    def machine_sets(
        self, num_stripes: int, rng: np.random.Generator
    ) -> list[tuple[int, ...]]:
        """Per-stripe machine groups (each of ``width`` distinct machines)."""
        raise NotImplementedError

    def assign(
        self, num_stripes: int, rng: np.random.Generator
    ) -> list[tuple[int, ...]]:
        """Place ``num_stripes`` stripes; returns per-stripe disk tuples."""
        if num_stripes < 1:
            raise ValueError("num_stripes must be >= 1")
        per_machine = self.topology.disks_per_machine
        assignment = []
        for machines in self.machine_sets(num_stripes, rng):
            disks = tuple(
                machine * per_machine + int(rng.integers(per_machine))
                for machine in machines
            )
            assignment.append(disks)
        validate_assignment(self.topology, assignment, self.width)
        return assignment


class RandomPlacement(Placement):
    """Spread placement: each stripe samples its own machine set."""

    name = "random"

    def machine_sets(
        self, num_stripes: int, rng: np.random.Generator
    ) -> list[tuple[int, ...]]:
        """An independent uniform machine sample per stripe."""
        machines = self.topology.num_machines
        return [
            tuple(
                int(m)
                for m in rng.choice(machines, size=self.width, replace=False)
            )
            for _ in range(num_stripes)
        ]


class CopysetPlacement(Placement):
    """Copyset placement: stripes live inside a bounded set of groups.

    ``permutations`` controls the trade-off (the paper's scatter width
    ``S = permutations * (width - 1)``): more permutations mean more
    distinct copysets — better repair parallelism, more fatal failure
    combinations. Each permutation is chopped into ``M // width``
    disjoint groups; machines in the remainder of a permutation simply
    host no stripe from that permutation.

    The invariant tests lean on: every stripe's machine set is a member
    of :attr:`copysets`, and ``len(copysets) <= permutations *
    (M // width)`` — compare ``C(M, width)`` for random placement.
    """

    name = "copyset"

    def __init__(
        self, topology: Topology, width: int, permutations: int = 2
    ) -> None:
        super().__init__(topology, width)
        if permutations < 1:
            raise ValueError("permutations must be >= 1")
        self.permutations = permutations
        self.copysets: list[tuple[int, ...]] = []

    @property
    def scatter_width(self) -> int:
        """Distinct repair partners one machine's data can have."""
        return self.permutations * (self.width - 1)

    def machine_sets(
        self, num_stripes: int, rng: np.random.Generator
    ) -> list[tuple[int, ...]]:
        """Build the copysets, then sample one per stripe."""
        machines = self.topology.num_machines
        groups_per_perm = machines // self.width
        self.copysets = []
        for _ in range(self.permutations):
            order = rng.permutation(machines)
            for g in range(groups_per_perm):
                group = order[g * self.width:(g + 1) * self.width]
                self.copysets.append(tuple(int(m) for m in group))
        choices = rng.integers(len(self.copysets), size=num_stripes)
        return [self.copysets[int(c)] for c in choices]


class PartitionedPlacement(Placement):
    """Partitioned placement (PSS): one fixed disjoint partition.

    Machines ``0..width-1`` form group 0, the next ``width`` group 1,
    and so on (machines in the tail remainder host nothing). Stripes
    round-robin over groups so load is even and the assignment consumes
    no group-choice randomness — two PSS fleets differ only in the
    per-machine disk draws.
    """

    name = "pss"

    def __init__(self, topology: Topology, width: int) -> None:
        super().__init__(topology, width)
        machines = topology.num_machines
        self.groups: list[tuple[int, ...]] = [
            tuple(range(g * width, (g + 1) * width))
            for g in range(machines // width)
        ]

    def machine_sets(
        self, num_stripes: int, rng: np.random.Generator
    ) -> list[tuple[int, ...]]:
        """Round-robin over the fixed groups (no randomness consumed)."""
        return [
            self.groups[stripe % len(self.groups)]
            for stripe in range(num_stripes)
        ]


PLACEMENTS: dict[str, type[Placement]] = {
    "random": RandomPlacement,
    "copyset": CopysetPlacement,
    "pss": PartitionedPlacement,
}


def make_placement(
    name: str, topology: Topology, width: int, **kwargs
) -> Placement:
    """Construct a registered placement strategy by name."""
    try:
        cls = PLACEMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown placement {name!r}; available: {sorted(PLACEMENTS)}"
        ) from None
    return cls(topology, width, **kwargs)
