"""Per-stripe repairability and repair cost, per code family.

The fleet simulator never touches stripe *bytes* — at fleet scale the
only questions are "is this erasure pattern survivable?" and "how many
chunks move to repair it?". This module answers both:

* :class:`ArrayCodeModel` wraps any registered
  :class:`~repro.codes.base.ArrayCode` (TIP, STAR, Cauchy-RS, ...) and
  answers repairability by *asking the real decoder*: an erasure
  pattern is survivable iff
  :meth:`~repro.codes.base.ArrayCode.decoder_for` can solve it —
  exactly the parity-check-rank criterion the byte-level store uses,
  not a re-derived ``count <= faults`` shortcut (WEAVER-style non-MDS
  layouts answer correctly for free). Repairing a chunk of an MDS
  array code reads every surviving chunk of the stripe.
* :class:`LocalityCodeModel` is the lightweight cost-model adapter for
  the LRC/XORBAS repair-locality family: data splits into ``l`` local
  groups each with one local parity, plus ``m1`` global parities; in
  the XORBAS construction the parity chunks additionally form their
  own implicit group. A single failure repairs from its *group*
  (``k/l`` reads — the locality win), while multi-failure patterns
  fall back to global decoding (``k`` reads). Repairability is the
  maximally-recoverable bound (one equation per erasure-bearing group,
  the rest on the global parities) — the information-theoretic optimum
  an optimal LRC construction achieves.

Both expose the same tiny interface, so 3DFT array codes and locality
codes run on the same fleet and their data-loss / repair-traffic
numbers are directly comparable.
"""

from __future__ import annotations

from repro.codes import make_code
from repro.codes.base import ArrayCode

__all__ = [
    "ArrayCodeModel",
    "LocalityCodeModel",
    "make_fleet_code",
]


class ArrayCodeModel:
    """Fleet adapter over a real :class:`ArrayCode` instance.

    Chunk ``i`` of a fleet stripe is column ``i`` of the code's element
    grid (a whole simulated disk's share of the stripe). Repairability
    verdicts are memoized per failure pattern — the decoder solve is a
    bit-matrix factorization, and a fleet run revisits the same few
    patterns thousands of times.
    """

    def __init__(self, code: ArrayCode) -> None:
        self.code = code
        self.name = code.name
        self.width = code.cols
        self._repairable: dict[frozenset[int], bool] = {}

    def is_repairable(self, failed: frozenset[int]) -> bool:
        """True iff the code can reconstruct these erased chunks."""
        if not failed:
            return True
        verdict = self._repairable.get(failed)
        if verdict is None:
            if len(failed) > self.code.faults:
                # More erasures than redundancy volume: no parity-check
                # submatrix of full rank exists; skip the solve.
                verdict = False
            else:
                try:
                    self.code.decoder_for(tuple(failed))
                    verdict = True
                except ValueError:
                    verdict = False
            self._repairable[failed] = verdict
        return verdict

    def repair_read_chunks(self, failed: frozenset[int], target: int) -> int:
        """Chunks read to rebuild ``target``'s share of one stripe.

        Array-code rebuild decodes from the survivors: every non-failed
        chunk of the stripe is read once.
        """
        return self.width - len(failed)


class LocalityCodeModel:
    """LRC/XORBAS cost model: repair cost = group size, not stripe width.

    Chunk layout (the convention of the LRC simulators this mirrors):
    data chunks ``0..k-1`` in ``l`` contiguous groups of ``k/l``, local
    parities ``k..k+l-1`` (group ``i``'s parity at ``k+i``), global
    parities ``k+l..n-1``.

    Args:
        n: stripe width (total chunks).
        k: data chunks.
        l: local groups (each with one local parity, the ``m0 = 1``
            family the XORBAS construction requires).
        name: display name.
        xorbas: enable the XORBAS parity-group optimization — all
            ``l + m1`` parity chunks satisfy one extra XOR relation, so
            a single missing parity repairs locally from the others.
    """

    def __init__(
        self,
        n: int,
        k: int,
        l: int,  # noqa: E741 - the literature's name for the group count
        name: str | None = None,
        xorbas: bool = True,
    ) -> None:
        if l < 1 or k < l or k % l:
            raise ValueError("need k divisible by l >= 1")
        if n <= k + l:
            raise ValueError("need at least one global parity (n > k + l)")
        self.n = n
        self.k = k
        self.l = l  # noqa: E741
        self.m1 = n - k - l
        self.group_size = k // l
        self.xorbas = xorbas
        self.width = n
        self.name = name or (
            f"{'xorbas' if xorbas else 'lrc'}-{n}-{k}-{l}"
        )
        self._repairable: dict[frozenset[int], bool] = {}

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def group_of(self, chunk: int) -> int | None:
        """Local group of a chunk (None for global parities)."""
        if chunk < self.k:
            return chunk // self.group_size
        if chunk < self.k + self.l:
            return chunk - self.k
        return None

    def _group_members(self, group: int) -> list[int]:
        start = group * self.group_size
        return list(range(start, start + self.group_size)) + [self.k + group]

    # ------------------------------------------------------------------
    # repairability (iterative peeling + global bound)
    # ------------------------------------------------------------------
    def is_repairable(self, failed: frozenset[int]) -> bool:
        """The maximally-recoverable bound.

        Each group with erasures contributes exactly one usable
        equation (its local parity relation, whether or not that parity
        chunk itself is among the erased); the residual erasures — plus
        any erased global parities — must fit within the ``m1`` global
        relations. The XORBAS implicit parity group does *not* enter
        here: that relation is linearly dependent on the local/global
        ones (it buys cheap parity repair, never extra decodability).
        """
        verdict = self._repairable.get(failed)
        if verdict is None:
            residual = 0
            for group in range(self.l):
                lost_in_group = len(
                    failed.intersection(self._group_members(group))
                )
                if lost_in_group:
                    residual += lost_in_group - 1
            residual += sum(1 for c in failed if c >= self.k + self.l)
            verdict = residual <= self.m1
            self._repairable[failed] = verdict
        return verdict

    def repair_read_chunks(self, failed: frozenset[int], target: int) -> int:
        """Group-size reads when the target repairs locally, else ``k``."""
        group = self.group_of(target)
        if group is not None:
            members = self._group_members(group)
            lost_in_group = sum(1 for m in members if m in failed)
            if lost_in_group <= 1:
                return self.group_size
        if self.xorbas and target >= self.k:
            parity_lost = sum(1 for c in range(self.k, self.n) if c in failed)
            if parity_lost <= 1:
                return self.l + self.m1 - 1
        return self.k


def make_fleet_code(spec: str, n: int = 8):
    """Resolve a fleet code spec to a code model.

    ``spec`` is either a registered array-code family name (``"tip"``,
    ``"star"``, ``"cauchy-rs"``, ... — instantiated at ``n`` disks via
    the existing registry) or a locality spec:

    * ``"xorbas"`` — the canonical XORBAS(10, 6, 2) instance;
    * ``"xorbas:N:K:L"`` / ``"lrc:N:K:L"`` — explicit parameters
      (``lrc`` disables the parity-group optimization).
    """
    kind, _, body = spec.partition(":")
    if kind in ("xorbas", "lrc"):
        xorbas = kind == "xorbas"
        if body:
            try:
                width, k, groups = (int(p) for p in body.split(":"))
            except ValueError:
                raise ValueError(
                    f"malformed locality spec {spec!r} "
                    f"(expected {kind}:N:K:L)"
                ) from None
        else:
            width, k, groups = 10, 6, 2
        return LocalityCodeModel(width, k, groups, xorbas=xorbas)
    return ArrayCodeModel(make_code(spec, n))
