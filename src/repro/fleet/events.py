"""Deterministic event queue and the correlated failure processes.

Everything that happens in the fleet is an :class:`Event` popped from
one :class:`EventQueue`. Determinism is the load-bearing property: two
runs with the same scenario and seed must pop the *same events in the
same order*, because every RNG draw happens inside an event handler —
identical pop order means identical draw order means identical
histories (the replay tests assert the full event log, not just the
summary metrics). The queue therefore breaks time ties by insertion
sequence number, never by payload comparison: simultaneous events (a
rack power loss enqueues dozens of same-instant disk outages) pop in
the order they were scheduled.

:class:`FailureModel` holds the stochastic laws the simulator samples
from — it is pure parameters plus sampling helpers, never state:

* per-disk **fail-stop** lifetimes (any
  :class:`~repro.reliability.distributions.Distribution` — exponential
  for the Markov-comparable baseline, Weibull for wear-out) and
  per-disk **latent sector** arrivals bounded by a scrub interval;
* **machine crashes** and **rack power loss** — transient, correlated
  unavailability of whole failure domains;
* **network partitions** — a rack drops off the network: same
  unavailability signature as power loss but nothing is rebuilt when
  it heals (no data was lost, only reachability);
* **failure bursts** — the "failure cumulation" of the PR-SIM line of
  work: each disk failure may trigger further same-rack failures
  inside a short window, modeling shared power/vibration/batch wear
  that independent-lifetime models cannot express.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.reliability.distributions import (
    Distribution,
    Exponential,
    make_distribution,
)

__all__ = [
    "Event",
    "EventQueue",
    "FailureModel",
    "FAILURE_MODELS",
    "make_failure_model",
]

#: Event kinds, in one place so the log is greppable. Subjects are the
#: kind's natural unit: disk id, machine id, or rack id.
DISK_FAIL = "disk_fail"
DISK_REPAIRED = "disk_repaired"
LATENT_MINT = "latent_mint"
LATENT_SCRUB = "latent_scrub"
MACHINE_DOWN = "machine_down"
MACHINE_UP = "machine_up"
RACK_DOWN = "rack_down"
RACK_UP = "rack_up"
PARTITION_START = "partition_start"
PARTITION_END = "partition_end"


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    ``version`` invalidates stale events: a repair completion scheduled
    for a job that was since re-paced (bandwidth contention changed) or
    a failure scheduled for a disk that fail-stopped earlier carries an
    outdated version and is dropped on pop.
    """

    time: float
    kind: str
    subject: int
    version: int = 0


class EventQueue:
    """Priority queue ordered by (time, insertion sequence).

    The explicit sequence number makes simultaneous events pop in
    scheduling order — payloads are never compared, so determinism
    does not depend on event field ordering.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0

    def push(self, event: Event) -> None:
        """Schedule one event."""
        if event.time < 0:
            raise ValueError("event time must be >= 0")
        heapq.heappush(self._heap, (event.time, self._seq, event))
        self._seq += 1

    def schedule(
        self, time: float, kind: str, subject: int, version: int = 0
    ) -> Event:
        """Convenience: build, push, and return the event."""
        event = Event(time, kind, subject, version)
        self.push(event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event (FIFO among ties)."""
        return heapq.heappop(self._heap)[2]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


@dataclass(frozen=True)
class FailureModel:
    """The stochastic laws of one failure environment (pure parameters).

    Rates are per-entity per-hour; a rate of 0 disables that process
    (and, because every draw happens when its event fires, leaves the
    RNG stream of the remaining processes untouched).

    Args:
        disk_lifetime: time to fail-stop of one healthy disk.
        latent_rate: latent-sector-error arrivals per disk-hour.
        scrub_interval_hours: how long a latent error stays unreadable
            before the background scrub repairs it.
        machine_failure_rate: machine crashes per machine-hour.
        machine_downtime: outage duration of a crashed machine.
        rack_failure_rate: power losses per rack-hour.
        rack_downtime: outage duration of a powered-off rack.
        partition_rate: network partitions per rack-hour.
        partition_duration: how long a partitioned rack stays isolated.
        burst_probability: chance a disk failure triggers a burst.
        burst_fanout: additional same-rack disks failed by a burst.
        burst_window_hours: the extra failures land uniformly inside
            this window after the trigger.
    """

    disk_lifetime: Distribution = field(
        default_factory=lambda: Exponential(1_000_000.0)
    )
    latent_rate: float = 0.0
    scrub_interval_hours: float = 168.0
    machine_failure_rate: float = 0.0
    machine_downtime: Distribution = field(
        default_factory=lambda: Exponential(2.0)
    )
    rack_failure_rate: float = 0.0
    rack_downtime: Distribution = field(
        default_factory=lambda: Exponential(8.0)
    )
    partition_rate: float = 0.0
    partition_duration: Distribution = field(
        default_factory=lambda: Exponential(1.0)
    )
    burst_probability: float = 0.0
    burst_fanout: int = 2
    burst_window_hours: float = 24.0

    def __post_init__(self) -> None:
        for name in (
            "latent_rate",
            "machine_failure_rate",
            "rack_failure_rate",
            "partition_rate",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        if self.burst_fanout < 0:
            raise ValueError("burst_fanout must be >= 0")
        if self.scrub_interval_hours <= 0:
            raise ValueError("scrub_interval_hours must be positive")
        if self.burst_window_hours <= 0:
            raise ValueError("burst_window_hours must be positive")

    # ------------------------------------------------------------------
    # sampling helpers (all draws flow through these, in handler order)
    # ------------------------------------------------------------------
    def next_disk_failure(self, rng: np.random.Generator) -> float:
        """Hours until a fresh disk fail-stops."""
        return self.disk_lifetime.sample(rng)

    def next_poisson(self, rate: float, rng: np.random.Generator) -> float:
        """Hours until the next arrival of a rate-``rate`` process
        (infinity when the process is disabled)."""
        if rate <= 0.0:
            return float("inf")
        return float(rng.exponential(1.0 / rate))

    def burst_failures(
        self, rng: np.random.Generator, candidates: list[int]
    ) -> list[tuple[int, float]]:
        """Extra (disk, delay) failures triggered by one fail-stop.

        Draws nothing when bursts are disabled, so the burst feature is
        stream-invisible when off.
        """
        if self.burst_probability <= 0.0 or self.burst_fanout == 0:
            return []
        if not candidates or rng.random() >= self.burst_probability:
            return []
        count = min(self.burst_fanout, len(candidates))
        picks = rng.choice(len(candidates), size=count, replace=False)
        delays = rng.uniform(0.0, self.burst_window_hours, size=count)
        return [
            (candidates[int(i)], float(d))
            for i, d in zip(picks, delays)
        ]


def _independent(mttf_hours: float = 100_000.0) -> FailureModel:
    """Independent exponential disk lifetimes only — the single-array
    assumption scaled out, and the baseline every correlated model is
    compared against."""
    return FailureModel(disk_lifetime=Exponential(mttf_hours))


def _correlated(mttf_hours: float = 100_000.0) -> FailureModel:
    """The datacenter model: everything at once. Disk fail-stops plus
    latent sectors, machine crashes, rack power events, partitions, and
    failure bursts — rates loosely follow the published field studies
    (machines crash far more often than disks die; rack events are
    rare but devastating)."""
    return FailureModel(
        disk_lifetime=Exponential(mttf_hours),
        latent_rate=1e-4,
        scrub_interval_hours=168.0,
        machine_failure_rate=1e-3,
        machine_downtime=Exponential(2.0),
        rack_failure_rate=1e-4,
        rack_downtime=Exponential(8.0),
        partition_rate=5e-4,
        partition_duration=Exponential(1.0),
        burst_probability=0.1,
        burst_fanout=2,
        burst_window_hours=24.0,
    )


FAILURE_MODELS: dict[str, object] = {
    "independent": _independent,
    "correlated": _correlated,
}


def make_failure_model(
    spec: str | dict | FailureModel, mttf_hours: float | None = None
) -> FailureModel:
    """Resolve a failure-model spec.

    Accepts a ready :class:`FailureModel`, a preset name
    (``"independent"``, ``"correlated"``; ``mttf_hours`` overrides the
    preset's disk MTTF), or a dict of :class:`FailureModel` fields where
    distribution-valued fields take
    :func:`~repro.reliability.distributions.make_distribution` specs.
    """
    if isinstance(spec, FailureModel):
        return spec
    if isinstance(spec, str):
        try:
            factory = FAILURE_MODELS[spec]
        except KeyError:
            raise KeyError(
                f"unknown failure model {spec!r}; "
                f"available: {sorted(FAILURE_MODELS)}"
            ) from None
        return factory(mttf_hours) if mttf_hours else factory()
    fields = dict(spec)
    for key in (
        "disk_lifetime",
        "machine_downtime",
        "rack_downtime",
        "partition_duration",
    ):
        if key in fields:
            fields[key] = make_distribution(fields[key])
    return FailureModel(**fields)
