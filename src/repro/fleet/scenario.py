"""Scenario specs: one (code, placement, failure-model) fleet cell.

A :class:`FleetScenario` is pure configuration — everything a
:class:`~repro.fleet.simulator.FleetSimulator` needs to build a
reproducible run, and nothing else. Scenarios round-trip through plain
dicts (:meth:`FleetScenario.from_dict` / :meth:`FleetScenario.to_dict`)
so the CLI can read them from JSON files and BENCH_fleet.json can
record exactly what was simulated next to every result.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

__all__ = ["FleetScenario", "load_scenario"]


@dataclass(frozen=True)
class FleetScenario:
    """Configuration of one fleet simulation cell.

    Args:
        topology: cluster shape spec ``"RACKSxMACHINESxDISKS"``.
        code: fleet code spec — a registered array-code family name
            (instantiated at ``n`` disks) or a locality spec like
            ``"xorbas"`` / ``"lrc:10:6:2"``
            (see :func:`repro.fleet.codemodel.make_fleet_code`).
        n: array width for array-code families (ignored by locality
            specs, which carry their own width).
        placement: ``"random"``, ``"copyset"``, or ``"pss"``.
        failure_model: preset name (``"independent"``/``"correlated"``)
            or a dict of :class:`~repro.fleet.events.FailureModel`
            fields.
        mttf_hours: override the preset failure model's disk MTTF.
        stripes: stripes sharded across the cluster.
        duration_hours: simulated horizon (default 10 years).
        chunk_mib: size of one stripe chunk (the repair-traffic unit).
        disk_mib_s: replacement-disk repair bandwidth.
        cross_rack_mib_s: aggregate cross-rack repair bandwidth.
        copyset_permutations: copyset placement's scatter parameter.
        seed: root seed; every stream of every trial derives from it.
    """

    topology: str = "4x4x4"
    code: str = "tip"
    n: int = 8
    placement: str = "random"
    failure_model: str | dict = "correlated"
    mttf_hours: float | None = None
    stripes: int = 1000
    duration_hours: float = 87_600.0
    chunk_mib: float = 256.0
    disk_mib_s: float = 50.0
    cross_rack_mib_s: float = 200.0
    copyset_permutations: int = 2
    seed: int = 0
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.stripes < 1:
            raise ValueError("stripes must be >= 1")
        if self.duration_hours <= 0:
            raise ValueError("duration_hours must be positive")
        if self.chunk_mib <= 0:
            raise ValueError("chunk_mib must be positive")

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-safe; recorded beside every result)."""
        data = asdict(self)
        data.pop("extra")
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "FleetScenario":
        """Build from a spec dict, rejecting unknown keys loudly."""
        known = {f for f in cls.__dataclass_fields__ if f != "extra"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown scenario keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**data)

    def cell_label(self) -> str:
        """Short ``code/placement/model`` label for tables and logs."""
        model = (
            self.failure_model
            if isinstance(self.failure_model, str)
            else "custom"
        )
        return f"{self.code}/{self.placement}/{model}"


def load_scenario(path: str | Path) -> FleetScenario:
    """Read one scenario spec from a JSON file."""
    return FleetScenario.from_dict(json.loads(Path(path).read_text()))
