"""Fleet-scale reliability simulation — the datacenter the paper prices.

The single-array models (:mod:`repro.reliability`) answer "how long
does one array live?"; this package answers the question the paper's
economics actually turn on: *across thousands of stripes sharded over
racks of machines, with correlated failures and contended repair
bandwidth, how much data does each code family lose?*

The pieces, each its own module:

* :mod:`~repro.fleet.topology` — rack → machine → disk addressing;
* :mod:`~repro.fleet.placement` — random / copyset / partitioned (PSS)
  stripe placement, validated against topology constraints;
* :mod:`~repro.fleet.events` — deterministic event queue plus the
  correlated failure processes (fail-stop, latent sectors, machine
  crashes, rack power loss, partitions, failure bursts);
* :mod:`~repro.fleet.repair` — processor-sharing repair under finite
  per-disk and cross-rack bandwidth;
* :mod:`~repro.fleet.codemodel` — repairability/repair-cost adapters:
  real :class:`~repro.codes.base.ArrayCode` decoders for TIP/STAR/
  Cauchy-RS, a locality cost model for LRC/XORBAS;
* :mod:`~repro.fleet.scenario` / :mod:`~repro.fleet.simulator` — the
  cell spec and the event loop producing data-loss probability,
  unavailability, and repair-traffic metrics.

Identical (scenario, seed) pairs reproduce identical event logs — the
whole package is deterministic by construction.
"""

from repro.fleet.codemodel import (
    ArrayCodeModel,
    LocalityCodeModel,
    make_fleet_code,
)
from repro.fleet.events import (
    Event,
    EventQueue,
    FailureModel,
    make_failure_model,
)
from repro.fleet.placement import (
    CopysetPlacement,
    PartitionedPlacement,
    Placement,
    RandomPlacement,
    make_placement,
    validate_assignment,
)
from repro.fleet.repair import RepairBandwidth, RepairScheduler
from repro.fleet.scenario import FleetScenario, load_scenario
from repro.fleet.simulator import (
    FleetResult,
    FleetSimulator,
    FleetSummary,
    run_fleet_trials,
    simulate_fleet,
)
from repro.fleet.topology import Topology

__all__ = [
    "ArrayCodeModel",
    "CopysetPlacement",
    "Event",
    "EventQueue",
    "FailureModel",
    "FleetResult",
    "FleetScenario",
    "FleetSimulator",
    "FleetSummary",
    "LocalityCodeModel",
    "PartitionedPlacement",
    "Placement",
    "RandomPlacement",
    "RepairBandwidth",
    "RepairScheduler",
    "Topology",
    "load_scenario",
    "make_failure_model",
    "make_fleet_code",
    "make_placement",
    "run_fleet_trials",
    "simulate_fleet",
    "validate_assignment",
]
