"""Finite-bandwidth repair: concurrent rebuilds contend and stretch.

A failed disk's contents are rebuilt onto a replacement by reading
surviving chunks (how many is the code model's business, see
:mod:`repro.fleet.codemodel`) and writing the reconstruction. Two
resources bound that work:

* the replacement disk absorbs writes at ``disk_mib_s`` at most;
* repair *read* traffic crossing rack boundaries shares one aggregate
  ``cross_rack_mib_s`` pipe (the oversubscribed spine every real
  cluster has).

Active jobs share the cross-rack pipe equally (processor sharing), so
each job's instantaneous rate is ``min(disk_mib_s,
cross_rack_mib_s / active_jobs)``. One failure rebuilds at full disk
speed; a rack's worth of simultaneous rebuilds crawls — which is
exactly the mechanism that stretches degraded windows and turns
correlated failures into data loss even for 3DFT codes.

Because rates change whenever a job starts or finishes, completion
times are *re-paced*: the scheduler advances every job's remaining
bytes to "now", recomputes rates, and hands the simulator a fresh
completion time per job. Each re-pace bumps the job's version so
completion events scheduled under an old rate are recognized as stale
and dropped — the standard event-driven processor-sharing discipline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RepairBandwidth", "RepairJob", "RepairScheduler"]

#: MiB per hour per MiB/s — all scheduler math runs in hours.
_MIB_S_TO_MIB_H = 3600.0


@dataclass(frozen=True)
class RepairBandwidth:
    """Bandwidth limits of the repair path.

    Args:
        disk_mib_s: write bandwidth of one replacement disk (MiB/s).
        cross_rack_mib_s: aggregate cross-rack repair bandwidth shared
            by all concurrent rebuilds (MiB/s).
    """

    disk_mib_s: float = 50.0
    cross_rack_mib_s: float = 200.0

    def __post_init__(self) -> None:
        if self.disk_mib_s <= 0 or self.cross_rack_mib_s <= 0:
            raise ValueError("bandwidth limits must be positive")


@dataclass
class RepairJob:
    """One in-flight disk rebuild."""

    disk: int
    total_mib: float
    remaining_mib: float
    started: float
    version: int = 0
    rate_mib_h: float = 0.0
    last_advance: float = field(default=0.0)


class RepairScheduler:
    """Processor-sharing scheduler over the repair bandwidth.

    The simulator calls :meth:`start` when a disk fails and
    :meth:`complete` when a ``DISK_REPAIRED`` event pops; both return
    the full list of (disk, finish time, version) tuples to (re)schedule
    so contention-induced stretching is always reflected in the queue.
    """

    def __init__(self, bandwidth: RepairBandwidth) -> None:
        self.bandwidth = bandwidth
        self.jobs: dict[int, RepairJob] = {}
        self._version = 0
        #: Totals for the repair-traffic metrics.
        self.repaired_mib = 0.0
        self.busy_hours = 0.0  # integrated job-hours of active repair

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _advance(self, now: float) -> None:
        """Drain each job's remaining bytes up to ``now`` at its rate."""
        for job in self.jobs.values():
            elapsed = now - job.last_advance
            if elapsed > 0:
                job.remaining_mib = max(
                    0.0, job.remaining_mib - elapsed * job.rate_mib_h
                )
                self.busy_hours += elapsed
                job.last_advance = now

    def _repace(self, now: float) -> list[tuple[int, float, int]]:
        """Recompute shared rates; return fresh completion schedules."""
        active = len(self.jobs)
        if not active:
            return []
        shared = self.bandwidth.cross_rack_mib_s / active
        rate = min(self.bandwidth.disk_mib_s, shared) * _MIB_S_TO_MIB_H
        schedule = []
        for job in self.jobs.values():
            self._version += 1
            job.version = self._version
            job.rate_mib_h = rate
            finish = now + job.remaining_mib / rate
            schedule.append((job.disk, finish, job.version))
        return schedule

    # ------------------------------------------------------------------
    # simulator interface
    # ------------------------------------------------------------------
    def start(
        self, now: float, disk: int, total_mib: float
    ) -> list[tuple[int, float, int]]:
        """Begin rebuilding ``disk``; returns completions to schedule.

        Every already-running job is re-paced (its share just shrank),
        so the returned list covers *all* active jobs.
        """
        if disk in self.jobs:
            raise ValueError(f"disk {disk} is already being repaired")
        if total_mib <= 0:
            raise ValueError("total_mib must be positive")
        self._advance(now)
        self.jobs[disk] = RepairJob(
            disk=disk, total_mib=total_mib, remaining_mib=total_mib,
            started=now, last_advance=now,
        )
        return self._repace(now)

    def complete(
        self, now: float, disk: int, version: int
    ) -> tuple[bool, list[tuple[int, float, int]]]:
        """Handle a ``DISK_REPAIRED`` event.

        Returns ``(done, reschedules)``: ``done`` is False for stale
        events (the job was re-paced after this completion was
        scheduled — every re-pace issues a newer version, so a matching
        version proves the rate never changed and the job is exactly
        drained at its scheduled instant).
        """
        job = self.jobs.get(disk)
        if job is None or job.version != version:
            return False, []
        self._advance(now)
        self.repaired_mib += job.total_mib
        del self.jobs[disk]
        return True, self._repace(now)

    def active(self) -> int:
        """Number of in-flight rebuilds."""
        return len(self.jobs)

    def degraded_window_hours(self, now: float, disk: int) -> float:
        """How long ``disk`` has been rebuilding so far."""
        job = self.jobs[disk]
        return now - job.started
