"""Rack → machine → disk topology of the simulated cluster.

The fleet simulator addresses hardware by three nested levels: a
cluster holds ``racks`` racks, every rack ``machines_per_rack``
machines, every machine ``disks_per_machine`` disks. Disks, machines,
and racks are identified by dense global integer ids (row-major:
disk ``d`` lives on machine ``d // disks_per_machine``, machine ``m``
in rack ``m // machines_per_rack``), so per-entity state lives in flat
arrays and failure-domain lookups are integer arithmetic, not dict
walks — the event loop touches these on every event.

The hierarchy is what makes failures *correlated*: a rack power event
takes down ``machines_per_rack * disks_per_machine`` disks at the same
instant, which is precisely the burst an independent-lifetime model
cannot produce and the reason placement strategy moves the data-loss
number (see :mod:`repro.fleet.placement`).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Topology"]


@dataclass(frozen=True)
class Topology:
    """Shape of the simulated cluster.

    Args:
        racks: number of racks.
        machines_per_rack: machines in each rack.
        disks_per_machine: disks in each machine.
    """

    racks: int
    machines_per_rack: int
    disks_per_machine: int

    def __post_init__(self) -> None:
        if min(self.racks, self.machines_per_rack, self.disks_per_machine) < 1:
            raise ValueError("every topology level needs at least one unit")

    # ------------------------------------------------------------------
    # sizes
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        """Total machines in the cluster."""
        return self.racks * self.machines_per_rack

    @property
    def num_disks(self) -> int:
        """Total disks in the cluster."""
        return self.num_machines * self.disks_per_machine

    # ------------------------------------------------------------------
    # failure-domain lookups (hot path: plain integer arithmetic)
    # ------------------------------------------------------------------
    def machine_of_disk(self, disk: int) -> int:
        """Global machine id hosting ``disk``."""
        return disk // self.disks_per_machine

    def rack_of_machine(self, machine: int) -> int:
        """Rack id hosting ``machine``."""
        return machine // self.machines_per_rack

    def rack_of_disk(self, disk: int) -> int:
        """Rack id hosting ``disk``."""
        return self.rack_of_machine(self.machine_of_disk(disk))

    def disks_of_machine(self, machine: int) -> range:
        """Global disk ids of one machine (contiguous by construction)."""
        if not 0 <= machine < self.num_machines:
            raise ValueError(f"machine {machine} out of range")
        start = machine * self.disks_per_machine
        return range(start, start + self.disks_per_machine)

    def machines_of_rack(self, rack: int) -> range:
        """Global machine ids of one rack (contiguous by construction)."""
        if not 0 <= rack < self.racks:
            raise ValueError(f"rack {rack} out of range")
        start = rack * self.machines_per_rack
        return range(start, start + self.machines_per_rack)

    def disks_of_rack(self, rack: int) -> range:
        """Global disk ids of one rack."""
        machines = self.machines_of_rack(rack)
        return range(
            machines.start * self.disks_per_machine,
            machines.stop * self.disks_per_machine,
        )

    # ------------------------------------------------------------------
    # spec parsing ("RxMxD", the CLI / scenario shorthand)
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "Topology":
        """Build from an ``"RACKSxMACHINESxDISKS"`` spec, e.g. ``"4x4x4"``."""
        parts = spec.lower().split("x")
        if len(parts) != 3:
            raise ValueError(
                f"topology spec must be RACKSxMACHINESxDISKS, got {spec!r}"
            )
        try:
            racks, machines, disks = (int(p) for p in parts)
        except ValueError:
            raise ValueError(f"malformed topology spec {spec!r}") from None
        return cls(racks, machines, disks)

    def spec(self) -> str:
        """The round-trippable ``"RxMxD"`` form of this topology."""
        return (
            f"{self.racks}x{self.machines_per_rack}x{self.disks_per_machine}"
        )
