"""Trace-driven synthetic write complexity (Fig. 12, Sec. VI-B.3).

Maps each byte-addressed write request onto the stripes of a given code:
the stripe's data elements are the unit of striping (one chunk each,
8 KB in the paper's configuration), logical chunks fill stripes in
row-major data order, and a request covering chunks ``[a, b]`` becomes one
consecutive run per stripe. Costs per run come from
:func:`repro.analysis.write_cost.write_cost_for_run`, so single writes,
partial-stripe writes, and full-stripe writes are all priced exactly as
Sec. VI-B.1 defines them.
"""

from __future__ import annotations

from repro.analysis.write_cost import write_cost_for_run
from repro.codes.base import ArrayCode
from repro.traces.model import Trace

__all__ = ["request_runs", "request_write_cost", "synthetic_write_cost"]


def request_runs(
    code: ArrayCode, offset: int, length: int, chunk_size: int
) -> list[tuple[int, int, int]]:
    """Split a byte request into per-stripe element runs.

    Returns ``(stripe_index, start_element, run_length)`` triples where
    ``start_element`` is a logical data index within the stripe. The
    address math lives in :class:`repro.raid.ArrayMapping` — this is the
    analysis-facing view of the same single source of truth the
    simulator's controller and the real store use.
    """
    # Imported lazily: repro.raid.planner imports repro.analysis, so a
    # module-level import here would be circular.
    from repro.raid.mapping import ArrayMapping

    return [
        (run.stripe, run.start, run.length)
        for run in ArrayMapping(code, chunk_size).byte_runs(offset, length)
    ]


def request_write_cost(
    code: ArrayCode, offset: int, length: int, chunk_size: int
) -> int:
    """Modified elements for one write request (may span stripes)."""
    return sum(
        write_cost_for_run(code, start, run)
        for _, start, run in request_runs(code, offset, length, chunk_size)
    )


def synthetic_write_cost(
    code: ArrayCode, trace: Trace, chunk_size: int = 8 * 1024
) -> float:
    """Average modified elements per write request of ``trace`` (Fig. 12).

    Read requests are ignored (they modify nothing); the paper's metric is
    "average number of I/Os per write request", with the chunk size fixed
    at 8 KB.
    """
    writes = trace.writes
    if not writes:
        raise ValueError(f"trace {trace.name!r} contains no writes")
    total = sum(
        request_write_cost(code, req.offset, req.length, chunk_size)
        for req in writes
    )
    return total / len(writes)
