"""Derive the Table II feature summary from measured code properties.

The paper's Table II labels each code's update complexity, storage
efficiency and decoding complexity as optimal/high/low etc. Rather than
hard-coding the table, this module *measures* each property on a concrete
instance and maps it to the paper's vocabulary, so the summary is a
reproducible artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.write_cost import single_write_cost
from repro.analysis.xor_cost import decoding_xor_stats, encoding_xor_per_element
from repro.codes.base import ArrayCode

__all__ = ["CodeFeatures", "code_features", "feature_table"]

#: Optimal modified-element count for a single write: the element plus one
#: parity per tolerated fault [13].
def _optimal_single_write(code: ArrayCode) -> float:
    return 1.0 + code.faults


@dataclass
class CodeFeatures:
    """Measured feature set of one code instance (one Table II row)."""

    name: str
    n: int
    single_write: float
    update_complexity: str
    storage_efficiency: float
    storage_label: str
    decode_xor_per_element: float
    decoding_label: str
    mds: bool


def code_features(
    code: ArrayCode, decode_samples: int = 20, seed: int = 0
) -> CodeFeatures:
    """Measure and classify one code.

    Labels follow the paper's thresholds: update complexity is *optimal*
    when every single write touches exactly ``faults + 1`` elements,
    *medium* within 1.5 elements of optimal, *high* beyond; storage is
    *optimal* iff the code is MDS; decoding is *low* when the per-element
    recovery XOR count stays within 2x the encoding cost.
    """
    write = single_write_cost(code)
    optimal = _optimal_single_write(code)
    if write <= optimal + 1e-9:
        update_label = "optimal"
    elif write <= optimal + 1.5:
        update_label = "medium"
    else:
        update_label = "high"
    mds = code.is_mds() and code.is_storage_optimal
    storage = code.storage_efficiency
    if code.is_storage_optimal:
        storage_label = "optimal"
    elif storage <= 0.5:
        storage_label = "very low"  # Table II's label for WEAVER/T-code
    else:
        storage_label = "limited"
    decode = decoding_xor_stats(code, samples=decode_samples, seed=seed)
    encode_cost = encoding_xor_per_element(code)
    decoding_label = (
        "low"
        if decode.mean_xors_per_data_element <= 2.0 * encode_cost + 1e-9
        else "high"
    )
    return CodeFeatures(
        name=code.name,
        n=code.cols,
        single_write=write,
        update_complexity=update_label,
        storage_efficiency=storage,
        storage_label=storage_label,
        decode_xor_per_element=decode.mean_xors_per_data_element,
        decoding_label=decoding_label,
        mds=mds,
    )


def feature_table(codes: list[ArrayCode], seed: int = 0) -> list[CodeFeatures]:
    """Table II rows for a list of code instances."""
    return [code_features(code, seed=seed) for code in codes]
