"""Write-path strategies: read-modify-write vs. reconstruct-write.

The paper's cost metric (modified elements) fixes the *write* set; a real
controller also chooses how to obtain the new parity values:

* **read-modify-write (RMW)** — read the old data and old parities being
  replaced, XOR the deltas in. Pre-reads = writes. This is what the
  paper's response-time evaluation models, and the default everywhere.
* **reconstruct-write (RCW)** — read the *untouched* data of the affected
  parity chains and recompute the parities from scratch. Cheaper when a
  run covers most of a stripe.

``choose_strategy`` picks whichever needs fewer pre-reads — the classic
RAID small-write/large-write threshold — and is exercised by the
controller's ``write_strategy="auto"`` mode and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codes.base import ArrayCode, Position

__all__ = [
    "WritePlanCost",
    "rmw_cost",
    "rcw_cost",
    "full_stripe_cost",
    "choose_strategy",
]


@dataclass(frozen=True)
class WritePlanCost:
    """I/O footprint of one write strategy for a run of data elements."""

    strategy: str
    pre_reads: tuple[Position, ...]
    writes: tuple[Position, ...]

    @property
    def total_ios(self) -> int:
        """Element I/Os issued (reads + writes)."""
        return len(self.pre_reads) + len(self.writes)


def _written_set(
    code: ArrayCode, positions: list[Position]
) -> tuple[set[Position], set[Position]]:
    """Return (data cells written, parity cells written)."""
    data = set(positions)
    parities: set[Position] = set()
    for pos in positions:
        parities |= code.update_penalty(pos)
    return data, parities


def rmw_cost(code: ArrayCode, positions: list[Position]) -> WritePlanCost:
    """Read-modify-write: pre-read exactly what will be overwritten."""
    data, parities = _written_set(code, positions)
    writes = tuple(sorted(data)) + tuple(sorted(parities))
    return WritePlanCost("rmw", writes, writes)


def rcw_cost(code: ArrayCode, positions: list[Position]) -> WritePlanCost:
    """Reconstruct-write: pre-read the untouched chain members.

    Every affected parity is recomputed from its expanded (pure-data)
    chain, so the pre-reads are the union of those chains' data cells
    minus the cells being written.
    """
    data, parities = _written_set(code, positions)
    needed: set[Position] = set()
    expanded = code.expanded_chains
    for parity in parities:
        needed |= expanded[parity]
    pre_reads = tuple(sorted(needed - data))
    writes = tuple(sorted(data)) + tuple(sorted(parities))
    return WritePlanCost("rcw", pre_reads, writes)


def full_stripe_cost(code: ArrayCode) -> WritePlanCost:
    """The naive load / re-encode / store path: every stored element once.

    This is reconstruct-write taken to stripe granularity — what
    :class:`repro.store.ArrayStore` does when no fast path applies — and
    the baseline a delta small-write must beat. Independent of the run
    being written: the whole stripe is read and the whole stripe is
    written back.
    """
    cells = tuple(code.nonempty_positions)
    return WritePlanCost("full-stripe", cells, cells)


def choose_strategy(
    code: ArrayCode, positions: list[Position]
) -> WritePlanCost:
    """The cheaper of RMW and RCW for this run (fewest total I/Os)."""
    if not positions:
        raise ValueError("need at least one written position")
    rmw = rmw_cost(code, positions)
    rcw = rcw_cost(code, positions)
    return rcw if rcw.total_ios < rmw.total_ios else rmw
