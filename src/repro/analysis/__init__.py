"""Quantitative analyses behind the paper's evaluation (Sec. V-VI).

* :mod:`repro.analysis.write_cost` — single / partial / full stripe write
  complexity under a uniform workload (Figs. 10-11, Tables IV-V).
* :mod:`repro.analysis.trace_cost` — trace-driven synthetic write
  complexity (Fig. 12) and per-request element I/O expansion.
* :mod:`repro.analysis.xor_cost` — encoding/decoding XOR complexity
  (Figs. 14b, 15b) and the optimality bounds of Sec. V.
* :mod:`repro.analysis.features` — the qualitative feature summary of
  Table II derived from measured properties.
"""

from repro.analysis.write_cost import (
    single_write_cost,
    partial_write_cost,
    full_stripe_write_cost,
    write_cost_for_run,
    improvement,
)
from repro.analysis.xor_cost import (
    encoding_xor_per_element,
    decoding_xor_stats,
    tip_encoding_bound,
)
from repro.analysis.trace_cost import synthetic_write_cost, request_write_cost
from repro.analysis.features import code_features, feature_table
from repro.analysis.write_path import (
    WritePlanCost,
    rmw_cost,
    rcw_cost,
    full_stripe_cost,
    choose_strategy,
)
from repro.analysis.recovery_cost import (
    RecoveryCost,
    recovery_reads,
    recovery_cost_stats,
)

__all__ = [
    "single_write_cost",
    "partial_write_cost",
    "full_stripe_write_cost",
    "write_cost_for_run",
    "improvement",
    "encoding_xor_per_element",
    "decoding_xor_stats",
    "tip_encoding_bound",
    "synthetic_write_cost",
    "request_write_cost",
    "code_features",
    "feature_table",
    "WritePlanCost",
    "rmw_cost",
    "rcw_cost",
    "full_stripe_cost",
    "choose_strategy",
    "RecoveryCost",
    "recovery_reads",
    "recovery_cost_stats",
]
