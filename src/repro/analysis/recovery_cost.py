"""Recovery I/O analysis: how much must be read to rebuild lost disks.

Rebuild traffic determines both rebuild time (the MTTR of the reliability
models) and the degraded-mode load. For each failure pattern the generic
decoder knows exactly which surviving elements its recovery schedule
touches; this module aggregates that into per-code rebuild-read metrics:

* ``reads`` — surviving elements the schedule actually consumes;
* ``read_fraction`` — reads relative to all surviving elements (1.0 means
  a full-stripe read, the worst case);
* per recovered element — reads amortized over the rebuilt elements.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

import numpy as np

from repro.codes.base import ArrayCode

__all__ = ["RecoveryCost", "recovery_reads", "recovery_cost_stats"]


@dataclass(frozen=True)
class RecoveryCost:
    """Rebuild-read statistics over sampled failure patterns."""

    patterns: int
    mean_reads: float
    mean_read_fraction: float
    mean_reads_per_recovered: float


def recovery_reads(code: ArrayCode, failed: tuple[int, ...]) -> int:
    """Surviving elements the recovery schedule for ``failed`` reads.

    An element counts if any scheduled XOR references it — columns of the
    recovery matrix with at least one set bit.
    """
    decoder = code.decoder_for(failed)
    used_columns = np.asarray(decoder.plan.matrix).any(axis=0)
    return int(used_columns.sum())


def recovery_cost_stats(
    code: ArrayCode,
    failures: int = 1,
    samples: int = 30,
    seed: int = 0,
) -> RecoveryCost:
    """Aggregate rebuild-read statistics for ``failures`` lost disks."""
    if not 1 <= failures <= code.faults:
        raise ValueError(f"failures must be in 1..{code.faults}")
    combos = list(itertools.combinations(range(code.cols), failures))
    rng = random.Random(seed)
    if len(combos) > samples:
        combos = rng.sample(combos, samples)
    reads: list[int] = []
    fractions: list[float] = []
    per_recovered: list[float] = []
    for combo in combos:
        count = recovery_reads(code, combo)
        survivors = len(code.decoder_for(combo).plan.known_positions)
        recovered = len(code.decoder_for(combo).plan.unknown_positions)
        reads.append(count)
        fractions.append(count / survivors)
        per_recovered.append(count / max(recovered, 1))
    total = len(combos)
    return RecoveryCost(
        patterns=total,
        mean_reads=sum(reads) / total,
        mean_read_fraction=sum(fractions) / total,
        mean_reads_per_recovered=sum(per_recovered) / total,
    )
