"""Encoding/decoding XOR complexity (Figs. 14b and 15b, Sec. V-B).

Encoding complexity counts the XORs needed to produce all parities of one
stripe, normalized per data element — the metric whose lower bound
``3 - 3/(p-2)`` TIP-code attains (Sec. V-B). Decoding complexity averages
the scheduled recovery XOR count over random failure patterns, normalized
per data element of the stripe, mirroring the paper's methodology of
drawing random triple failures over both data and parity disks.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass

from repro.codes.base import ArrayCode

__all__ = [
    "encoding_xor_total",
    "encoding_xor_per_element",
    "decoding_xor_stats",
    "DecodingStats",
    "tip_encoding_bound",
]


def encoding_xor_total(code: ArrayCode) -> int:
    """XOR operations to compute every parity of one stripe.

    Each chain of ``c`` members costs ``c - 1`` XORs (chained parities
    reuse their member parities' already-computed values, which is how the
    encoder executes).
    """
    return sum(max(len(members) - 1, 0) for members in code.chains.values())


def encoding_xor_per_element(code: ArrayCode) -> float:
    """Encoding XORs per data element (Fig. 14b)."""
    return encoding_xor_total(code) / code.num_data


def tip_encoding_bound(p: int) -> float:
    """The optimal encoding complexity ``3 - 3/(p-2)`` of Sec. V-B."""
    if p <= 2:
        raise ValueError("p must exceed 2")
    return 3.0 - 3.0 / (p - 2)


@dataclass
class DecodingStats:
    """Aggregate decoding-cost statistics over sampled failure patterns."""

    patterns: int
    mean_xors_per_data_element: float
    mean_xors_per_recovered_element: float
    worst_xors_per_data_element: float


def decoding_xor_stats(
    code: ArrayCode,
    failures: int | None = None,
    samples: int = 50,
    seed: int = 0,
    iterative: bool = True,
) -> DecodingStats:
    """Scheduled recovery XOR counts over random failure patterns (Fig. 15b).

    Args:
        code: the code under test.
        failures: failed-disk count (defaults to the code's fault budget).
        samples: failure patterns to draw; if the total number of
            combinations is smaller, all are enumerated exactly.
        seed: RNG seed for pattern sampling.
        iterative: apply iterative reconstruction accounting (Sec. IV-C2):
            recover one failed disk from the full system, then charge the
            remaining disks at the cheaper smaller-erasure schedule.
    """
    failures = code.faults if failures is None else failures
    if not 1 <= failures <= code.faults:
        raise ValueError(f"failures must be in 1..{code.faults}")
    all_combos = list(itertools.combinations(range(code.cols), failures))
    rng = random.Random(seed)
    if len(all_combos) > samples:
        combos = rng.sample(all_combos, samples)
    else:
        combos = all_combos
    per_data: list[float] = []
    per_recovered: list[float] = []
    for combo in combos:
        xors = _recovery_xors(code, combo, iterative)
        recovered = sum(
            1
            for pos in code.nonempty_positions
            if pos[1] in combo
        )
        per_data.append(xors / code.num_data)
        per_recovered.append(xors / max(recovered, 1))
    return DecodingStats(
        patterns=len(combos),
        mean_xors_per_data_element=sum(per_data) / len(per_data),
        mean_xors_per_recovered_element=sum(per_recovered) / len(per_recovered),
        worst_xors_per_data_element=max(per_data),
    )


def _recovery_xors(
    code: ArrayCode, combo: tuple[int, ...], iterative: bool
) -> int:
    """XOR count to recover the columns in ``combo``."""
    if not iterative or len(combo) == 1:
        return code.decoder_for(combo).xor_count
    # Iterative reconstruction: the full-system schedule is charged only
    # for the first disk's share of outputs, then the remaining disks use
    # the (much cheaper) smaller-erasure schedule.
    full = code.decoder_for(combo)
    first = combo[0]
    first_rows = [
        i
        for i, pos in enumerate(full.plan.unknown_positions)
        if pos[1] == first
    ]
    matrix = full.plan.matrix[first_rows, :]
    first_cost = int(matrix.sum() - (matrix.sum(axis=1) > 0).sum())
    rest = code.decoder_for(combo[1:])
    total = first_cost + rest.xor_count
    return min(total, full.xor_count)
