"""Write-complexity analysis under a uniform workload (Sec. VI-B.1/2).

The paper's metric is the *number of modified elements* per write request:
the written data elements plus every parity element that must change. The
parity set follows the update-penalty closure of
:meth:`repro.codes.base.ArrayCode.update_penalty`, so chained layouts
(STAR's S-diagonals, Triple-Star's horizontal-in-diagonal) are charged
their full cascade automatically.

Logical addressing is row-major over data elements (see
``ArrayCode.data_positions``); "``l`` consecutive data elements" in
Fig. 11 means ``l`` consecutive logical addresses, which is how a
``l``-chunk request lands on a striped array.
"""

from __future__ import annotations


from repro.codes.base import ArrayCode

__all__ = [
    "single_write_cost",
    "partial_write_cost",
    "full_stripe_write_cost",
    "write_cost_for_run",
    "improvement",
]


def single_write_cost(code: ArrayCode) -> float:
    """Average modified elements for a one-element write (Fig. 10).

    Every data element is equally likely. The optimum for a 3-fault MDS
    code is 4: the element itself plus one parity per fault tolerated
    [13]; TIP-code achieves exactly that for every element (Sec. V-A).
    """
    total = sum(
        1 + len(code.update_penalty(pos)) for pos in code.data_positions
    )
    return total / code.num_data


def write_cost_for_run(code: ArrayCode, start: int, length: int) -> int:
    """Modified elements for writing ``length`` consecutive logical chunks
    beginning at logical address ``start`` within one stripe.

    A run covering the whole stripe is a full-stripe write: no read-modify
    cycle is needed and every stored element is written once.
    """
    if length <= 0:
        return 0
    if length >= code.num_data:
        return full_stripe_write_cost(code)
    data_positions = code.data_positions
    touched = [
        data_positions[(start + offset) % code.num_data]
        for offset in range(length)
    ]
    parities: set = set()
    for pos in touched:
        parities |= code.update_penalty(pos)
    return length + len(parities)


def partial_write_cost(code: ArrayCode, length: int) -> float:
    """Average modified elements for ``length`` consecutive chunks (Fig. 11).

    Averaged over every logical starting address (cyclic within the
    stripe), matching the paper's uniform-workload assumption.
    """
    if length <= 1:
        return single_write_cost(code)
    total = sum(
        write_cost_for_run(code, start, length)
        for start in range(code.num_data)
    )
    return total / code.num_data


def full_stripe_write_cost(code: ArrayCode) -> int:
    """Modified elements for a full-stripe write: all stored elements.

    This is where MDS codes beat non-MDS codes (Sec. II-A.2): the parity
    count — and hence the cost above ``num_data`` — is minimal.
    """
    return code.num_data + code.num_parity


def improvement(baseline: float, ours: float) -> float:
    """Relative improvement of ``ours`` over ``baseline`` in percent,
    as reported in Tables IV-V: ``(baseline - ours) / baseline * 100``."""
    if baseline <= 0:
        raise ValueError("baseline cost must be positive")
    return (baseline - ours) / baseline * 100.0
