"""Byte-addressed BlockDevice over the real store: read-back, costs, replay."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.raid import BlockDevice
from repro.store import ArrayStore
from repro.traces import Trace, TraceRequest, generate_trace

CHUNK = 512


@pytest.fixture
def device(tmp_path):
    code = make_code("tip", 8)
    store = ArrayStore(code, tmp_path / "dev", stripes=4, chunk_bytes=CHUNK)
    return BlockDevice(store)


class TestByteReadback:
    def test_unaligned_write_reads_back_exactly(self, device):
        rng = np.random.default_rng(3)
        # Deliberately ugly geometry: mid-chunk start, sub-chunk tail,
        # crossing a stripe boundary.
        per_stripe = device.store.code.num_data * CHUNK
        cases = [(0, CHUNK), (37, 100), (CHUNK - 1, 2), (per_stripe - 50, 300),
                 (3 * CHUNK + 123, 2 * CHUNK + 7)]
        for offset, length in cases:
            payload = rng.integers(0, 256, size=length, dtype=np.uint8)
            device.write(offset, payload)
            assert device.read(offset, length) == payload.tobytes(), (
                offset, length,
            )

    def test_surrounding_bytes_survive_a_splice(self, device):
        base = bytes(range(256)) * (3 * CHUNK // 256)
        device.write(0, base)
        device.write(CHUNK + 10, b"\xff" * 20)
        got = device.read(0, 3 * CHUNK)
        expected = bytearray(base)
        expected[CHUNK + 10:CHUNK + 30] = b"\xff" * 20
        assert got == bytes(expected)

    def test_accepts_bytes_bytearray_and_ndarray(self, device):
        device.write(0, b"abc")
        device.write(3, bytearray(b"def"))
        device.write(6, np.frombuffer(b"ghi", dtype=np.uint8))
        assert device.read(0, 9) == b"abcdefghi"

    def test_range_validation(self, device):
        with pytest.raises(ValueError, match="negative offset"):
            device.read(-1, 4)
        with pytest.raises(ValueError, match="non-positive length"):
            device.read(0, 0)
        with pytest.raises(ValueError, match="exceeds device capacity"):
            device.write(device.capacity_bytes - 2, b"abcd")


class TestTipSmallWriteCost:
    def test_sub_chunk_write_costs_one_data_three_parity(self, device):
        """The paper's headline: a TIP small write updates 1 data element
        and exactly its 3 parity elements — measured on real files, and
        unchanged by sub-chunk (unaligned) geometry."""
        store = device.store
        for offset, length in [(0, CHUNK), (CHUNK // 2, 64), (5 * CHUNK + 9, 17)]:
            device.write(offset, bytes(length))
            io = store.last_io
            assert io.data_chunks_read == 1, (offset, length)
            assert io.data_chunks_written == 1, (offset, length)
            assert io.parity_chunks_read == 3, (offset, length)
            assert io.parity_chunks_written == 3, (offset, length)


class TestDegradedDevice:
    def test_readback_with_three_failed_disks(self, tmp_path):
        code = make_code("tip", 8)
        store = ArrayStore(code, tmp_path / "deg", stripes=3, chunk_bytes=CHUNK)
        device = BlockDevice(store)
        rng = np.random.default_rng(11)
        payload = rng.integers(0, 256, size=device.capacity_bytes,
                               dtype=np.uint8)
        device.write(0, payload)
        for disk in (1, 4, 6):
            store.fail_disk(disk)
        assert device.read(0, device.capacity_bytes) == payload.tobytes()
        # Unaligned degraded read, and a degraded small write round-trip.
        assert device.read(700, 999) == payload[700:1699].tobytes()
        device.write(700, b"\x5a" * 999)
        assert device.read(700, 999) == b"\x5a" * 999


class TestReplay:
    def test_replay_synthetic_trace_and_aggregates(self, device):
        trace = generate_trace("src2_0", requests=60, seed=5)
        result = device.replay(trace)
        assert result.trace_name == trace.name
        assert result.requests == 60
        assert result.reads + result.writes == 60
        assert result.writes == sum(1 for r in trace if r.is_write)
        # Aggregate counters equal the sum of the per-request counters.
        assert len(result.per_request) == 60
        assert result.io.total_chunks == sum(
            c.total_chunks for c in result.per_request
        )
        assert result.read_chunks + result.write_chunks == (
            result.io.total_chunks
        )
        assert result.chunks_per_write > 0
        # TIP's floor: every write moves >= 1 data + 3 parity chunks.
        assert result.chunks_per_write >= 4.0

    def test_replay_wraps_offsets_modulo_capacity(self, device):
        cap = device.capacity_bytes
        trace = Trace("wrap", [
            TraceRequest(0.0, cap * 7 + 123, 256, True),
            TraceRequest(1.0, cap * 7 + 123, 256, False),
            TraceRequest(2.0, cap - 100, 10_000_000, True),  # clamps
        ])
        result = device.replay(trace)
        assert result.requests == 3
        assert result.bytes_written == 256 + 100
        # The wrapped write landed at offset 123 with the deterministic
        # replay payload for that request.
        got = np.frombuffer(device.read(123, 256), dtype=np.uint8)
        assert got.size == 256 and got.max() < 251

    def test_replay_is_deterministic(self, tmp_path):
        code = make_code("tip", 6)
        trace = generate_trace("financial_1", requests=40, seed=9)
        totals = []
        for tag in ("a", "b"):
            store = ArrayStore(code, tmp_path / tag, stripes=4,
                               chunk_bytes=CHUNK)
            result = BlockDevice(store).replay(trace)
            totals.append(
                (result.io.total_chunks, result.bytes_read,
                 result.bytes_written)
            )
        assert totals[0] == totals[1]

    def test_degraded_replay(self, tmp_path):
        code = make_code("star", 6)
        store = ArrayStore(code, tmp_path / "degrep", stripes=4,
                           chunk_bytes=CHUNK)
        store.fail_disk(0)
        store.fail_disk(2)
        trace = generate_trace("prxy_0", requests=50, seed=2)
        result = BlockDevice(store).replay(trace)
        assert result.requests == 50
        # Degraded reads fan out to survivors: strictly more chunks per
        # read than the healthy single-element reads would need.
        healthy = ArrayStore(code, tmp_path / "healthy", stripes=4,
                             chunk_bytes=CHUNK)
        healthy_result = BlockDevice(healthy).replay(trace)
        assert result.read_chunks >= healthy_result.read_chunks


class TestRetryCapChaining:
    def test_retry_cap_ioerror_chains_the_final_fault(
        self, device, monkeypatch
    ):
        """Regression: the retry-cap ``IOError`` was raised bare, hiding
        which injected fault kept recurring. It must chain the final
        ``FaultError`` as ``__cause__``."""
        from repro.faults.inject import FailStopError

        class AlwaysRepairs:
            def handle_fault(self, exc):
                return True  # claims success; the fault recurs anyway

        def always_faults(offset, data):
            raise FailStopError(2)

        monkeypatch.setattr(device.store, "write_bytes", always_faults)
        trace = Trace("cap", [TraceRequest(0.0, 0, 64, True)])
        with pytest.raises(IOError, match="still faulting") as info:
            device.replay(trace, repair=AlwaysRepairs())
        assert isinstance(info.value.__cause__, FailStopError)
        assert info.value.__cause__.disk == 2
