"""Tests for fleet topology addressing and placement strategies."""

import numpy as np
import pytest

from repro.fleet import (
    CopysetPlacement,
    PartitionedPlacement,
    RandomPlacement,
    Topology,
    make_placement,
    validate_assignment,
)


class TestTopology:
    def test_sizes_and_addressing(self):
        t = Topology(racks=3, machines_per_rack=4, disks_per_machine=2)
        assert t.num_machines == 12
        assert t.num_disks == 24
        assert t.machine_of_disk(0) == 0
        assert t.machine_of_disk(23) == 11
        assert t.rack_of_machine(11) == 2
        assert t.rack_of_disk(23) == 2
        assert list(t.disks_of_machine(1)) == [2, 3]
        assert list(t.machines_of_rack(1)) == [4, 5, 6, 7]
        assert list(t.disks_of_rack(0)) == list(range(8))

    def test_every_disk_maps_back_into_its_domains(self):
        t = Topology(2, 3, 5)
        for disk in range(t.num_disks):
            assert disk in t.disks_of_machine(t.machine_of_disk(disk))
            assert disk in t.disks_of_rack(t.rack_of_disk(disk))

    def test_parse_round_trip(self):
        t = Topology.parse("4x8x12")
        assert (t.racks, t.machines_per_rack, t.disks_per_machine) == (4, 8, 12)
        assert Topology.parse(t.spec()) == t

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            Topology.parse("4x8")
        with pytest.raises(ValueError):
            Topology.parse("4xax2")
        with pytest.raises(ValueError):
            Topology.parse("0x4x4")

    def test_domain_lookups_validated(self):
        t = Topology(2, 2, 2)
        with pytest.raises(ValueError):
            t.disks_of_machine(4)
        with pytest.raises(ValueError):
            t.machines_of_rack(-1)


class TestValidateAssignment:
    def setup_method(self):
        self.topology = Topology(2, 4, 2)  # 8 machines, 16 disks

    def test_accepts_legal_assignment(self):
        validate_assignment(self.topology, [(0, 2, 4, 6)], width=4)

    def test_rejects_wrong_width(self):
        with pytest.raises(ValueError, match="expected 4"):
            validate_assignment(self.topology, [(0, 2, 4)], width=4)

    def test_rejects_out_of_range_disk(self):
        with pytest.raises(ValueError, match="out of range"):
            validate_assignment(self.topology, [(0, 2, 4, 99)], width=4)

    def test_rejects_duplicate_disks(self):
        with pytest.raises(ValueError):
            validate_assignment(self.topology, [(0, 2, 4, 4)], width=4)

    def test_rejects_shared_machine(self):
        # disks 0 and 1 live on machine 0
        with pytest.raises(ValueError, match="share a machine"):
            validate_assignment(self.topology, [(0, 1, 4, 6)], width=4)


class TestRandomPlacement:
    def test_assignment_obeys_constraints(self):
        t = Topology(4, 4, 4)
        p = RandomPlacement(t, width=8)
        assignment = p.assign(200, np.random.default_rng(0))
        validate_assignment(t, assignment, 8)

    def test_deterministic_given_seed(self):
        t = Topology(4, 4, 4)
        a = RandomPlacement(t, 8).assign(50, np.random.default_rng(3))
        b = RandomPlacement(t, 8).assign(50, np.random.default_rng(3))
        assert a == b

    def test_many_distinct_machine_sets(self):
        """Spread placement approaches C(M, width) distinct sets."""
        t = Topology(4, 4, 1)
        p = RandomPlacement(t, width=4)
        assignment = p.assign(500, np.random.default_rng(1))
        sets = {
            frozenset(t.machine_of_disk(d) for d in disks)
            for disks in assignment
        }
        assert len(sets) > 100  # C(16, 4) = 1820 possible

    def test_width_exceeding_machines_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            RandomPlacement(Topology(1, 4, 8), width=5)


class TestCopysetPlacement:
    def setup_method(self):
        self.topology = Topology(4, 4, 2)  # 16 machines

    def test_every_stripe_inside_one_copyset(self):
        """The core invariant: a stripe's machines are exactly one
        copyset, so only copyset-covering failures can lose data."""
        p = CopysetPlacement(self.topology, width=4, permutations=3)
        assignment = p.assign(300, np.random.default_rng(2))
        validate_assignment(self.topology, assignment, 4)
        copysets = {frozenset(cs) for cs in p.copysets}
        for disks in assignment:
            machines = frozenset(
                self.topology.machine_of_disk(d) for d in disks
            )
            assert machines in copysets

    def test_copyset_count_bounded(self):
        """len(copysets) <= permutations * (M // width) — the bounded
        fatal-set family that distinguishes copyset from random."""
        for perms in (1, 2, 4):
            p = CopysetPlacement(self.topology, width=4, permutations=perms)
            p.assign(100, np.random.default_rng(0))
            assert len(p.copysets) <= perms * (16 // 4)

    def test_each_copyset_has_distinct_machines(self):
        p = CopysetPlacement(self.topology, width=4, permutations=2)
        p.assign(10, np.random.default_rng(5))
        for cs in p.copysets:
            assert len(set(cs)) == 4

    def test_scatter_width(self):
        p = CopysetPlacement(self.topology, width=4, permutations=3)
        assert p.scatter_width == 3 * (4 - 1)

    def test_permutations_validated(self):
        with pytest.raises(ValueError):
            CopysetPlacement(self.topology, width=4, permutations=0)


class TestPartitionedPlacement:
    def test_groups_are_fixed_and_disjoint(self):
        t = Topology(4, 4, 2)
        p = PartitionedPlacement(t, width=4)
        assert p.groups == [
            (0, 1, 2, 3), (4, 5, 6, 7), (8, 9, 10, 11), (12, 13, 14, 15),
        ]

    def test_stripes_round_robin_over_groups(self):
        t = Topology(4, 4, 2)
        p = PartitionedPlacement(t, width=4)
        assignment = p.assign(8, np.random.default_rng(0))
        validate_assignment(t, assignment, 4)
        for stripe, disks in enumerate(assignment):
            machines = tuple(
                sorted(t.machine_of_disk(d) for d in disks)
            )
            assert machines == p.groups[stripe % 4]

    def test_tail_machines_host_nothing(self):
        t = Topology(1, 10, 1)  # 10 machines, width 4 -> 2 machines idle
        p = PartitionedPlacement(t, width=4)
        assignment = p.assign(40, np.random.default_rng(0))
        used = {t.machine_of_disk(d) for disks in assignment for d in disks}
        assert used == set(range(8))


class TestMakePlacement:
    def test_registry(self):
        t = Topology(4, 4, 2)
        assert isinstance(make_placement("random", t, 4), RandomPlacement)
        assert isinstance(make_placement("pss", t, 4), PartitionedPlacement)
        copyset = make_placement("copyset", t, 4, permutations=5)
        assert isinstance(copyset, CopysetPlacement)
        assert copyset.permutations == 5

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown placement"):
            make_placement("ring", Topology(4, 4, 2), 4)
