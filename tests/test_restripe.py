"""Online code migration: the restripe equivalence contract.

The acceptance property: a volume restriped *while serving writes* must
end byte-identical to a volume that ran the same workload with no
migration — for a geometry change (TIP p → TIP p') and a code-family
change (TIP → STAR) — and a migration killed at any journal boundary
must resume to the same bytes.
"""

import shutil

import numpy as np
import pytest

from repro.service import VolumeService
from repro.volume import Restriper, ShardSpec, VolumeManager

from tests.test_journal import Crash, CrashingJournal  # noqa: F401 (fixture)


def _source_specs():
    return [
        ShardSpec("tip", 5, stripes=6, chunk_bytes=512),
        ShardSpec("tip", 7, stripes=4, chunk_bytes=512),
    ]


GEOMETRY_TARGET = [
    ShardSpec("tip", 11, stripes=8, chunk_bytes=512),
]
FAMILY_TARGET = [
    ShardSpec("star", 7, stripes=12, chunk_bytes=512),
    ShardSpec("star", 5, stripes=12, chunk_bytes=512),
]


def _fresh_volume(tmp_path, name, seed=21, extent_bytes=2048):
    vol = VolumeManager.create(
        tmp_path / name, _source_specs(), extent_bytes=extent_bytes
    )
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 256, vol.volume_bytes, dtype=np.uint8)
    vol.write_bytes(0, data)
    return vol, data


def _workload(volume_bytes, workers=3, ops=12, seed=99):
    """Deterministic per-worker write lists over disjoint regions."""
    rng = np.random.default_rng(seed)
    region = volume_bytes // workers
    slot = region // ops
    plan = []
    for worker in range(workers):
        base = worker * region
        plan.append(
            [
                (
                    base + index * slot,
                    rng.integers(
                        0, 256, int(rng.integers(1, slot)), dtype=np.uint8
                    ),
                )
                for index in range(ops)
            ]
        )
    return plan


def _apply_shadow(shadow, plan):
    for ops in plan:
        for offset, payload in ops:
            shadow[offset : offset + payload.size] = payload


@pytest.mark.parametrize(
    "target", [GEOMETRY_TARGET, FAMILY_TARGET],
    ids=["tip-geometry-change", "tip-to-star-family-change"],
)
class TestOnlineEquivalence:
    def test_restripe_under_load_matches_quiet_volume(self, tmp_path, target):
        # Volume A: restripe while the workload runs concurrently.
        vol_a, data = _fresh_volume(tmp_path, "live")
        plan = _workload(vol_a.volume_bytes)
        service = VolumeService(vol_a, workers=len(plan))
        service.start_restripe(target, extents_per_tick=2)
        futures = [
            service.submit_write(offset, payload)
            for ops in plan
            for offset, payload in ops
        ]
        for future in futures:
            future.result()
        stats = service.join_restripe()
        assert stats.done
        assert stats.extents_copied == vol_a.total_extents

        # Volume B: identical workload, no migration.
        vol_b, data_b = _fresh_volume(tmp_path, "quiet")
        assert np.array_equal(data, data_b)
        for ops in plan:
            for offset, payload in ops:
                vol_b.write_bytes(offset, payload)

        got_a = vol_a.read_bytes(0, vol_a.volume_bytes)
        got_b = vol_b.read_bytes(0, vol_b.volume_bytes)
        assert np.array_equal(got_a, got_b)
        shadow = data.copy()
        _apply_shadow(shadow, plan)
        assert np.array_equal(got_a, shadow)
        assert vol_a.scrub() == {}
        assert [s["family"] for s in vol_a.status().shards] == [
            spec.family for spec in target
        ]
        service.close()
        vol_b.close()

    def test_reads_during_migration_see_every_write(self, tmp_path, target):
        vol, data = _fresh_volume(tmp_path, "readcheck")
        shadow = data.copy()
        restriper = Restriper(vol, target, extents_per_tick=3)
        rng = np.random.default_rng(4)
        while not restriper.done:
            restriper.tick()
            offset = int(rng.integers(0, vol.volume_bytes - 600))
            payload = rng.integers(0, 256, 600, dtype=np.uint8)
            vol.write_bytes(offset, payload)
            shadow[offset : offset + 600] = payload
            assert np.array_equal(
                vol.read_bytes(0, vol.volume_bytes), shadow
            )
        restriper.finish()
        assert np.array_equal(vol.read_bytes(0, vol.volume_bytes), shadow)
        vol.close()


class TestRestripeMechanics:
    def test_throttle_bounds_ticks(self, tmp_path):
        vol, data = _fresh_volume(tmp_path, "throttle")
        total = vol.total_extents
        restriper = Restriper(vol, GEOMETRY_TARGET, extents_per_tick=4)
        ticks = 0
        while not restriper.done:
            assert restriper.tick() <= 4
            ticks += 1
        assert ticks == -(-total // 4)  # ceil division
        restriper.finish()
        assert np.array_equal(vol.read_bytes(0, vol.volume_bytes), data)
        vol.close()

    def test_finish_requires_complete_copy(self, tmp_path):
        vol, _ = _fresh_volume(tmp_path, "incomplete")
        restriper = Restriper(vol, GEOMETRY_TARGET, extents_per_tick=1)
        restriper.tick()
        with pytest.raises(RuntimeError, match="incomplete"):
            vol.finish_restripe()
        restriper.drain()
        vol.close()

    def test_finish_retires_old_shard_directories(self, tmp_path):
        vol, data = _fresh_volume(tmp_path, "retire")
        old_dirs = [store.directory for store in vol.shards]
        Restriper(vol, GEOMETRY_TARGET, extents_per_tick=8).run()
        assert not any(path.exists() for path in old_dirs)
        assert np.array_equal(vol.read_bytes(0, vol.volume_bytes), data)
        vol.close()

    def test_double_restripe_rejected(self, tmp_path):
        vol, _ = _fresh_volume(tmp_path, "double")
        restriper = Restriper(vol, GEOMETRY_TARGET)
        with pytest.raises(RuntimeError, match="already in flight"):
            vol.begin_restripe(GEOMETRY_TARGET)
        restriper.drain()
        vol.close()

    def test_target_must_hold_the_volume(self, tmp_path):
        vol, _ = _fresh_volume(tmp_path, "small")
        with pytest.raises(ValueError, match="less than the volume"):
            vol.begin_restripe(
                [ShardSpec("tip", 5, stripes=1, chunk_bytes=512)]
            )
        vol.close()

    def test_resume_requires_inflight_migration(self, tmp_path):
        vol, _ = _fresh_volume(tmp_path, "noresume")
        with pytest.raises(ValueError, match="no restripe in flight"):
            Restriper(vol)
        vol.close()

    def test_interrupted_migration_resumes_across_open(self, tmp_path):
        vol, data = _fresh_volume(tmp_path, "resume")
        restriper = Restriper(vol, FAMILY_TARGET, extents_per_tick=5)
        restriper.tick()
        restriper.tick()
        cursor = vol.restripe_cursor
        assert 0 < cursor < vol.total_extents
        vol.close()  # orderly shutdown mid-migration
        reopened = VolumeManager.open(tmp_path / "resume")
        assert reopened.restriping
        assert reopened.restripe_cursor == cursor
        resumed = Restriper(reopened)  # no target: resume from metadata
        resumed.run()
        assert np.array_equal(
            reopened.read_bytes(0, reopened.volume_bytes), data
        )
        assert [s["family"] for s in reopened.status().shards] == [
            "star", "star",
        ]
        reopened.close()


class TestRestripeCrashSweep:
    """Kill the process at every journal write/fsync boundary of a
    migration; reopening must resume to byte-identical contents."""

    def test_crash_at_every_boundary_resumes_byte_identical(
        self, tmp_path, monkeypatch
    ):
        target = [ShardSpec("star", 7, stripes=10, chunk_bytes=512)]
        # Template: a populated, cleanly closed volume.
        template, data = _fresh_volume(
            tmp_path, "template", extent_bytes=4096
        )
        template.close()

        monkeypatch.setattr(
            "repro.volume.manager.IntentJournal", CrashingJournal
        )

        def migrate(name):
            vol = VolumeManager.open(tmp_path / name)
            Restriper(vol, target, extents_per_tick=3).run()
            return vol

        # Count the crash-free run's journal boundaries.
        shutil.copytree(tmp_path / "template", tmp_path / "count")
        CrashingJournal.arm(None)
        start = CrashingJournal.ops
        vol = migrate("count")
        total = CrashingJournal.ops - start
        assert np.array_equal(vol.read_bytes(0, vol.volume_bytes), data)
        vol.close()
        assert total > 10

        for boundary in range(total):
            name = f"crash{boundary}"
            shutil.copytree(tmp_path / "template", tmp_path / name)
            CrashingJournal.arm(boundary)
            try:
                vol = migrate(name)
                # Budget outlasted this run's ops (fsync timing shifts
                # with recovery state): completed without crashing.
                CrashingJournal.arm(None)
                vol.close()
                continue
            except Crash:
                pass
            CrashingJournal.arm(None)
            # Process death: reopen, which replays the journal, then
            # resume the migration from the durable cursor.
            reopened = VolumeManager.open(tmp_path / name)
            if reopened.restriping:
                Restriper(reopened, extents_per_tick=3).run()
            got = reopened.read_bytes(0, reopened.volume_bytes)
            assert np.array_equal(got, data), (
                f"contents diverged after crash at boundary {boundary}"
            )
            assert reopened.scrub() == {}
            assert [s["family"] for s in reopened.status().shards] == [
                "star"
            ]
            reopened.close()

    def test_crash_mid_foreground_write_during_migration(
        self, tmp_path, monkeypatch
    ):
        """A foreground write killed at a journal boundary while a
        migration is in flight recovers to old-or-new bytes and the
        migration still completes."""
        vol, data = _fresh_volume(tmp_path, "mixed", extent_bytes=4096)
        vol.close()
        monkeypatch.setattr(
            "repro.volume.manager.IntentJournal", CrashingJournal
        )
        vol = VolumeManager.open(tmp_path / "mixed")
        restriper = Restriper(
            vol, [ShardSpec("star", 7, stripes=10, chunk_bytes=512)],
            extents_per_tick=2,
        )
        restriper.tick()
        payload = np.full(3000, 0xCD, dtype=np.uint8)
        offset = 1024
        CrashingJournal.arm(2)  # die inside the foreground write
        with pytest.raises(Crash):
            vol.write_bytes(offset, payload)
        CrashingJournal.arm(None)
        reopened = VolumeManager.open(tmp_path / "mixed")
        got = reopened.read_bytes(0, reopened.volume_bytes)
        old = data.copy()
        new = data.copy()
        new[offset : offset + payload.size] = payload
        # Per-extent-run atomicity: each touched extent is old or new.
        for extent_start in range(0, reopened.volume_bytes, 4096):
            span = slice(extent_start, extent_start + 4096)
            assert np.array_equal(got[span], old[span]) or np.array_equal(
                got[span], new[span]
            )
        Restriper(reopened, extents_per_tick=2).run()
        assert reopened.scrub() == {}
        reopened.close()
