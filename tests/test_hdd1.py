"""Tests for the HDD1 reconstruction (worst-update-complexity baseline)."""

import itertools

import numpy as np
import pytest

from repro.analysis import single_write_cost
from repro.codes.hdd1 import Hdd1Code, make_hdd1
from repro.codes.registry import make_code


class TestStructure:
    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_shape(self, p):
        code = Hdd1Code(p)
        assert code.rows == p - 1
        assert code.cols == p + 1
        assert code.k == p - 2
        assert code.num_parity == 3 * (p - 1)

    def test_invalid_p(self):
        for bad in (3, 4, 6, 9):
            with pytest.raises(ValueError):
                Hdd1Code(bad)

    def test_only_p_plus_1_sizes(self):
        """The TIP paper: HDD1 'can only be used with p+1 disks'."""
        assert make_hdd1(6).cols == 6
        assert make_hdd1(8).cols == 8
        for bad in (7, 9, 10, 13, 15):
            with pytest.raises(ValueError):
                make_hdd1(bad)


class TestBehaviour:
    @pytest.mark.parametrize("p", [5, 7])
    def test_mds(self, p):
        assert Hdd1Code(p).is_mds()

    @pytest.mark.parametrize("p", [5, 7])
    def test_decode_all_triples(self, p):
        code = Hdd1Code(p)
        stripe = code.random_stripe(packet_size=4, seed=p)
        for combo in itertools.combinations(range(code.cols), 3):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_single_write_cost_grows_toward_cascade_limit(self):
        """The doubled cascade costs ~2 + 8(p-1)/p minus boundary-overlap
        savings: strictly increasing in p and approaching ~10."""
        costs = [single_write_cost(Hdd1Code(p)) for p in (5, 7, 11, 13)]
        assert all(b > a for a, b in zip(costs, costs[1:]))
        assert 7.0 < costs[0] < 8.0
        assert 9.0 < costs[-1] < 10.0

    @pytest.mark.parametrize("n", [6, 8, 12])
    def test_worst_update_complexity_of_evaluated_codes(self, n):
        """HDD1's defining role in Figs. 10-12: the highest write cost."""
        hdd1_cost = single_write_cost(make_code("hdd1", n))
        for family in ("tip", "star", "triple-star", "cauchy-rs"):
            assert single_write_cost(make_code(family, n)) < hdd1_cost
