"""Verify the paper's algebraic identities on the equivalent layout D
and the symmetrized matrix E (Sec. III-C/III-D, Eqs. 4-16).

These are the lemmas Theorem 1's proof rests on; testing them directly on
random stripes pins the implementation to the paper's mathematics rather
than just to end-to-end decode success.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codes.tip import TipCode


def build_d(code, stripe):
    """The D layout as a dict keyed by mathematical row -1..p-1."""
    decoder = code.algebraic_decoder()
    d_matrix = decoder._build_d(stripe)
    return {row: d_matrix[row + 1] for row in range(-1, code.p)}


@pytest.fixture(scope="module", params=[5, 7, 11])
def setup(request):
    code = TipCode(request.param)
    stripe = code.random_stripe(packet_size=8, seed=request.param)
    return code, stripe, build_d(code, stripe)


def xor_all(packets):
    acc = np.zeros_like(packets[0])
    for packet in packets:
        acc = acc ^ packet
    return acc


class TestEquivalentLayoutD:
    def test_eq4_s_is_sum_of_horizontal_parities(self, setup):
        """Eq. 4: S = XOR of all horizontal parities = XOR of all data."""
        code, stripe, d = setup
        p = code.p
        s_from_parities = xor_all([stripe[i, p] for i in range(p - 1)])
        data_cells = [
            stripe[r, c]
            for (r, c) in code.data_positions
        ]
        assert np.array_equal(s_from_parities, xor_all(data_cells))

    def test_eq5_row_sums(self, setup):
        """Eq. 5: row i of D sums to D[i,p] for 0<=i<=p-2, and rows -1 and
        p-1 (the moved parities) sum to S."""
        code, stripe, d = setup
        p = code.p
        s_total = xor_all([stripe[i, p] for i in range(p - 1)])
        for i in range(p - 1):
            row_sum = xor_all([d[i][j] for j in range(p)])
            assert np.array_equal(row_sum, stripe[i, p]), i
        for i in (-1, p - 1):
            row_sum = xor_all([d[i][j] for j in range(p)])
            assert np.array_equal(row_sum, s_total), i

    def test_eq6_diagonal_chains_vanish(self, setup):
        """Eq. 6: XOR_j D[<i-j>_p, j] = 0 over rows 0..p-1."""
        code, stripe, d = setup
        p = code.p
        for i in range(p):
            chain = xor_all([d[(i - j) % p][j] for j in range(p)])
            assert not chain.any(), i

    def test_eq7_anti_diagonal_chains_vanish(self, setup):
        """Eq. 7: XOR_j D[p-2-<i-j>_p, j] = 0 over rows -1..p-2."""
        code, stripe, d = setup
        p = code.p
        for i in range(p):
            chain = xor_all(
                [d[p - 2 - (i - j) % p][j] for j in range(p)]
            )
            assert not chain.any(), i

    def test_empty_elements_of_d(self, setup):
        """Each column j of D has structural zeros at the vacated parity
        positions (rows j-1 and p-1-j, with column 0 using rows -1, p-1)."""
        code, stripe, d = setup
        decoder = code.algebraic_decoder()
        for col in range(code.p):
            for row in decoder._empty_rows_of_column(col):
                assert not d[row][col].any(), (row, col)


class TestMatrixE:
    @staticmethod
    def build_e(code, d):
        p = code.p
        return {i: d[i] ^ d[p - 2 - i] for i in range(p)}

    def test_eq10_row_chains(self, setup):
        """Eq. 10: row i of E sums to D[i,p] ^ D[p-2-i,p] (0 for i=p-1)."""
        code, stripe, d = setup
        p = code.p
        e = self.build_e(code, d)
        for i in range(p - 1):
            row_sum = xor_all([e[i][j] for j in range(p)])
            expected = stripe[i, p] ^ stripe[p - 2 - i, p]
            assert np.array_equal(row_sum, expected), i
        assert not xor_all([e[p - 1][j] for j in range(p)]).any()

    def test_eq11_eq12_diagonals_vanish(self, setup):
        """Eqs. 11-12: E's diagonal and anti-diagonal chains sum to 0."""
        code, stripe, d = setup
        p = code.p
        e = self.build_e(code, d)
        for i in range(p):
            diag = xor_all([e[(i - j) % p][j] for j in range(p)])
            anti = xor_all([e[(i + j) % p][j] for j in range(p)])
            assert not diag.any(), ("diag", i)
            assert not anti.any(), ("anti", i)

    def test_e_symmetry(self, setup):
        """Eq. 9's consequence: E[p-2-i] == E[i]."""
        code, stripe, d = setup
        p = code.p
        e = self.build_e(code, d)
        for i in range(p):
            assert np.array_equal(e[i], e[(p - 2 - i) % p]), i

    def test_empty_elements_of_e(self, setup):
        """Sec. III-D step 5: E[i, p-1-i] is structurally zero."""
        code, stripe, d = setup
        p = code.p
        e = self.build_e(code, d)
        for i in range(p):
            assert not e[i][(p - 1 - i) % p].any(), i

    def test_eq16_sub_d_anti_chains(self, setup):
        """Eq. 16: over the p x p sub-matrix of D (rows 0..p-1),
        XOR_j D[<i+j>_p, j] = E[p-1, p-1-i]."""
        code, stripe, d = setup
        p = code.p
        e = self.build_e(code, d)
        for i in range(p):
            chain = xor_all([d[(i + j) % p][j] for j in range(p)])
            assert np.array_equal(chain, e[p - 1][(p - 1 - i) % p]), i


class TestCrossPattern:
    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_eq13_eq14_cross_pattern_identity(self, seed):
        """Eq. 13/14: the XOR of the four syndromes in a cross pattern
        equals the XOR of the corresponding 4-tuple of the middle column,
        for random failures and random rows."""
        rng = np.random.default_rng(seed)
        p = 7
        code = TipCode(p)
        stripe = code.random_stripe(packet_size=4, seed=seed % 1000)
        d_full = code.algebraic_decoder()._build_d(stripe)
        e = np.zeros((p, p, 4), dtype=np.uint8)
        for i in range(p):
            e[i] = d_full[i + 1] ^ d_full[p - 1 - i]
        f1, f2, f3 = sorted(rng.choice(p, size=3, replace=False).tolist())
        u, v = f2 - f1, f3 - f2
        surviving = [c for c in range(p) if c not in (f1, f2, f3)]

        def srow(r):
            rhs = (
                stripe[r, p] ^ stripe[p - 2 - r, p]
                if r != p - 1
                else np.zeros(4, dtype=np.uint8)
            )
            for j in surviving:
                rhs = rhs ^ e[r, j]
            return rhs

        def sdiag(r):
            acc = np.zeros(4, dtype=np.uint8)
            for j in surviving:
                acc = acc ^ e[(r - j) % p, j]
            return acc

        def santi(r):
            acc = np.zeros(4, dtype=np.uint8)
            for j in surviving:
                acc = acc ^ e[(r + j) % p, j]
            return acc

        for r in range(p):
            cross = (
                srow(r)
                ^ srow((r + u + v) % p)
                ^ sdiag((r + f3) % p)
                ^ santi((r - f1) % p)
            )
            four_tuple = (
                e[r, f2]
                ^ e[(r + v) % p, f2]
                ^ e[(r + u) % p, f2]
                ^ e[(r + u + v) % p, f2]
            )
            assert np.array_equal(cross, four_tuple), r
