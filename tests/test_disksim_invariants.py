"""Deeper simulator invariants: phase ordering, conservation, stability."""

from repro.codes import make_code
from repro.disksim import ArraySimulator, RaidController
from repro.disksim.simulator import _PendingRequest
from repro.traces import Trace, TraceRequest

CHUNK = 8 * 1024


class RecordingSimulator(ArraySimulator):
    """ArraySimulator that logs every I/O dispatch for inspection."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.dispatch_log: list[tuple[float, bool, int]] = []
        # Hold a reference to every pending request so id() stays unique
        # (CPython recycles addresses of collected objects).
        self._pendings: dict[int, object] = {}

    def _start_next(self, now, disk_index):
        station = self.stations[disk_index]
        if not station.busy and station.queue:
            io, pending = station.queue[0]
            self._pendings[id(pending)] = pending
            self.dispatch_log.append((now, io.is_write, id(pending)))
        super()._start_next(now, disk_index)


def write_trace(count=15, gap=5.0):
    return Trace(
        "inv",
        [
            TraceRequest(i * gap, i * 2 * CHUNK, CHUNK, True)
            for i in range(count)
        ],
    )


def test_writes_never_dispatch_before_their_reads():
    """RMW correctness: for every request, all pre-read dispatches happen
    strictly before any write dispatch (two-phase commit of the plan)."""
    sim = RecordingSimulator(make_code("tip", 6), CHUNK, seed=1)
    sim.run(write_trace())
    last_read: dict[int, float] = {}
    first_write: dict[int, float] = {}
    for when, is_write, request_id in sim.dispatch_log:
        if is_write:
            first_write.setdefault(request_id, when)
        else:
            last_read[request_id] = max(last_read.get(request_id, 0.0), when)
    for request_id, write_time in first_write.items():
        if request_id in last_read:
            assert write_time >= last_read[request_id], request_id


def test_io_conservation():
    """Every planned element I/O is dispatched exactly once."""
    code = make_code("tip", 6)
    sim = RecordingSimulator(code, CHUNK, seed=2)
    trace = write_trace(count=10)
    result = sim.run(trace)
    assert len(sim.dispatch_log) == result.total_element_ios
    controller = RaidController(code, CHUNK)
    planned = sum(controller.plan(r).total_ios for r in trace)
    assert result.total_element_ios == planned


def test_response_time_positive_and_bounded_by_makespan():
    sim = ArraySimulator(make_code("tip", 6), CHUNK, seed=3)
    result = sim.run(write_trace())
    assert 0 < result.mean_response_ms
    assert result.p99_response_ms <= result.makespan_ms


def test_lower_load_means_lower_latency():
    """Stretching arrivals (less queueing) can only help latency."""
    code = make_code("tip", 8)
    base = write_trace(count=40, gap=0.002)  # effectively simultaneous
    relaxed = base.stretched(10_000.0)
    busy = ArraySimulator(code, CHUNK, seed=4).run(base)
    idle = ArraySimulator(code, CHUNK, seed=4).run(relaxed)
    assert idle.mean_response_ms < busy.mean_response_ms


def test_pending_request_state_machine():
    pending = _PendingRequest(arrival_ms=0.0, writes=[], outstanding=2, phase=2)
    assert pending.outstanding == 2
    pending.outstanding -= 1
    assert pending.outstanding == 1


def test_single_disk_queue_serializes():
    """Two simultaneous requests to the same disk must serialize: the
    second completes after the first."""
    code = make_code("tip", 6)
    trace = Trace(
        "same-disk",
        [
            TraceRequest(0.0, 0, CHUNK, False),
            TraceRequest(0.0, code.num_data * CHUNK, CHUNK, False),
        ],
    )
    # Both requests read logical chunk 0 of their stripes -> same disk;
    # the second waits for the first, so the two latencies must differ.
    result = ArraySimulator(code, CHUNK, seed=5).run(trace)
    assert result.p99_response_ms > result.mean_response_ms
