"""Tests for the disk model, RAID controller, and array simulator."""

import pytest

from repro.codes import make_code
from repro.disksim import (
    ArraySimulator,
    DiskParameters,
    Disk,
    RaidController,
    simulate_trace,
)
from repro.traces import Trace, TraceRequest, generate_trace

CHUNK = 8 * 1024


class TestDiskModel:
    def test_seek_zero_distance(self):
        params = DiskParameters()
        assert params.seek_ms(0) == 0.0

    def test_seek_monotone_in_distance(self):
        params = DiskParameters()
        seeks = [params.seek_ms(d) for d in (1, 10, 1000, 100000)]
        assert all(b >= a for a, b in zip(seeks, seeks[1:]))

    def test_transfer_scales_with_bytes(self):
        params = DiskParameters(transfer_mb_s=100.0)
        assert params.transfer_ms(100_000_000) == pytest.approx(1000.0)

    def test_revolution_time(self):
        assert DiskParameters(rpm=7200).revolution_ms == pytest.approx(8.333, abs=0.01)

    def test_sequential_io_is_fast(self):
        disk = Disk(DiskParameters(), seed=1)
        disk.service_ms(100, CHUNK)  # position the head
        sequential = disk.service_ms(disk.head, CHUNK)
        far = disk.service_ms(disk.head + 500_000, CHUNK)
        assert sequential < far

    def test_deterministic_given_seed(self):
        a = Disk(DiskParameters(), seed=5)
        b = Disk(DiskParameters(), seed=5)
        for lba in (10, 5000, 3, 999999):
            assert a.service_ms(lba, CHUNK) == b.service_ms(lba, CHUNK)


class TestController:
    @pytest.fixture(scope="class")
    def controller(self):
        return RaidController(make_code("tip", 8), CHUNK)

    def test_single_chunk_write_is_rmw(self, controller):
        plan = controller.plan(TraceRequest(0.0, 0, CHUNK, True))
        # TIP: 1 data + 3 parities, each read then written.
        assert len(plan.reads) == 4
        assert len(plan.writes) == 4
        assert plan.total_ios == 8

    def test_full_stripe_write_has_no_reads(self, controller):
        code = controller.code
        plan = controller.plan(
            TraceRequest(0.0, 0, code.num_data * CHUNK, True)
        )
        assert plan.reads == []
        assert len(plan.writes) == len(code.nonempty_positions)

    def test_read_request_reads_covered_elements(self, controller):
        plan = controller.plan(TraceRequest(0.0, 0, 3 * CHUNK, False))
        assert len(plan.reads) == 3
        assert plan.writes == []

    def test_reads_and_writes_target_same_cells_for_rmw(self, controller):
        plan = controller.plan(TraceRequest(0.0, CHUNK, 2 * CHUNK, True))
        read_cells = {(io.disk, io.lba_chunk) for io in plan.reads}
        write_cells = {(io.disk, io.lba_chunk) for io in plan.writes}
        assert read_cells == write_cells

    def test_stripe_mapping_lba(self, controller):
        code = controller.code
        per_stripe = code.num_data
        plan = controller.plan(
            TraceRequest(0.0, per_stripe * CHUNK, CHUNK, False)
        )
        (io,) = plan.reads
        row, col = code.data_positions[0]
        assert io.disk == col
        assert io.lba_chunk == code.rows + row  # second stripe

    def test_degraded_read_expands_to_survivors(self):
        code = make_code("tip", 6)
        controller = RaidController(code, CHUNK)
        failed = (0, 1, 2)
        plan = controller.plan(TraceRequest(0.0, 0, CHUNK, False), failed)
        # Reconstruction reads every surviving element of the stripe.
        decoder = code.decoder_for(failed)
        assert len(plan.reads) == len(decoder.plan.known_positions)

    def test_writes_to_failed_disks_dropped(self):
        code = make_code("tip", 6)
        controller = RaidController(code, CHUNK)
        plan = controller.plan(TraceRequest(0.0, 0, CHUNK, True), failed=(0,))
        assert all(io.disk != 0 for io in plan.reads + plan.writes)

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            RaidController(make_code("tip", 6), 0)


class TestSimulator:
    def make_trace(self, writes=30, gap=0.2):
        return Trace(
            "unit",
            [
                TraceRequest(i * gap, i * 3 * CHUNK, CHUNK, True)
                for i in range(writes)
            ],
        )

    def test_results_populated(self):
        result = simulate_trace(make_code("tip", 6), self.make_trace())
        assert result.requests == 30
        assert result.mean_response_ms > 0
        assert result.p99_response_ms >= result.median_response_ms
        assert result.total_element_ios == 30 * 8

    def test_deterministic(self):
        code = make_code("tip", 6)
        trace = self.make_trace()
        a = simulate_trace(code, trace, seed=3)
        b = simulate_trace(code, trace, seed=3)
        assert a.mean_response_ms == b.mean_response_ms

    def test_fewer_element_ios_is_faster_under_load(self):
        """The Fig. 13 mechanism: at equal workload, the code that writes
        fewer elements per request responds faster."""
        trace = generate_trace("financial_1", requests=800, seed=9)
        tip = simulate_trace(make_code("tip", 8), trace)
        hdd1 = simulate_trace(make_code("hdd1", 8), trace)
        assert tip.total_element_ios < hdd1.total_element_ios
        assert tip.mean_response_ms < hdd1.mean_response_ms

    def test_normalization(self):
        trace = self.make_trace()
        a = simulate_trace(make_code("tip", 6), trace)
        assert a.normalized_to(a) == pytest.approx(1.0)

    def test_degraded_array_is_slower(self):
        code = make_code("tip", 6)
        trace = Trace(
            "reads",
            [TraceRequest(i * 0.5, i * CHUNK, CHUNK, False) for i in range(20)],
        )
        healthy = ArraySimulator(code).run(trace)
        degraded = ArraySimulator(code, failed=(0, 1, 2)).run(trace)
        assert degraded.total_element_ios > healthy.total_element_ios
