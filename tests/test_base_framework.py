"""Tests for the ArrayCode framework itself (repro.codes.base)."""

import numpy as np
import pytest

from repro.bitmatrix import bm_mul
from repro.codes.base import ArrayCode, Cell, shorten
from repro.codes.tip import TipCode
from repro.codes.triple_star import TripleStarCode


def tiny_code() -> ArrayCode:
    """A hand-built 2x3 single-parity code for framework edge cases."""
    return ArrayCode(
        name="tiny",
        rows=2,
        cols=3,
        kinds={(0, 2): Cell.PARITY, (1, 2): Cell.PARITY},
        chains={
            (0, 2): ((0, 0), (0, 1)),
            (1, 2): ((1, 0), (1, 1)),
        },
        faults=1,
    )


def chained_code() -> ArrayCode:
    """A code whose second parity depends on the first (tests ordering)."""
    return ArrayCode(
        name="chained",
        rows=1,
        cols=4,
        kinds={(0, 2): Cell.PARITY, (0, 3): Cell.PARITY},
        chains={
            (0, 2): ((0, 0), (0, 1)),
            (0, 3): ((0, 1), (0, 2)),  # includes parity (0,2)
        },
        faults=1,
    )


class TestValidation:
    def test_missing_chain_rejected(self):
        with pytest.raises(ValueError, match="chain/parity mismatch"):
            ArrayCode("bad", 1, 3, {(0, 2): Cell.PARITY}, {}, faults=1)

    def test_chain_on_data_cell_rejected(self):
        with pytest.raises(ValueError, match="chain/parity mismatch"):
            ArrayCode(
                "bad", 1, 3, {}, {(0, 2): ((0, 0),)}, faults=1
            )

    def test_self_referencing_chain_rejected(self):
        with pytest.raises(ValueError, match="references itself"):
            ArrayCode(
                "bad", 1, 3, {(0, 2): Cell.PARITY},
                {(0, 2): ((0, 0), (0, 2))}, faults=1,
            )

    def test_chain_through_empty_rejected(self):
        with pytest.raises(ValueError, match="EMPTY"):
            ArrayCode(
                "bad", 1, 3,
                {(0, 2): Cell.PARITY, (0, 1): Cell.EMPTY},
                {(0, 2): ((0, 0), (0, 1))}, faults=1,
            )

    def test_cyclic_chains_rejected(self):
        with pytest.raises(ValueError, match="cyclic"):
            ArrayCode(
                "bad", 1, 4,
                {(0, 2): Cell.PARITY, (0, 3): Cell.PARITY},
                {(0, 2): ((0, 0), (0, 3)), (0, 3): ((0, 1), (0, 2))},
                faults=1,
            )

    def test_duplicate_members_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ArrayCode(
                "bad", 1, 3, {(0, 2): Cell.PARITY},
                {(0, 2): ((0, 0), (0, 0))}, faults=1,
            )

    def test_faults_bounds(self):
        with pytest.raises(ValueError):
            ArrayCode("bad", 1, 3, {}, {}, faults=0)
        with pytest.raises(ValueError):
            ArrayCode("bad", 1, 3, {}, {}, faults=3)

    def test_out_of_grid_position_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            ArrayCode("bad", 1, 3, {(5, 0): Cell.PARITY}, {}, faults=1)


class TestStructure:
    def test_counts(self):
        code = tiny_code()
        assert code.n == 3
        assert code.num_data == 4
        assert code.num_parity == 2
        assert code.k == 2
        assert code.storage_efficiency == pytest.approx(4 / 6)

    def test_data_positions_row_major(self):
        code = tiny_code()
        assert code.data_positions == ((0, 0), (0, 1), (1, 0), (1, 1))

    def test_nonempty_positions_column_major(self):
        code = tiny_code()
        assert code.nonempty_positions == (
            (0, 0), (1, 0), (0, 1), (1, 1), (0, 2), (1, 2)
        )

    def test_encoding_order_respects_dependencies(self):
        code = chained_code()
        order = code.encoding_order
        assert order.index((0, 2)) < order.index((0, 3))

    def test_expanded_chain_cancellation(self):
        code = chained_code()
        # (0,3) = (0,1) ^ (0,2) = (0,1) ^ (0,0) ^ (0,1) = (0,0)
        assert code.expanded_chains[(0, 3)] == frozenset({(0, 0)})

    def test_kind_lookup(self):
        code = tiny_code()
        assert code.kind(0, 0) == Cell.DATA
        assert code.kind(0, 2) == Cell.PARITY
        with pytest.raises(ValueError):
            code.kind(9, 9)


class TestMatrices:
    @pytest.mark.parametrize("code_factory", [tiny_code, chained_code,
                                              lambda: TipCode(5),
                                              lambda: TripleStarCode(5)])
    def test_parity_check_annihilates_generator(self, code_factory):
        code = code_factory()
        product = bm_mul(code.parity_check_matrix(), code.generator_matrix())
        assert not product.any()

    def test_generator_has_unit_rows_for_data(self):
        code = tiny_code()
        gen = code.generator_matrix()
        for pos in code.data_positions:
            row = gen[code.element_index[pos]]
            assert row.sum() == 1
            assert row[code.data_index[pos]] == 1


class TestStripes:
    def test_make_stripe_and_verify(self):
        code = tiny_code()
        data = np.arange(4 * 8, dtype=np.uint8).reshape(4, 8)
        stripe = code.make_stripe(data)
        assert code.verify_stripe(stripe)
        assert np.array_equal(code.extract_data(stripe), data)

    def test_corrupted_stripe_fails_verify(self):
        code = tiny_code()
        stripe = code.random_stripe(seed=1)
        stripe[0, 0, 0] ^= 0xFF
        assert not code.verify_stripe(stripe)

    def test_nonzero_empty_cell_fails_verify(self):
        code = ArrayCode(
            "with-empty", 1, 4,
            {(0, 3): Cell.PARITY, (0, 2): Cell.EMPTY},
            {(0, 3): ((0, 0), (0, 1))}, faults=1,
        )
        stripe = code.random_stripe(seed=2)
        assert code.verify_stripe(stripe)
        stripe[0, 2, 0] = 1
        assert not code.verify_stripe(stripe)

    def test_make_stripe_wrong_count(self):
        with pytest.raises(ValueError):
            tiny_code().make_stripe(np.zeros((3, 8), dtype=np.uint8))

    def test_chained_encode_order_correct(self):
        code = chained_code()
        stripe = code.random_stripe(seed=3)
        # (0,3) must equal (0,1) ^ (0,2) with (0,2) already encoded.
        assert np.array_equal(stripe[0, 3], stripe[0, 1] ^ stripe[0, 2])

    def test_erase_columns_bounds(self):
        code = tiny_code()
        stripe = code.random_stripe(seed=4)
        with pytest.raises(ValueError):
            code.erase_columns(stripe, (7,))

    def test_stripe_shape_checked(self):
        code = tiny_code()
        with pytest.raises(ValueError):
            code.encode(np.zeros((3, 3, 4), dtype=np.uint8))


class TestDecoding:
    def test_single_failure_all_columns(self):
        code = tiny_code()
        stripe = code.random_stripe(seed=5)
        for col in range(code.cols):
            damaged = stripe.copy()
            code.erase_columns(damaged, (col,))
            code.decode(damaged, (col,))
            assert np.array_equal(damaged, stripe)

    def test_too_many_failures_rejected(self):
        code = tiny_code()
        stripe = code.random_stripe(seed=6)
        with pytest.raises(ValueError):
            code.decode(stripe, (0, 1))

    def test_empty_failure_set_rejected(self):
        with pytest.raises(ValueError):
            tiny_code().decoder_for(())

    def test_decoder_cached(self):
        code = tiny_code()
        assert code.decoder_for((1,)) is code.decoder_for([1])

    def test_iterative_equals_direct(self):
        code = TipCode(5)
        stripe = code.random_stripe(seed=7)
        direct = stripe.copy()
        code.erase_columns(direct, (0, 2, 5))
        code.decode(direct, (0, 2, 5), iterative=False)
        iterative = stripe.copy()
        code.erase_columns(iterative, (0, 2, 5))
        code.decode(iterative, (0, 2, 5), iterative=True)
        assert np.array_equal(direct, stripe)
        assert np.array_equal(iterative, stripe)

    def test_undecodable_failure_raises(self):
        with pytest.raises(ValueError):
            ArrayCode(
                "weak", 1, 3, {(0, 2): Cell.PARITY},
                {(0, 2): ((0, 0),)}, faults=1,
            ).decoder_for((1,))  # column 1 not covered by any chain


class TestUpdatePenalty:
    def test_direct_membership(self):
        code = tiny_code()
        assert code.update_penalty((0, 0)) == frozenset({(0, 2)})

    def test_transitive_closure(self):
        code = chained_code()
        # (0,1) feeds (0,2) directly and (0,3) both directly and via (0,2).
        assert code.update_penalty((0, 1)) == frozenset({(0, 2), (0, 3)})
        # (0,0) feeds (0,2), which feeds (0,3).
        assert code.update_penalty((0, 0)) == frozenset({(0, 2), (0, 3)})

    def test_empty_cell_rejected(self):
        code = ArrayCode(
            "with-empty", 1, 4,
            {(0, 3): Cell.PARITY, (0, 2): Cell.EMPTY},
            {(0, 3): ((0, 0), (0, 1))}, faults=1,
        )
        with pytest.raises(ValueError):
            code.update_penalty((0, 2))


class TestParityDependents:
    """The generator-matrix data→parity map that drives delta writes."""

    def test_direct_membership(self):
        code = tiny_code()
        assert code.parity_dependents[(0, 0)] == ((0, 2),)

    def test_brute_force_against_encoder(self):
        """Flipping one data element must change exactly the mapped
        parities — checked by actually re-encoding."""
        for maker in (lambda: TipCode(7), lambda: TripleStarCode(5)):
            code = maker()
            base = code.random_stripe(packet_size=4, seed=31)
            for pos in code.data_positions:
                flipped = base.copy()
                flipped[pos[0], pos[1]] ^= 0xA5
                code.encode(flipped)
                changed = {
                    parity
                    for parity in code.parity_positions
                    if not np.array_equal(
                        flipped[parity[0], parity[1]],
                        base[parity[0], parity[1]],
                    )
                }
                assert changed == set(code.parity_dependents[pos]), pos

    def test_subset_of_update_penalty(self):
        """Even-cancellation can only shrink the set, never grow it."""
        for maker in (lambda: TipCode(7), lambda: TripleStarCode(5)):
            code = maker()
            for pos in code.data_positions:
                assert set(code.parity_dependents[pos]) <= set(
                    code.update_penalty(pos)
                )

    def test_tip_is_update_optimal(self):
        code = TipCode(11)
        for pos in code.data_positions:
            assert len(code.parity_dependents[pos]) == 3

    def test_matches_generator_columns(self):
        code = chained_code()
        generator = code.generator_matrix()
        for pos, parities in code.parity_dependents.items():
            column = code.data_index[pos]
            expected = {
                parity
                for parity in code.parity_positions
                if generator[code.element_index[parity], column]
            }
            assert set(parities) == expected


class TestShortening:
    def test_shorten_preserves_decodability(self):
        code = TripleStarCode(5)
        short = shorten(code, (0, 1))
        assert short.cols == code.cols - 2
        assert short.is_mds()
        stripe = short.random_stripe(seed=8)
        damaged = stripe.copy()
        short.erase_columns(damaged, (0, 2, 4))
        short.decode(damaged, (0, 2, 4))
        assert np.array_equal(damaged, stripe)

    def test_shorten_rejects_parity_columns(self):
        code = TripleStarCode(5)
        with pytest.raises(ValueError, match="holds parity"):
            shorten(code, (code.cols - 1,))

    def test_shorten_rejects_too_much(self):
        code = tiny_code()
        with pytest.raises(ValueError):
            shorten(code, (0, 1))

    def test_shorten_out_of_range(self):
        with pytest.raises(ValueError):
            shorten(TripleStarCode(5), (99,))

    def test_shortened_equivalence_to_zero_columns(self):
        """Shortened stripe == full stripe with removed columns zeroed."""
        code = TripleStarCode(5)
        short = shorten(code, (0,))
        rng = np.random.default_rng(9)
        short_data = rng.integers(
            0, 256, size=(short.num_data, 4), dtype=np.uint8
        )
        short_stripe = short.make_stripe(short_data)
        # Build the same stripe in the full code with column 0 zeroed.
        full_data = np.zeros((code.num_data, 4), dtype=np.uint8)
        index = 0
        for pos in code.data_positions:
            if pos[1] != 0:
                full_data[code.data_index[pos]] = short_data[index]
                index += 1
        full_stripe = code.make_stripe(full_data)
        assert np.array_equal(full_stripe[:, 1:, :], short_stripe)
