"""Plan-vs-measured cross-validation: the controller and the store agree.

The headline property of the unified RAID layer: for every code and
request class, the *planned* element I/O counts the DiskSim controller
prices (with the store-equivalent ``"delta"`` strategy) must equal the
*measured* chunk I/Os the real file-backed store performs — split by
data/parity and read/write, healthy and degraded. The store meters
actual transfers against backing files, so this is evidence the two
write-path models are one model, not two implementations that happen to
agree on TIP.
"""

import numpy as np
import pytest

from repro.codes import make_code
from repro.disksim import RaidController
from repro.raid import BlockDevice, plan_io_counters
from repro.store import ArrayStore
from repro.traces import TraceRequest

CHUNK = 512

FAMILIES = [("tip", 8), ("star", 6), ("triple-star", 6), ("cauchy-rs", 6)]


def build(tmp_path, family, n, failed=()):
    code = make_code(family, n)
    store = ArrayStore(
        code, tmp_path / f"{family}{n}-{len(failed)}", stripes=4,
        chunk_bytes=CHUNK,
    )
    # Populate with data so deltas and parities are non-trivial.
    rng = np.random.default_rng(99)
    store.write_chunks(
        0,
        rng.integers(0, 256, size=(store.capacity_chunks, CHUNK),
                     dtype=np.uint8),
    )
    for disk in failed:
        store.fail_disk(disk)
    controller = RaidController(code, CHUNK, write_strategy="delta")
    return code, store, controller


def assert_plan_matches_measured(code, store, controller, request, failed):
    plan = controller.plan(request, failed=tuple(failed))
    planned = plan_io_counters(code, plan)
    device = BlockDevice(store)
    if request.is_write:
        device.write(request.offset, bytes(request.length))
    else:
        device.read(request.offset, request.length)
    measured = store.last_io
    context = (code.name, failed, request.offset, request.length,
               request.is_write)
    assert planned.data_chunks_read == measured.data_chunks_read, context
    assert planned.parity_chunks_read == measured.parity_chunks_read, context
    assert planned.data_chunks_written == measured.data_chunks_written, context
    assert (
        planned.parity_chunks_written == measured.parity_chunks_written
    ), context


def request_classes(code):
    """Representative byte requests: aligned, unaligned, sub-chunk,
    stripe-spanning, full-stripe."""
    per_stripe = code.num_data * CHUNK
    return [
        (0, CHUNK),                                  # aligned single chunk
        (CHUNK // 4, CHUNK // 8),                    # sub-chunk, unaligned
        (3 * CHUNK + 100, 2 * CHUNK),                # unaligned multi-chunk
        (per_stripe - CHUNK, 2 * CHUNK),             # spans two stripes
        (0, per_stripe),                             # aligned full stripe
        (per_stripe + 17, per_stripe),               # unaligned full span
    ]


class TestHealthyArray:
    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_writes_match(self, tmp_path, family, n):
        code, store, controller = build(tmp_path, family, n)
        for offset, length in request_classes(code):
            request = TraceRequest(0.0, offset, length, True)
            assert_plan_matches_measured(code, store, controller, request, ())

    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_reads_match(self, tmp_path, family, n):
        code, store, controller = build(tmp_path, family, n)
        for offset, length in request_classes(code):
            request = TraceRequest(0.0, offset, length, False)
            assert_plan_matches_measured(code, store, controller, request, ())


class TestDegradedArray:
    @pytest.mark.parametrize("family,n", FAMILIES)
    @pytest.mark.parametrize("failed", [(0,), (0, 2), (0, 2, 4)])
    def test_degraded_reads_match(self, tmp_path, family, n, failed):
        code, store, controller = build(tmp_path, family, n, failed=failed)
        for offset, length in request_classes(code):
            request = TraceRequest(0.0, offset, length, False)
            assert_plan_matches_measured(
                code, store, controller, request, failed
            )

    @pytest.mark.parametrize("family,n", FAMILIES)
    @pytest.mark.parametrize("failed", [(1,), (1, 3, 5)])
    def test_degraded_writes_match(self, tmp_path, family, n, failed):
        code, store, controller = build(tmp_path, family, n, failed=failed)
        for offset, length in request_classes(code):
            request = TraceRequest(0.0, offset, length, True)
            assert_plan_matches_measured(
                code, store, controller, request, failed
            )


class TestPropertyStyle:
    """Randomized sweep: any offset/length/direction, plan == measured."""

    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_random_requests(self, tmp_path, family, n):
        code, store, controller = build(tmp_path, family, n)
        capacity = store.capacity_bytes
        rng = np.random.default_rng(hash((family, n)) & 0xFFFF)
        for _ in range(40):
            offset = int(rng.integers(0, capacity - 1))
            length = int(rng.integers(1, min(capacity - offset, 6 * CHUNK) + 1))
            is_write = bool(rng.random() < 0.6)
            request = TraceRequest(0.0, offset, length, is_write)
            assert_plan_matches_measured(code, store, controller, request, ())

    def test_random_requests_degraded(self, tmp_path):
        code, store, controller = build(tmp_path, "tip", 8, failed=(0, 3))
        capacity = store.capacity_bytes
        rng = np.random.default_rng(7)
        for _ in range(40):
            offset = int(rng.integers(0, capacity - 1))
            length = int(rng.integers(1, min(capacity - offset, 6 * CHUNK) + 1))
            is_write = bool(rng.random() < 0.5)
            request = TraceRequest(0.0, offset, length, is_write)
            assert_plan_matches_measured(
                code, store, controller, request, (0, 3)
            )


class TestAggregateConsistency:
    def test_simulator_and_store_price_identical_plans(self, tmp_path):
        """The simulator's total element I/Os for a trace equal the
        store's measured chunk I/Os when both use the delta strategy."""
        from repro.disksim import ArraySimulator
        from repro.traces import Trace

        code, store, _ = build(tmp_path, "tip", 8)
        requests = [
            TraceRequest(i * 0.5, (i * 777) % (store.capacity_bytes - 4096),
                         1024 + 512 * (i % 5), i % 3 != 0)
            for i in range(30)
        ]
        trace = Trace("agg", requests)
        simulator = ArraySimulator(code, CHUNK, write_strategy="delta")
        sim_result = simulator.run(trace)
        before = store.io.snapshot()
        BlockDevice(store).replay(trace)
        measured = store.io.snapshot() - before
        assert sim_result.total_element_ios == measured.total_chunks


class TestCachedStrategy:
    """The "cached" strategy's exactness guarantee, cross-code.

    The shadow cache replays the real :class:`repro.raid.StripeCache`
    logic over a recording backend, so the planned element I/Os must
    equal the cached store's measured chunk I/Os for *every* request in
    a sequence (cache state is stateful — order matters), plus the
    final flush.
    """

    @pytest.mark.parametrize("family,n", FAMILIES)
    def test_cached_sequence_matches(self, tmp_path, family, n):
        code = make_code(family, n)
        store = ArrayStore(
            code, tmp_path / f"{family}{n}", stripes=4, chunk_bytes=CHUNK,
            cache_stripes=2,
        )
        rng = np.random.default_rng(hash(("cached", family, n)) & 0xFFFF)
        store.write_chunks(
            0,
            rng.integers(0, 256, size=(store.capacity_chunks, CHUNK),
                         dtype=np.uint8),
        )
        store.flush()
        controller = RaidController(
            code, CHUNK, write_strategy="cached", cache_stripes=2
        )
        capacity = store.capacity_bytes
        device = BlockDevice(store)
        for i in range(40):
            offset = int(rng.integers(0, capacity - 1))
            length = int(rng.integers(1, min(capacity - offset, 6 * CHUNK) + 1))
            is_write = bool(rng.random() < 0.7)
            planned = plan_io_counters(
                code,
                controller.plan(TraceRequest(float(i), offset, length,
                                             is_write)),
            )
            if is_write:
                device.write(offset, bytes(length))
            else:
                device.read(offset, length)
            measured = store.last_io
            context = (family, n, i, offset, length, is_write)
            assert planned.data_chunks_read == measured.data_chunks_read, (
                context
            )
            assert (
                planned.parity_chunks_read == measured.parity_chunks_read
            ), context
            assert (
                planned.data_chunks_written == measured.data_chunks_written
            ), context
            assert (
                planned.parity_chunks_written
                == measured.parity_chunks_written
            ), context
        planned_flush = plan_io_counters(code, controller.planner.plan_flush())
        before = store.io.snapshot()
        store.flush()
        measured_flush = store.io.snapshot() - before
        assert planned_flush.data_chunks_read == (
            measured_flush.data_chunks_read
        )
        assert planned_flush.parity_chunks_read == (
            measured_flush.parity_chunks_read
        )
        assert planned_flush.data_chunks_written == (
            measured_flush.data_chunks_written
        )
        assert planned_flush.parity_chunks_written == (
            measured_flush.parity_chunks_written
        )
        assert store.scrub() == []


def _batch_workload(store, seed, count=48):
    """Deterministic mixed read/write ops for :meth:`execute_batch`."""
    rng = np.random.default_rng(seed)
    capacity = store.capacity_bytes
    ops = []
    for _ in range(count):
        length = int(rng.integers(1, 3 * CHUNK))
        offset = int(rng.integers(0, capacity - length))
        if rng.random() < 0.7:
            payload = rng.integers(0, 256, size=length, dtype=np.uint8)
            ops.append((True, offset, payload.tobytes()))
        else:
            ops.append((False, offset, length))
    return ops


class TestBatchedExecutionEquivalence:
    """Satellite: batched execution == serial execution for every code
    family and every tolerated failure count.

    The batched span path (healthy arrays) and the serial fallback
    (degraded arrays) must both produce byte-identical contents,
    identical read results, and identical aggregate chunk
    ``IoCounters`` to executing the same operations one at a time —
    the paper's per-request accounting is batching-invariant.
    """

    @pytest.mark.parametrize("family,n", FAMILIES)
    @pytest.mark.parametrize("failed", [(), (0,), (0, 2), (0, 2, 4)])
    def test_batch_matches_serial(self, tmp_path, family, n, failed):
        code = make_code(family, n)
        seed = hash(("batch", family, n, failed)) & 0xFFFF
        images = []
        ios = []
        reads = []
        syscall_totals = []
        for mode in ("serial", "batched"):
            store = ArrayStore(
                code, tmp_path / f"{mode}", stripes=4, chunk_bytes=CHUNK,
            )
            with store:
                rng = np.random.default_rng(99)
                store.write_chunks(
                    0,
                    rng.integers(0, 256,
                                 size=(store.capacity_chunks, CHUNK),
                                 dtype=np.uint8),
                )
                for disk in failed:
                    store.fail_disk(disk)
                ops = _batch_workload(store, seed)
                before = store.io.snapshot()
                if mode == "serial":
                    results = [
                        store.write_bytes(op[1], op[2]) if op[0]
                        else store.read_bytes(op[1], op[2]).copy()
                        for op in ops
                    ]
                else:
                    results = []
                    for start in range(0, len(ops), 16):
                        results.extend(
                            store.execute_batch(ops[start:start + 16])
                        )
                ios.append(store.io.snapshot() - before)
                syscall_totals.append(store.syscalls.total)
                reads.append([
                    results[i] for i, op in enumerate(ops) if not op[0]
                ])
                store.flush()
                surviving = [
                    d for d in range(code.n) if d not in store.failed
                ]
            # Physical comparison: surviving backing files byte for
            # byte, so parity (not just logical data) must match.
            images.append(b"".join(
                (tmp_path / mode / f"disk{d:03d}.img").read_bytes()
                for d in surviving
            ))
        assert images[0] == images[1], (family, n, failed)
        assert ios[0] == ios[1], (family, n, failed)
        for serial_read, batch_read in zip(reads[0], reads[1]):
            assert np.array_equal(serial_read, batch_read)
        if not failed:
            # Healthy arrays take the span path: strictly fewer
            # syscalls than one-at-a-time execution.
            assert syscall_totals[1] < syscall_totals[0]

    def test_empty_batch_is_a_noop(self, tmp_path):
        code = make_code("tip", 8)
        store = ArrayStore(code, tmp_path / "e", stripes=4,
                           chunk_bytes=CHUNK)
        with store:
            assert store.execute_batch([]) == []
            assert store.io.snapshot().total_chunks == 0
