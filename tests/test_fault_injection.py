"""Tests for the deterministic fault-injection layer (repro.faults.inject)."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.faults import (
    FailStopError,
    FaultPlan,
    FaultyDiskBackend,
    LatentSectorError,
    TransientIOError,
)
from repro.faults.inject import FaultRule
from repro.store import ArrayStore

CHUNK = 64


def make_store(tmp_path, plan=None, stripes=4, chunk_bytes=CHUNK):
    return ArrayStore(
        make_code("tip", 6), tmp_path, stripes=stripes,
        chunk_bytes=chunk_bytes, fault_plan=plan,
    )


def fill(store, seed=0):
    rng = np.random.default_rng(seed)
    cap = store.capacity_chunks * store.chunk_bytes
    data = rng.integers(0, 256, cap, dtype=np.uint8)
    store.write_bytes(0, data)
    return data


class TestFaultRule:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            FaultRule("meltdown", 0)

    def test_trigger_rule_defaults_to_first_access(self):
        rule = FaultRule("latent", 1)
        assert rule.at_op == 1

    def test_transient_needs_rate(self):
        with pytest.raises(ValueError):
            FaultRule("transient", 0)

    def test_trigger_rule_fires_once(self):
        rule = FaultRule("bit_flip", 0, at_op=3)
        assert not rule.exhausted()
        rule.fired = 1
        assert rule.exhausted()

    def test_rate_rule_respects_count(self):
        rule = FaultRule("latent", 0, rate=0.5, count=2)
        rule.fired = 2
        assert rule.exhausted()

    def test_lba_range_forms(self):
        assert FaultRule("latent", 0, lba=7).lba_range() == (7, 7)
        assert FaultRule("latent", 0, lba=(3, 9)).lba_range() == (3, 9)
        assert FaultRule("latent", 0).lba_range() is None


class TestParse:
    def test_full_spec(self):
        plan = FaultPlan.parse(
            "seed=7;max_retries=5;fail_stop:disk=2,at_op=40;"
            "latent:disk=1,rate=0.002,lba=3-9;bit_flip:disk=3,at_op=25;"
            "transient:disk=0,rate=0.01,during=rebuild"
        )
        assert plan.seed == 7
        assert plan.max_retries == 5
        kinds = [r.kind for r in plan.rules]
        assert kinds == ["fail_stop", "latent", "bit_flip", "transient"]
        assert plan.rules[1].lba == (3, 9)
        assert plan.rules[3].during == "rebuild"

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("latent:disk=1,flavor=sour")

    def test_missing_disk_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("latent:rate=0.5")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("entropy=9")


class TestDeterminism:
    def run_plan(self, tmp_path, sub):
        plan = FaultPlan.parse(
            "seed=13;latent:disk=1,rate=0.02;bit_flip:disk=3,rate=0.01"
        )
        store = make_store(tmp_path / sub, plan=plan, stripes=8)
        fill(store)
        # Same deterministic access pattern both times.
        for chunk in range(0, store.capacity_chunks, 3):
            try:
                store.read_chunks(chunk, 1)
            except LatentSectorError:
                pass
        return [(f.kind, f.disk, f.lba, f.op) for f in plan.injected]

    def test_same_seed_same_faults(self, tmp_path):
        assert self.run_plan(tmp_path, "a") == self.run_plan(tmp_path, "b")


class TestBackendSemantics:
    def test_fail_stop_persists_until_replacement(self, tmp_path):
        plan = FaultPlan(seed=0).fail_stop(disk=2, at_op=1)
        store = make_store(tmp_path, plan=plan)
        with pytest.raises(FailStopError):
            fill(store)
        with pytest.raises(FailStopError):
            store._read_span(2, 0, CHUNK)
        plan.replace_disk(2)
        assert not plan.is_fail_stopped(2)
        fill(store)  # all disks answer again

    def test_latent_is_read_only_and_cleared_by_write(self, tmp_path):
        store = make_store(tmp_path)
        data = fill(store)
        plan = FaultPlan(seed=0).latent(disk=0, lba=0)
        store.set_fault_plan(plan)
        with pytest.raises(LatentSectorError) as exc_info:
            store.read_chunks(0, 1)
        assert exc_info.value.disk == 0
        assert exc_info.value.lba == 0
        # The stored bytes were never damaged: a raw read still returns
        # the original contents (the error is in the read path only).
        raw = store._raw_read_span(0, 0, CHUNK)
        assert (0, 0) in plan.active_latent()
        # A covering write remaps the sector and clears the error.
        store._write_span(0, 0, raw)
        assert plan.active_latent() == set()
        assert plan.injected[-1].status == "repaired"
        store.set_fault_plan(None)
        assert np.array_equal(
            np.asarray(store.read_bytes(0, data.size)).reshape(-1), data
        )

    def test_bit_flip_is_durable_and_silent(self, tmp_path):
        store = make_store(tmp_path)
        fill(store)
        before = bytes(store._raw_read_span(0, 0, CHUNK))
        plan = FaultPlan(seed=3).bit_flip(disk=0, lba=0)
        store.set_fault_plan(plan)
        corrupted = bytes(store._read_span(0, 0, CHUNK))  # read succeeds
        assert corrupted != before
        diff = np.bitwise_xor(
            np.frombuffer(corrupted, dtype=np.uint8),
            np.frombuffer(before, dtype=np.uint8),
        )
        assert int(np.unpackbits(diff).sum()) == 1  # exactly one bit
        store.set_fault_plan(None)
        # Durable: the flip lives in the stored bytes.
        assert bytes(store._raw_read_span(0, 0, CHUNK)) == corrupted
        assert (0, 0) in plan.active_corruptions()

    def test_bit_flip_overwritten_by_write(self, tmp_path):
        store = make_store(tmp_path)
        fill(store)
        plan = FaultPlan(seed=3).bit_flip(disk=0, lba=0)
        store.set_fault_plan(plan)
        store._write_span(0, 0, b"\x00" * CHUNK)
        assert plan.active_corruptions() == set()
        assert plan.injected[-1].status == "overwritten"
        assert bytes(store._raw_read_span(0, 0, CHUNK)) == b"\x00" * CHUNK

    def test_transient_retried_internally(self, tmp_path):
        # rate=1 burns every internal retry and then surfaces.
        plan = FaultPlan(seed=0, max_retries=3).transient(disk=1, rate=1.0)
        store = make_store(tmp_path, plan=plan)
        with pytest.raises(TransientIOError):
            store._read_span(1, 0, CHUNK)
        assert plan.stats.transient_retries == 4  # 1 + max_retries draws
        assert plan.stats.transient_raised == 1

    def test_transient_low_rate_absorbed(self, tmp_path):
        plan = FaultPlan(seed=1).transient(disk=1, rate=0.05)
        store = make_store(tmp_path, plan=plan, stripes=8)
        fill(store)  # no raise: isolated failures retried away
        assert plan.stats.transient_raised == 0

    def test_replace_disk_loses_resident_faults(self, tmp_path):
        store = make_store(tmp_path)
        fill(store)
        plan = (
            FaultPlan(seed=0)
            .latent(disk=2, lba=1)
            .bit_flip(disk=2, lba=3)
        )
        store.set_fault_plan(plan)
        with pytest.raises(LatentSectorError):
            store._read_span(2, 0, 4 * CHUNK)
        plan.replace_disk(2)
        assert plan.active_latent() == set()
        assert plan.active_corruptions() == set()
        assert {f.status for f in plan.injected} == {"lost"}

    def test_during_phase_gates_rules(self, tmp_path):
        plan = FaultPlan(seed=0).latent(disk=0, lba=0, during="rebuild")
        store = make_store(tmp_path, plan=plan)
        fill(store)
        store.read_chunks(0, 1)  # outside the phase: nothing minted
        assert plan.active_latent() == set()
        with plan.phase("rebuild"):
            with pytest.raises(LatentSectorError):
                store.read_chunks(0, 1)
        assert (0, 0) in plan.active_latent()

    def test_lba_window_restricts_minting(self, tmp_path):
        plan = FaultPlan(seed=5).latent(disk=0, rate=1.0, lba=(2, 2))
        store = make_store(tmp_path, plan=plan)
        backend = store._backend
        assert isinstance(backend, FaultyDiskBackend)
        # Accesses outside the window never mint.
        store._read_span(0, 0, CHUNK)
        assert plan.active_latent() == set()
        with pytest.raises(LatentSectorError):
            store._read_span(0, 2 * CHUNK, CHUNK)
        assert plan.active_latent() == {(0, 2)}

    def test_ops_counted_per_disk(self, tmp_path):
        plan = FaultPlan(seed=0)
        store = make_store(tmp_path, plan=plan)
        store._read_span(0, 0, CHUNK)
        store._read_span(0, 0, CHUNK)
        store._read_span(1, 0, CHUNK)
        assert plan.ops(0) == 2
        assert plan.ops(1) == 1
        assert plan.stats.ops == 3
