"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


def test_quickstart():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "all data recovered byte-for-byte" in result.stdout


def test_raid_array_recovery():
    result = run_example("raid_array_recovery.py")
    assert result.returncode == 0, result.stderr
    assert "integrity audit passed" in result.stdout


def test_trace_replay_comparison():
    result = run_example("trace_replay_comparison.py", "src2_0", "6")
    assert result.returncode == 0, result.stderr
    assert "tip" in result.stdout


def test_trace_replay_rejects_bad_workload():
    result = run_example("trace_replay_comparison.py", "bogus")
    assert result.returncode != 0


def test_arbitrary_sizes():
    result = run_example("arbitrary_sizes.py")
    assert result.returncode == 0, result.stderr
    assert "adjuster C1,4" in result.stdout


def test_code_anatomy():
    result = run_example("code_anatomy.py", "6")
    assert result.returncode == 0, result.stderr
    assert "example chain" in result.stdout


def test_reliability_motivation():
    result = run_example("reliability_motivation.py")
    assert result.returncode == 0, result.stderr
    assert "Monte-Carlo cross-check" in result.stdout


def test_persistent_store(tmp_path):
    result = run_example("persistent_store.py", str(tmp_path))
    assert result.returncode == 0, result.stderr
    assert "scrub clean" in result.stdout


@pytest.mark.parametrize(
    "name",
    [p.name for p in sorted(EXAMPLES.glob("*.py"))],
)
def test_every_example_has_docstring_and_main(name):
    source = (EXAMPLES / name).read_text()
    assert source.startswith('#!/usr/bin/env python3\n"""'), name
    assert '__name__ == "__main__"' in source, name
