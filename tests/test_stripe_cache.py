"""Tests for the write-back stripe cache and its crash-safety story.

Covers the three claims the cache layer makes:

* **equivalence** — a cached store externalizes exactly the bytes an
  uncached store does, healthy and across failure/rebuild transitions;
* **coalescing** — repeated writes to a stripe fold their parity deltas
  into one commit per flush, with exactly predictable chunk counters
  (TIP's update optimality makes the arithmetic closed-form);
* **crash safety** — an exception at *any* element write during a flush
  leaves the cache retryable: data is never discarded before its write
  returns, parity is never persisted ahead of its stripe's data, and
  re-running ``flush()`` completes the commit idempotently.
"""

import numpy as np
import pytest

from repro.codes import make_code
from repro.raid import StripeCache
from repro.raid.planner import RequestPlanner, plan_io_counters
from repro.store import ArrayStore
from repro.traces import TraceRequest

CHUNK = 512
STRIPES = 4


def make_store(tmp_path, cache_stripes, subdir="cached", n=6):
    path = tmp_path / subdir
    path.mkdir(exist_ok=True)
    return ArrayStore(
        make_code("tip", n), path, stripes=STRIPES, chunk_bytes=CHUNK,
        cache_stripes=cache_stripes,
    )


def random_bytes(length, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=length, dtype=np.uint8)


def mixed_requests(store, count=60, seed=0):
    """Random byte-addressed reads/writes over the store's capacity."""
    rng = np.random.default_rng(seed)
    capacity = store.capacity_bytes
    requests = []
    for _ in range(count):
        length = int(rng.integers(1, 4 * CHUNK))
        offset = int(rng.integers(0, capacity - length))
        requests.append((offset, length, bool(rng.random() < 0.7)))
    return requests


class TestEquivalence:
    def test_cached_store_matches_uncached(self, tmp_path):
        cached = make_store(tmp_path, cache_stripes=2, subdir="cached")
        plain = make_store(tmp_path, cache_stripes=0, subdir="plain")
        for i, (offset, length, is_write) in enumerate(
            mixed_requests(cached, seed=1)
        ):
            if is_write:
                payload = random_bytes(length, seed=100 + i)
                cached.write_bytes(offset, payload)
                plain.write_bytes(offset, payload)
            else:
                got = cached.read_bytes(offset, length)
                want = plain.read_bytes(offset, length)
                assert np.array_equal(got, want), (i, offset, length)
        cached.flush()
        assert np.array_equal(
            cached.read_bytes(0, cached.capacity_bytes),
            plain.read_bytes(0, plain.capacity_bytes),
        )
        assert cached.scrub() == []

    def test_close_flushes(self, tmp_path):
        payload = random_bytes(3 * CHUNK, seed=5)
        with make_store(tmp_path, cache_stripes=4) as store:
            store.write_bytes(CHUNK, payload)
        reopened = make_store(tmp_path, cache_stripes=0)
        assert np.array_equal(reopened.read_bytes(CHUNK, payload.size), payload)
        assert reopened.scrub() == []

    def test_degraded_transitions(self, tmp_path):
        """Failing a disk drains the cache; writes/reads stay correct."""
        store = make_store(tmp_path, cache_stripes=4)
        image = random_bytes(store.capacity_bytes, seed=6)
        store.write_bytes(0, image)
        patch = random_bytes(2 * CHUNK, seed=7)
        store.write_bytes(5 * CHUNK + 11, patch)  # dirty cached state
        image[5 * CHUNK + 11 : 5 * CHUNK + 11 + patch.size] = patch
        store.fail_disk(1)
        assert len(store.cache) == 0  # drained, not serving stale state
        degraded_patch = random_bytes(CHUNK, seed=8)
        store.write_bytes(0, degraded_patch)
        image[: CHUNK] = degraded_patch
        assert np.array_equal(
            store.read_bytes(0, store.capacity_bytes), image
        )
        assert store.rebuild() == STRIPES
        assert store.scrub() == []
        assert np.array_equal(
            store.read_bytes(0, store.capacity_bytes), image
        )


class TestCoalescing:
    def test_repeated_chunk_writes_coalesce_exactly(self, tmp_path):
        """5 writes to one chunk: TIP prices each uncached write at
        (1 data + 3 parity) reads and writes; the cache pays one data
        miss read up front and one (data + 3 parity-anchor) commit at
        flush — parity amortization exactly 5.0."""
        store = make_store(tmp_path, cache_stripes=2)
        store.write_bytes(0, random_bytes(store.capacity_bytes, seed=9))
        store.flush()
        base = store.cache.stats.snapshot()
        for i in range(5):
            store.write_bytes(0, random_bytes(CHUNK, seed=20 + i))
        flushed = store.flush()
        assert flushed == 1
        delta = store.cache.stats.snapshot() - base
        assert delta.write_chunk_misses == 1
        assert delta.write_chunk_hits == 4
        # Coalesced: 1 miss read + 3 parity anchors; 1 data + 3 parity.
        assert delta.io.data_chunks_read == 1
        assert delta.io.parity_chunks_read == 3
        assert delta.io.data_chunks_written == 1
        assert delta.io.parity_chunks_written == 3
        # Uncached pricing: 5 x (1+3 reads, 1+3 writes).
        assert delta.raw_io.data_chunks_read == 5
        assert delta.raw_io.parity_chunks_read == 15
        assert delta.raw_io.data_chunks_written == 5
        assert delta.raw_io.parity_chunks_written == 15
        assert delta.parity_write_amortization == 5.0
        assert delta.chunk_ios_saved == 40 - 8

    def test_flush_is_idempotent(self, tmp_path):
        store = make_store(tmp_path, cache_stripes=2)
        store.write_bytes(0, random_bytes(CHUNK, seed=10))
        assert store.flush() == 1
        io_after = store.cache.stats.io.snapshot()
        assert store.flush() == 0  # nothing dirty: no further I/O
        assert store.cache.stats.io.total_chunks == io_after.total_chunks

    def test_lru_eviction_flushes_victim(self, tmp_path):
        store = make_store(tmp_path, cache_stripes=2)
        cache = store.cache
        per_stripe = store.code.num_data * CHUNK
        for stripe in range(3):
            store.write_bytes(stripe * per_stripe, random_bytes(CHUNK, seed=stripe))
        assert cache.cached_stripes == (1, 2)
        assert cache.stats.evictions == 1
        assert cache.dirty_stripes == (1, 2)  # stripe 0 was flushed out
        assert store.scrub() == []  # eviction committed stripe 0 fully

    def test_reads_do_not_allocate_stripe_entries(self, tmp_path):
        """A read-heavy scan must not evict write-back state."""
        store = make_store(tmp_path, cache_stripes=1)
        store.write_bytes(0, random_bytes(store.capacity_bytes, seed=11))
        store.flush()
        per_stripe = store.code.num_data * CHUNK
        store.write_bytes(0, random_bytes(CHUNK, seed=12))  # dirty stripe 0
        for stripe in range(1, STRIPES):
            store.read_bytes(stripe * per_stripe, CHUNK)
        assert store.cache.cached_stripes == (0,)
        assert store.cache.stats.evictions == 0

    def test_full_stripe_write_bypasses_cache(self, tmp_path):
        store = make_store(tmp_path, cache_stripes=2)
        per_stripe = store.code.num_data * CHUNK
        payload = random_bytes(per_stripe, seed=13)
        base = store.cache.stats.snapshot()
        store.write_bytes(0, payload)
        delta = store.cache.stats.snapshot() - base
        assert delta.bypass_chunks == store.code.num_data
        # Zero pre-reads: encode fresh, write every stored element.
        assert delta.io.chunks_read == 0
        assert delta.io.data_chunks_written == store.code.num_data
        assert delta.io.parity_chunks_written == (
            len(store.code.parity_positions)
        )
        assert store.cache.cached_stripes == ()  # nothing retained
        assert np.array_equal(store.read_bytes(0, per_stripe), payload)
        assert store.scrub() == []


class TestCachedPlannerStrategy:
    def test_plan_matches_measured_sequence(self, tmp_path):
        """The "cached" strategy predicts a cached store's measured
        counters exactly, request for request, including the flush."""
        store = make_store(tmp_path, cache_stripes=2)
        planner = RequestPlanner(
            store.code, CHUNK, write_strategy="cached", cache_stripes=2
        )
        for i, (offset, length, is_write) in enumerate(
            mixed_requests(store, count=40, seed=2)
        ):
            request = TraceRequest(float(i), offset, length, is_write)
            planned = plan_io_counters(store.code, planner.plan(request))
            if is_write:
                store.write_bytes(offset, random_bytes(length, seed=i))
            else:
                store.read_bytes(offset, length)
            measured = store.last_io
            context = (i, offset, length, is_write)
            assert planned.data_chunks_read == measured.data_chunks_read, context
            assert (
                planned.parity_chunks_read == measured.parity_chunks_read
            ), context
            assert (
                planned.data_chunks_written == measured.data_chunks_written
            ), context
            assert (
                planned.parity_chunks_written == measured.parity_chunks_written
            ), context
        planned_flush = plan_io_counters(store.code, planner.plan_flush())
        before = store.io.snapshot()
        store.flush()
        measured_flush = store.io - before
        assert planned_flush.data_chunks_written == (
            measured_flush.data_chunks_written
        )
        assert planned_flush.parity_chunks_written == (
            measured_flush.parity_chunks_written
        )
        assert planned_flush.parity_chunks_read == (
            measured_flush.parity_chunks_read
        )

    def test_cached_strategy_rejects_degraded_plans(self):
        planner = RequestPlanner(
            make_code("tip", 6), CHUNK, write_strategy="cached"
        )
        with pytest.raises(ValueError, match="healthy array"):
            planner.plan(TraceRequest(0.0, 0, CHUNK, True), failed=(1,))

    def test_other_strategies_have_empty_flush_plan(self):
        planner = RequestPlanner(make_code("tip", 6), CHUNK)
        plan = planner.plan_flush()
        assert plan.reads == [] and plan.writes == []


class CrashingStore:
    """Wraps a store's ``write_element`` to fail after N element writes,
    logging every element I/O so ordering invariants can be audited."""

    def __init__(self, store):
        self.store = store
        self.log = []  # (stripe, pos, is_write)
        self.remaining = None  # writes allowed before the injected crash
        self._write = store.write_element
        self._read = store.read_element
        store.write_element = self._crashing_write
        store.read_element = self._logging_read

    def _crashing_write(self, stripe, pos, chunk):
        if self.remaining is not None:
            if self.remaining == 0:
                raise IOError("injected crash: element write lost")
            self.remaining -= 1
        self._write(stripe, pos, chunk)
        self.log.append((stripe, pos, True))

    def _logging_read(self, stripe, pos):
        self.log.append((stripe, pos, False))
        return self._read(stripe, pos)

    def assert_data_before_parity(self, code):
        """Within each stripe, no parity write may precede a data write
        issued by the same flush epoch (writes here are all one flush)."""
        parity_written = set()
        for stripe, pos, is_write in self.log:
            if not is_write:
                continue
            if pos in code.parity_positions:
                parity_written.add(stripe)
            else:
                assert stripe not in parity_written, (
                    f"stripe {stripe}: data write after parity write"
                )


class TestFlushCrashSafety:
    def _dirty_store(self, tmp_path, subdir, seed):
        """A cached store with several dirty stripes and a known image."""
        store = make_store(tmp_path, cache_stripes=4, subdir=subdir)
        image = random_bytes(store.capacity_bytes, seed=seed)
        store.write_bytes(0, image)
        store.flush()
        per_stripe = store.code.num_data * CHUNK
        edits = [
            (0, 2 * CHUNK + 33),                    # stripe 0, unaligned
            (per_stripe + CHUNK // 2, CHUNK),       # stripe 1, sub-chunk
            (2 * per_stripe + 5, 3 * CHUNK),        # stripe 2, multi-chunk
        ]
        for i, (offset, length) in enumerate(edits):
            patch = random_bytes(length, seed=1000 + seed + i)
            store.write_bytes(offset, patch)
            image[offset : offset + length] = patch
        return store, image

    def test_crash_at_every_flush_write_is_retryable(self, tmp_path):
        """Sweep the crash point across every element write of the flush:
        each prefix must obey data-before-parity per stripe, and a retry
        must complete the commit — scrub clean, contents exact."""
        probe, _ = self._dirty_store(tmp_path, "probe", seed=40)
        wrapped = CrashingStore(probe)
        probe.flush()
        total_writes = sum(1 for *_, w in wrapped.log if w)
        assert total_writes >= 8  # the sweep exercises a real window
        for crash_at in range(total_writes):
            subdir = f"crash{crash_at}"
            store, image = self._dirty_store(tmp_path, subdir, seed=40)
            wrapped = CrashingStore(store)
            wrapped.remaining = crash_at
            with pytest.raises(IOError, match="injected crash"):
                store.flush()
            wrapped.assert_data_before_parity(store.code)
            # The fault clears; the cache retries exactly the remainder.
            wrapped.remaining = None
            wrapped.log.clear()
            store.flush()
            wrapped.assert_data_before_parity(store.code)
            assert store.scrub() == [], crash_at
            assert np.array_equal(
                store.read_bytes(0, store.capacity_bytes), image
            ), crash_at
            store.close()

    def test_retry_is_idempotent_not_reapplied(self, tmp_path):
        """Parity deltas are anchored to absolute values before write-out,
        so a retried flush never XORs a delta twice."""
        store, image = self._dirty_store(tmp_path, "idem", seed=41)
        wrapped = CrashingStore(store)
        wrapped.remaining = 1  # crash after the first element write
        with pytest.raises(IOError):
            store.flush()
        wrapped.remaining = None
        store.flush()
        store.flush()  # and once more for good measure
        assert store.scrub() == []
        assert np.array_equal(
            store.read_bytes(0, store.capacity_bytes), image
        )

    def test_eviction_crash_mid_write_is_retryable(self, tmp_path):
        """A crash inside the eviction flush triggered by a new write
        leaves both the victim and the incoming request recoverable."""
        store = make_store(tmp_path, cache_stripes=1, subdir="evict")
        image = random_bytes(store.capacity_bytes, seed=42)
        store.write_bytes(0, image)
        store.flush()
        per_stripe = store.code.num_data * CHUNK
        patch0 = random_bytes(CHUNK, seed=43)
        store.write_bytes(0, patch0)  # dirty stripe 0 (the victim)
        image[: CHUNK] = patch0
        wrapped = CrashingStore(store)
        wrapped.remaining = 0
        patch1 = random_bytes(CHUNK, seed=44)
        with pytest.raises(IOError, match="injected crash"):
            store.write_bytes(per_stripe, patch1)  # evicts stripe 0
        wrapped.remaining = None
        # Retry the request; the eviction flush resumes where it stopped.
        store.write_bytes(per_stripe, patch1)
        image[per_stripe : per_stripe + CHUNK] = patch1
        store.flush()
        wrapped.assert_data_before_parity(store.code)
        assert store.scrub() == []
        assert np.array_equal(
            store.read_bytes(0, store.capacity_bytes), image
        )


class TestConstruction:
    def test_capacity_validated(self, tmp_path):
        with pytest.raises(ValueError):
            make_store(tmp_path, cache_stripes=-1)
        code = make_code("tip", 6)
        with pytest.raises(ValueError):
            StripeCache(object(), code, CHUNK, capacity_stripes=0)

    def test_uncached_store_has_no_cache(self, tmp_path):
        store = make_store(tmp_path, cache_stripes=0)
        assert store.cache is None
        assert store.flush() == 0


class TestFlushInvalidationRace:
    def test_flush_skips_stripe_invalidated_mid_walk(
        self, tmp_path, monkeypatch
    ):
        """Regression: ``flush()`` snapshotted the stripe list, then did
        a bare ``self._stripes[stripe]`` lookup per entry — a stripe
        invalidated while the walk was in progress (fault handling,
        bypass write) raised ``KeyError`` and aborted the whole flush.
        It must be skipped instead, and the rest must still commit."""
        store = make_store(tmp_path, cache_stripes=STRIPES)
        cache = store.cache
        per_stripe = store.code.num_data * CHUNK
        for stripe in range(3):
            store.write_bytes(
                stripe * per_stripe, random_bytes(CHUNK, seed=stripe)
            )
        dirty = cache.dirty_stripes
        assert len(dirty) == 3
        first, victim = dirty[0], dirty[-1]
        original = cache._flush_stripe
        fired = []

        def invalidating(stripe, state):
            if not fired:
                fired.append(stripe)
                cache.invalidate(victim)
            return original(stripe, state)

        monkeypatch.setattr(cache, "_flush_stripe", invalidating)
        flushed = cache.flush()  # KeyError before the fix
        assert fired == [first]
        assert flushed == 2  # the victim vanished mid-walk, unflushed
        assert not cache.dirty_stripes
        assert victim not in cache.cached_stripes
