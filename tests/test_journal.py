"""The on-disk intent journal: format, recovery, and crash sweeps.

The crash-consistency contract under test: a mutating run seals its
intents (append + fsync) *before* the first data write and commits a
marker after the last one, so killing the process at **any**
write/fsync boundary leaves the journal in one of three states — no
intents (nothing to do), sealed intents without a marker (roll the
whole run forward), or a torn tail (discard: no data write ever
started). The sweep tests exercise every boundary by crashing the
journal's file ops one call later each iteration.
"""

import struct

import numpy as np
import pytest

from repro.codes import make_code
from repro.store import (
    ArrayStore,
    IntentJournal,
    JournalRecord,
    MemoryJournal,
)


class Crash(RuntimeError):
    """The injected process death."""


class CrashingJournal(IntentJournal):
    """An IntentJournal that dies before its Nth file operation.

    ``budget`` counts *surviving* append/fsync calls; the call after
    the budget is exhausted raises :class:`Crash` without touching the
    file — exactly a kill between two file operations. ``budget=None``
    never crashes (used to count a workload's total boundaries and to
    reopen after a crash).
    """

    budget: int | None = None
    ops = 0

    @classmethod
    def arm(cls, budget):
        cls.budget = budget
        cls.ops = 0

    @classmethod
    def _gate(cls):
        CrashingJournal.ops += 1
        if CrashingJournal.budget is not None:
            if CrashingJournal.budget == 0:
                raise Crash("killed at journal boundary")
            CrashingJournal.budget -= 1

    def _append(self, data):
        self._gate()
        super()._append(data)

    def _sync(self):
        self._gate()
        super()._sync()


@pytest.fixture(autouse=True)
def _disarm():
    CrashingJournal.arm(None)
    yield
    CrashingJournal.arm(None)


def _record(shard=0, disk=1, offset=0, payload=b"abcd", meter=(1, 0)):
    return JournalRecord(
        shard=shard, disk=disk, offset=offset, payload=payload, meter=meter
    )


class TestMemoryJournal:
    def test_lifecycle(self):
        journal = MemoryJournal()
        rec = _record()
        journal.log(rec)
        journal.seal(0)
        assert journal.pending(0) == [rec]
        journal.commit(0)
        assert journal.pending(0) == []
        assert journal.durable is False

    def test_shards_are_independent(self):
        journal = MemoryJournal()
        journal.log(_record(shard=0, payload=b"x"))
        journal.log(_record(shard=1, payload=b"y"))
        journal.commit(0)
        assert journal.pending(0) == []
        assert [r.payload for r in journal.pending(1)] == [b"y"]

    def test_drop_pending_is_idempotent(self):
        journal = MemoryJournal()
        rec = _record()
        journal.log(rec)
        journal.drop_pending(0, rec)
        journal.drop_pending(0, rec)  # second drop must not raise
        assert journal.pending(0) == []

    def test_recover_is_a_noop(self):
        journal = MemoryJournal()
        journal.log(_record())
        assert journal.recover(lambda rec: None) == 0


class TestIntentJournalFormat:
    def test_committed_txn_does_not_recover(self, tmp_path):
        path = tmp_path / "j"
        with IntentJournal(path) as journal:
            journal.log(_record())
            journal.seal(0)
            journal.commit(0)
        with IntentJournal(path) as journal:
            assert journal.recover(lambda rec: None) == 0

    def test_uncommitted_txn_recovers_in_order(self, tmp_path):
        path = tmp_path / "j"
        journal = IntentJournal(path)
        journal.log(_record(offset=0, payload=b"aa"))
        journal.log(_record(offset=2, payload=b"bb"))
        journal.seal(0)
        # No commit: simulate death. Reopen from the same file.
        replayed = []
        with IntentJournal(path) as reopened:
            count = reopened.recover(lambda rec: replayed.append(rec))
        assert count == 2
        assert [r.payload for r in replayed] == [b"aa", b"bb"]

    def test_recover_writes_markers_making_second_recover_empty(
        self, tmp_path
    ):
        path = tmp_path / "j"
        journal = IntentJournal(path)
        journal.log(_record())
        journal.seal(0)
        with IntentJournal(path) as reopened:
            assert reopened.recover(lambda rec: None) == 1
        with IntentJournal(path) as again:
            assert again.recover(lambda rec: None) == 0

    def test_recover_filters_by_shard(self, tmp_path):
        path = tmp_path / "j"
        journal = IntentJournal(path)
        journal.log(_record(shard=3, payload=b"three"))
        journal.seal(3)
        journal.log(_record(shard=5, payload=b"five"))
        journal.seal(5)
        seen = []
        with IntentJournal(path) as reopened:
            assert reopened.recover(lambda r: seen.append(r), shard=5) == 1
            assert seen[0].payload == b"five"
            # Shard 3's transaction is still recoverable afterwards.
            assert reopened.recover(lambda r: seen.append(r), shard=3) == 1
        assert [r.payload for r in seen] == [b"five", b"three"]

    def test_torn_tail_is_discarded(self, tmp_path):
        path = tmp_path / "j"
        journal = IntentJournal(path)
        journal.log(_record(payload=b"committed"))
        journal.seal(0)
        journal.commit(0)
        journal.log(_record(payload=b"torn-victim"))
        journal.seal(0)
        journal.close()
        # Tear the last record: chop bytes off the file's tail.
        raw = path.read_bytes()
        path.write_bytes(raw[:-5])
        with IntentJournal(path) as reopened:
            assert reopened.recover(lambda rec: None) == 0

    def test_corrupt_mid_record_clips_like_a_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        journal = IntentJournal(path)
        journal.log(_record(payload=b"x" * 64))
        journal.seal(0)
        journal.close()
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip a payload byte: CRC must catch it
        path.write_bytes(bytes(raw))
        with IntentJournal(path) as reopened:
            assert reopened.recover(lambda rec: None) == 0

    def test_checkpoint_truncates_when_idle(self, tmp_path):
        path = tmp_path / "j"
        with IntentJournal(path, group_commit=100) as journal:
            journal.log(_record())
            journal.seal(0)
            assert path.stat().st_size > 0
            assert not journal.checkpoint()  # open txn: refused
            journal.commit(0)
            # Idle commit auto-checkpoints; the file must be empty.
            assert path.stat().st_size == 0

    def test_meter_survives_the_roundtrip(self, tmp_path):
        path = tmp_path / "j"
        journal = IntentJournal(path)
        journal.log(_record(meter=(3, 2)))
        journal.seal(0)
        records = [rec for kind, txn, rec in journal.iter_records()]
        journal.close()
        assert records[0].meter == (3, 2)

    def test_group_commit_defers_fsync(self, tmp_path):
        syncs = []

        class Counting(IntentJournal):
            def _sync(self):
                syncs.append(1)
                super()._sync()

        journal = Counting(tmp_path / "j", group_commit=4)
        baseline = len(syncs)
        journal.log(_record())
        journal.seal(0)  # 1 fsync (the barrier)
        journal.commit(0)
        # Idle-checkpoint syncs; defeat it by keeping a txn open.
        assert len(syncs) >= baseline + 1

    def test_rejects_bad_group_commit(self, tmp_path):
        with pytest.raises(ValueError, match="group_commit"):
            IntentJournal(tmp_path / "j", group_commit=0)


def _store(tmp_path, journal, name="store", **kwargs):
    return ArrayStore(
        make_code("tip", 5),
        tmp_path / name,
        stripes=4,
        chunk_bytes=256,
        journal=journal,
        **kwargs,
    )


class TestJournalCompaction:
    """Satellite: the journal stays bounded under sustained load even
    when it is never idle (an open transaction pins the quiescent
    checkpoint off), by compacting live records in place."""

    def test_sustained_writes_keep_the_file_bounded(self, tmp_path):
        rounds = 400
        payload = b"p" * 32

        # Control: compaction disabled, same workload — the file only
        # ever grows, giving the size yardstick for the real run.
        control_path = tmp_path / "control"
        with IntentJournal(control_path, checkpoint_records=0) as control:
            control.log(_record(shard=1, payload=b"pinned"))
            control.seal(1)  # open txn: quiescent checkpoint can't fire
            for _ in range(rounds):
                control.log(_record(shard=0, payload=payload))
                control.seal(0)
                control.commit(0)
            assert control.compactions == 0
            control_size = control_path.stat().st_size

        path = tmp_path / "bounded"
        journal = IntentJournal(path, checkpoint_records=32)
        journal.log(_record(shard=1, payload=b"pinned"))
        journal.seal(1)
        high_water = 0
        for _ in range(rounds):
            journal.log(_record(shard=0, payload=payload))
            journal.seal(0)
            journal.commit(0)
            high_water = max(high_water, path.stat().st_size)
        assert journal.compactions >= rounds // 32 - 1
        # Bounded: the high-water mark is a small multiple of the
        # threshold, nowhere near the append-only control file.
        assert high_water < control_size / 4, (high_water, control_size)
        journal.close()

        # Compaction preserved the live transaction under its original
        # id: the pinned intent still rolls forward, nothing else does.
        replayed = []
        with IntentJournal(path) as reopened:
            assert reopened.recover(lambda r: replayed.append(r),
                                    shard=1) == 1
            assert reopened.recover(lambda r: None, shard=0) == 0
        assert replayed[0].payload == b"pinned"

    def test_compaction_is_crash_transparent(self, tmp_path):
        """Sealed-but-uncommitted records survive a compaction and a
        later commit marker still matches the rewritten intents."""
        path = tmp_path / "j"
        journal = IntentJournal(path, checkpoint_records=8)
        journal.log(_record(shard=2, payload=b"live-a"))
        journal.log(_record(shard=2, payload=b"live-b"))
        journal.seal(2)
        for _ in range(16):  # push past the threshold: compaction runs
            journal.log(_record(shard=0, payload=b"noise"))
            journal.seal(0)
            journal.commit(0)
        assert journal.compactions >= 1
        # Committing *after* the rewrite must mark the rewritten txn.
        journal.commit(2)
        journal.close()
        with IntentJournal(path) as reopened:
            assert reopened.recover(lambda r: None) == 0

    def test_rejects_negative_threshold(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_records"):
            IntentJournal(tmp_path / "j", checkpoint_records=-1)


class TestStoreRecovery:
    """ArrayStore + IntentJournal: replay-on-open and the S6 bugfix."""

    def test_clean_write_leaves_empty_journal(self, tmp_path):
        journal = IntentJournal(tmp_path / "j")
        store = _store(tmp_path, journal)
        store.write_bytes(0, b"\x5a" * 600)
        assert journal.pending_records() == []
        store.close()
        journal.close()

    def test_crash_before_data_write_rolls_forward_on_open(self, tmp_path):
        journal = CrashingJournal(tmp_path / "j")
        store = _store(tmp_path, journal)
        store.write_bytes(0, b"\x11" * 512)  # baseline content
        payload = bytes(range(256)) * 2
        # Allow the intent append, kill at the seal fsync: intents are
        # on disk, no data write has started.
        CrashingJournal.arm(1)
        with pytest.raises(Crash):
            store.write_bytes(0, payload)
        CrashingJournal.arm(None)
        # "Process death": reopen the directory with a fresh journal.
        journal2 = IntentJournal(tmp_path / "j")
        store2 = _store(tmp_path, journal2, name="store")
        got = store2.read_bytes(0, 512).tobytes()
        # The torn write either fully recovered or never started.
        assert got in (payload, b"\x11" * 512)
        assert store2.scrub() == []
        store2.close()
        journal2.close()

    def test_s6_inprocess_then_reopen_replay_is_idempotent(self, tmp_path):
        """The same interrupted write observed by BOTH recovery paths —
        in-process ``complete_interrupted_write`` and on-disk replay at
        the next open — must land exactly once, byte-identically."""
        journal = CrashingJournal(tmp_path / "j")
        store = _store(tmp_path, journal)
        store.write_bytes(0, b"\x22" * 512)
        payload = b"\xab" * 512
        # Kill at the seal fsync: the intent records are appended (and,
        # on a real disk, likely persisted) but seal never returned, so
        # the thread-local pending list still holds every record.
        CrashingJournal.arm(1)
        with pytest.raises(Crash):
            store.write_bytes(0, payload)
        CrashingJournal.arm(None)
        # Path 1: the in-memory roll-forward a repair would run.
        replayed = store.complete_interrupted_write()
        assert replayed > 0
        assert store.read_bytes(0, 512).tobytes() == payload
        io_after_repair = store.io.snapshot()
        # Path 2: the commit marker never reached the file (seal died),
        # so a reopen replays the very same transaction from disk.
        journal2 = IntentJournal(tmp_path / "j")
        store2 = _store(tmp_path, journal2, name="store")
        assert store2.read_bytes(0, 512).tobytes() == payload
        assert store2.scrub() == []
        store2.close()
        journal2.close()
        # Idempotency of path 1 itself: nothing left to replay.
        assert store.complete_interrupted_write() == 0
        assert store.io == io_after_repair
        store.close()
        journal.close()

    def test_crash_sweep_every_boundary_recovers_byte_identical(
        self, tmp_path
    ):
        """Kill at every journal write/fsync boundary of a two-shard
        journaled write; reopening must recover each shard to a state
        byte-identical to either before or after the whole run, with
        clean parity."""
        before0, before1 = b"\x01" * 512, b"\x02" * 512
        after0, after1 = b"\xe0" * 512, b"\xe1" * 512

        def build(tag):
            journal = CrashingJournal(tmp_path / f"{tag}-j")
            s0 = _store(tmp_path, journal, name=f"{tag}-s0", shard_id=0)
            s1 = _store(tmp_path, journal, name=f"{tag}-s1", shard_id=1)
            s0.write_bytes(0, before0)
            s1.write_bytes(0, before1)
            return journal, s0, s1

        # Count the boundaries of the crash-free run.
        journal, s0, s1 = build("count")
        CrashingJournal.arm(None)
        start = CrashingJournal.ops
        s0.write_bytes(0, after0)
        s1.write_bytes(0, after1)
        total = CrashingJournal.ops - start
        s0.close(), s1.close(), journal.close()
        assert total >= 4  # at least seal append+fsync per shard

        for k in range(total):
            journal, s0, s1 = build(f"k{k}")
            CrashingJournal.arm(k)
            with pytest.raises(Crash):
                s0.write_bytes(0, after0)
                s1.write_bytes(0, after1)
            CrashingJournal.arm(None)
            # Process death: reopen both shards over a fresh journal.
            journal2 = IntentJournal(tmp_path / f"k{k}-j")
            r0 = _store(tmp_path, journal2, name=f"k{k}-s0", shard_id=0)
            r1 = _store(tmp_path, journal2, name=f"k{k}-s1", shard_id=1)
            got0 = r0.read_bytes(0, 512).tobytes()
            got1 = r1.read_bytes(0, 512).tobytes()
            assert got0 in (before0, after0), f"shard 0 torn at boundary {k}"
            assert got1 in (before1, after1), f"shard 1 torn at boundary {k}"
            assert r0.scrub() == [] and r1.scrub() == []
            # Boundary ordering: shard 1 can only be new if shard 0 is.
            if got1 == after1:
                assert got0 == after0
            r0.close(), r1.close(), journal2.close()


class TestSharedJournalAcrossStores:
    def test_two_stores_one_journal_recover_their_own_writes(self, tmp_path):
        journal = IntentJournal(tmp_path / "j")
        s0 = _store(tmp_path, journal, name="s0", shard_id=0)
        s1 = _store(tmp_path, journal, name="s1", shard_id=1)
        s0.write_bytes(0, b"\x0a" * 300)
        s1.write_bytes(0, b"\x0b" * 300)
        assert s0.read_bytes(0, 300).tobytes() == b"\x0a" * 300
        assert s1.read_bytes(0, 300).tobytes() == b"\x0b" * 300
        assert journal.pending_records() == []
        s0.close(), s1.close(), journal.close()

    def test_header_is_fixed_width(self):
        # The on-disk format is load-bearing: changing the header size
        # silently invalidates every existing journal.
        from repro.store.journal import _HEADER

        assert _HEADER.size == struct.calcsize("<2sBxIiQQIHHII")


class TestJournalledStoreEquivalence:
    def test_journal_changes_no_bytes_and_no_io_counts(self, tmp_path):
        """A journaled store must be byte- and counter-identical to an
        unjournaled one over the same workload (the journal meters
        nothing; it only adds durability)."""
        rng = np.random.default_rng(7)
        plain = ArrayStore(
            make_code("tip", 5), tmp_path / "plain",
            stripes=4, chunk_bytes=256,
        )
        journal = IntentJournal(tmp_path / "j")
        logged = _store(tmp_path, journal, name="logged")
        for _ in range(25):
            length = int(rng.integers(1, 1500))
            offset = int(rng.integers(0, plain.capacity_bytes - length))
            payload = rng.integers(0, 256, length, dtype=np.uint8)
            plain.write_bytes(offset, payload)
            logged.write_bytes(offset, payload)
        assert np.array_equal(
            plain.read_bytes(0, plain.capacity_bytes),
            logged.read_bytes(0, logged.capacity_bytes),
        )
        assert plain.io == logged.io
        plain.close(), logged.close(), journal.close()
