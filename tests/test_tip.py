"""Tests for TIP-code structure, encoding, shortening (Sec. III, V, VII)."""

import itertools

import numpy as np
import pytest

from repro.analysis import single_write_cost
from repro.analysis.xor_cost import encoding_xor_per_element, tip_encoding_bound
from repro.codes.base import Cell
from repro.codes.tip import TipCode, make_tip, tip_parameters


class TestStructure:
    @pytest.mark.parametrize("p", [3, 5, 7, 11])
    def test_shape_and_counts(self, p):
        code = TipCode(p)
        assert code.rows == p - 1
        assert code.cols == p + 1
        assert code.num_parity == 3 * (p - 1)
        assert code.num_data == (p - 1) * (p - 2)
        assert code.k == p - 2

    def test_parity_placement_p5(self):
        """Fig. 3's layout: horizontal col p, diagonals on the two
        diagonals of the inner square."""
        code = TipCode(5)
        for i in range(4):
            assert code.kind(i, 5) == Cell.PARITY          # horizontal
            assert code.kind(i, i + 1) == Cell.PARITY      # diagonal
            assert code.kind(i, 4 - i) == Cell.PARITY      # anti-diagonal
        assert code.kind(0, 0) == Cell.DATA

    def test_every_row_has_one_parity_of_each_kind(self):
        code = TipCode(7)
        for i in range(code.rows):
            kinds = [code.kind(i, j) for j in range(code.cols)]
            assert kinds.count(Cell.PARITY) == 3

    def test_no_empty_cells(self):
        code = TipCode(7)
        assert len(code.nonempty_positions) == code.rows * code.cols

    def test_invalid_p_rejected(self):
        for bad in (2, 4, 9, 15, 1):
            with pytest.raises(ValueError):
                TipCode(bad)


class TestEncodingEquations:
    """The worked examples of Fig. 3 (p = 5)."""

    def test_horizontal_example(self):
        code = TipCode(5)
        assert set(code.chains[(0, 5)]) == {(0, 0), (0, 2), (0, 3)}

    def test_diagonal_example(self):
        code = TipCode(5)
        assert set(code.chains[(0, 1)]) == {(0, 0), (3, 2), (1, 4)}

    def test_anti_diagonal_example(self):
        code = TipCode(5)
        assert set(code.chains[(0, 4)]) == {(0, 0), (1, 1), (3, 3)}

    def test_chains_contain_only_data(self):
        """The 'three independent parities' property: no chain touches a
        parity element."""
        for p in (3, 5, 7, 11):
            code = TipCode(p)
            for members in code.chains.values():
                for row, col in members:
                    assert code.kind(row, col) == Cell.DATA

    def test_every_data_element_in_exactly_three_chains(self):
        for p in (5, 7):
            code = TipCode(p)
            counts = {pos: 0 for pos in code.data_positions}
            for members in code.chains.values():
                for pos in members:
                    counts[pos] += 1
            assert set(counts.values()) == {3}


class TestOptimality:
    @pytest.mark.parametrize("p", [3, 5, 7, 11, 13])
    def test_optimal_update_complexity(self, p):
        """Sec. V-A: every single write touches exactly 3 parities."""
        code = TipCode(p)
        for pos in code.data_positions:
            assert len(code.update_penalty(pos)) == 3
        assert single_write_cost(code) == 4.0

    @pytest.mark.parametrize("p", [5, 7, 11, 13])
    def test_optimal_encoding_complexity(self, p):
        """Sec. V-B: encoding costs exactly 3 - 3/(p-2) XORs/element."""
        code = TipCode(p)
        assert encoding_xor_per_element(code) == pytest.approx(
            tip_encoding_bound(p)
        )

    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_mds(self, p):
        assert TipCode(p).is_mds()

    def test_storage_efficiency_is_mds_optimal(self):
        code = TipCode(7)
        assert code.storage_efficiency == pytest.approx(code.k / code.n)


class TestDecodeRoundtrip:
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_all_triple_failures(self, p):
        code = TipCode(p)
        stripe = code.random_stripe(packet_size=8, seed=p)
        for combo in itertools.combinations(range(code.cols), 3):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_single_and_double_failures(self):
        code = TipCode(5)
        stripe = code.random_stripe(packet_size=8, seed=1)
        for combo in itertools.combinations(range(code.cols), 2):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe)


class TestParameters:
    def test_native_sizes(self):
        assert tip_parameters(6) == (5, 0)
        assert tip_parameters(8) == (7, 0)
        assert tip_parameters(12) == (11, 0)

    def test_shortened_sizes(self):
        assert tip_parameters(7) == (7, 1)   # n = p
        assert tip_parameters(9) == (11, 3)
        assert tip_parameters(11) == (11, 1)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            tip_parameters(3)

    def test_make_tip_argument_validation(self):
        with pytest.raises(ValueError):
            make_tip()
        with pytest.raises(ValueError):
            make_tip(n=6, p=5)


class TestShorteningWithAdjusters:
    def test_fig16_adjuster_example(self):
        """Sec. VII / Fig. 16: shortening TIP(p=7) to 6 disks re-homes the
        chain of the removed diagonal parity C0,1 onto adjuster C1,6:
        C1,6 = C5,2 xor C4,3 xor C2,5 (columns shifted by 2 after removal)."""
        from repro.codes.tip import _shorten_tip

        code = _shorten_tip(7, 2, name="tip-6of7")
        # Original adjuster position (1, 6) -> (1, 4) after removing 2 cols.
        assert code.kind(1, 4) == Cell.PARITY
        members = set(code.chains[(1, 4)])
        assert members == {(5, 0), (4, 1), (2, 3)}  # shifted by 2

    @pytest.mark.parametrize("n", [4, 5, 6, 7, 9, 10, 11, 13])
    def test_shortened_is_mds(self, n):
        code = make_tip(n)
        assert code.cols == n
        assert code.is_mds()

    @pytest.mark.parametrize("n", [5, 9, 10])
    def test_shortened_decode_roundtrip(self, n):
        code = make_tip(n)
        stripe = code.random_stripe(packet_size=4, seed=n)
        for combo in itertools.combinations(range(code.cols), 3):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_adjusters_only_when_parity_removed(self):
        """n = p removes only the all-data column 0: no adjusters, so
        update complexity stays optimal."""
        code = make_tip(7)  # p = 7, one column removed
        for pos in code.data_positions:
            assert len(code.update_penalty(pos)) == 3

    def test_adjusters_raise_update_cost_of_feeding_elements(self):
        """With adjusters, elements in a re-homed chain pay extra parity
        updates — the documented price of Sec. VII."""
        code = make_tip(9)  # p = 11, 3 removed columns -> adjusters exist
        costs = {len(code.update_penalty(pos)) for pos in code.data_positions}
        assert 3 in costs        # most elements stay optimal
        assert max(costs) > 3    # adjuster-feeding elements pay more

    def test_oversized_shortening_rejected(self):
        from repro.codes.tip import _shorten_tip

        with pytest.raises(ValueError):
            _shorten_tip(7, 4, name="too-short")
