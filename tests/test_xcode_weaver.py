"""Tests for X-code (vertical RAID-6) and WEAVER (non-MDS 3DFT)."""

import itertools

import numpy as np
import pytest

from repro.analysis import single_write_cost
from repro.codes.weaver import WeaverCode, make_weaver
from repro.codes.xcode import XCode, make_xcode


class TestXCode:
    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_shape_and_mds(self, p):
        code = XCode(p)
        assert code.rows == code.cols == p
        assert code.num_data == p * (p - 2)
        assert code.is_mds()
        assert code.is_storage_optimal

    @pytest.mark.parametrize("p", [5, 7])
    def test_decode_all_pairs(self, p):
        code = XCode(p)
        stripe = code.random_stripe(packet_size=4, seed=p)
        for combo in itertools.combinations(range(code.cols), 2):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    @pytest.mark.parametrize("p", [5, 7, 11])
    def test_optimal_update_complexity(self, p):
        """X-code's defining property: exactly 2 parities per write —
        the RAID-6 analogue of TIP's three independent parities."""
        code = XCode(p)
        for pos in code.data_positions:
            assert len(code.update_penalty(pos)) == 2
        assert single_write_cost(code) == 3.0

    def test_paper_equations(self):
        """C[p-2][i] = XOR_k C[k][(i+k+2) mod p] for p=5, i=0."""
        code = XCode(5)
        assert set(code.chains[(3, 0)]) == {(0, 2), (1, 3), (2, 4)}
        assert set(code.chains[(4, 0)]) == {(0, 3), (1, 2), (2, 1)}

    def test_invalid_p(self):
        for bad in (3, 4, 6, 9):
            with pytest.raises(ValueError):
                XCode(bad)

    def test_make_xcode(self):
        assert make_xcode(7).cols == 7


class TestWeaver:
    @pytest.mark.parametrize("n", [6, 7, 8, 10, 12])
    def test_triple_fault_tolerant(self, n):
        code = WeaverCode(n)
        assert code.is_mds()  # decodability of every triple

    @pytest.mark.parametrize("n", [6, 8, 10])
    def test_decode_all_triples(self, n):
        code = WeaverCode(n)
        stripe = code.random_stripe(packet_size=4, seed=n)
        for combo in itertools.combinations(range(code.cols), 3):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_fifty_percent_efficiency(self):
        code = WeaverCode(10)
        assert code.storage_efficiency == pytest.approx(0.5)
        assert not code.is_storage_optimal  # the non-MDS trade-off

    def test_weaver6_is_trivially_mds(self):
        """At n=6, 50% efficiency coincides with the MDS point (k=3)."""
        assert WeaverCode(6).is_storage_optimal

    def test_optimal_update_complexity(self):
        """WEAVER's Table II entry: update complexity optimal."""
        code = WeaverCode(10)
        for pos in code.data_positions:
            assert len(code.update_penalty(pos)) == 3

    def test_full_stripe_write_penalty_vs_mds(self):
        """The paper's non-MDS critique: a full-stripe write on WEAVER
        moves twice the data volume of an MDS code's parity overhead."""
        from repro.analysis import full_stripe_write_cost
        from repro.codes import make_code

        weaver = WeaverCode(12)
        tip = make_code("tip", 12)
        weaver_overhead = full_stripe_write_cost(weaver) / weaver.num_data
        tip_overhead = full_stripe_write_cost(tip) / tip.num_data
        assert weaver_overhead > tip_overhead

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            WeaverCode(5)

    def test_bad_offsets_trigger_search(self):
        code = WeaverCode(8, offsets=(1, 2, 3))  # not 3-fault tolerant
        assert code.is_mds()
        assert code.offsets != (1, 2, 3)

    def test_make_weaver(self):
        assert make_weaver(9).cols == 9
