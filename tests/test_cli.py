"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_list(capsys):
    code, out, _ = run(capsys, "list")
    assert code == 0
    assert "tip" in out.splitlines()
    assert "cauchy-rs" in out


def test_layout(capsys):
    code, out, _ = run(capsys, "layout", "tip", "6")
    assert code == 0
    assert "tip-p5" in out
    assert "P" in out and "." in out


def test_layout_unknown_family(capsys):
    code, _, err = run(capsys, "layout", "raid0", "6")
    assert code == 2
    assert "unknown code family" in err


def test_verify_success(capsys):
    code, out, _ = run(capsys, "verify", "tip", "8")
    assert code == 0
    assert "decodable: yes" in out
    assert "round-trip" in out


def test_verify_unsupported_size(capsys):
    code, _, err = run(capsys, "verify", "hdd1", "9")
    assert code == 2
    assert "p + 1" in err


def test_write_cost_single(capsys):
    code, out, _ = run(capsys, "write-cost", "tip", "12")
    assert code == 0
    assert "4.000" in out


def test_write_cost_partial(capsys):
    code, out, _ = run(capsys, "write-cost", "tip", "12", "--length", "4")
    assert code == 0
    assert "4 consecutive" in out


def test_simulate(capsys):
    code, out, _ = run(capsys, "simulate", "src2_0", "6", "--requests", "120")
    assert code == 0
    assert "tip" in out
    assert "elems/write" in out


def test_simulate_rejects_unknown_workload():
    with pytest.raises(SystemExit):
        main(["simulate", "nope", "6"])


def test_reliability(capsys):
    code, out, _ = run(capsys, "reliability", "12")
    assert code == 0
    assert "RAID-5" in out and "3DFT" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_replay_synthetic(capsys):
    code, out, _ = run(
        capsys, "replay", "--family", "tip", "--n", "8",
        "--trace", "synthetic:src2_0", "--requests", "80", "--stripes", "8",
        "--chunk-bytes", "1024",
    )
    assert code == 0
    assert "trace src2_0" in out
    assert "replaying on tip-p7" in out
    assert "data chunks:" in out and "parity chunks:" in out
    assert "per write" in out


def test_replay_degraded(capsys):
    code, out, _ = run(
        capsys, "replay", "--family", "star", "--n", "6",
        "--trace", "synthetic:financial_1", "--requests", "50",
        "--stripes", "8", "--chunk-bytes", "1024", "--fail", "0", "2",
    )
    assert code == 0
    assert "failed disks (0, 2)" in out


def test_replay_csv_trace(capsys, tmp_path):
    path = tmp_path / "mini.csv"
    path.write_text(
        "0,0,0,8,W,0.0\n"
        "0,0,16,8,r,0.5\n"
        "0,0,64,16,w,1.0\n"
    )
    code, out, _ = run(
        capsys, "replay", "--family", "tip", "--n", "6",
        "--trace", str(path), "--stripes", "8", "--chunk-bytes", "1024",
    )
    assert code == 0
    assert "trace mini: 3 requests" in out
    assert "2 writes" in out


def test_replay_unknown_workload(capsys):
    code, _, err = run(
        capsys, "replay", "--family", "tip", "--n", "6",
        "--trace", "synthetic:nope",
    )
    assert code == 2
    assert "unknown workload" in err


def test_replay_with_cache(capsys):
    code, out, _ = run(
        capsys, "replay", "--family", "tip", "--n", "8",
        "--trace", "synthetic:prxy_0", "--requests", "120", "--stripes", "8",
        "--chunk-bytes", "1024", "--cache-stripes", "4",
    )
    assert code == 0
    assert "cache 4 stripes" in out
    assert "hit rate" in out
    assert "parity writes:" in out and "coalesced" in out
    assert "amortization" in out


def test_replay_cache_coalesces_parity_writes(capsys):
    """Cached replay must never write more parity than uncached."""
    argv = [
        "replay", "--family", "tip", "--n", "8",
        "--trace", "synthetic:prxy_0", "--requests", "120",
        "--stripes", "8", "--chunk-bytes", "1024",
    ]

    def parity_written(out):
        for line in out.splitlines():
            if line.startswith("parity chunks:"):
                # "parity chunks:  R read  W written"
                return int(line.split(" read ")[1].split()[0])
        raise AssertionError(f"no parity line in: {out}")

    _, uncached_out, _ = run(capsys, *argv)
    _, cached_out, _ = run(capsys, *argv, "--cache-stripes", "8")
    assert parity_written(cached_out) < parity_written(uncached_out)


def test_scrub_clean_store(capsys):
    code, out, _ = run(
        capsys, "scrub", "--family", "tip", "--n", "6",
        "--stripes", "8", "--chunk-bytes", "512",
    )
    assert code == 0
    assert "scrubbing tip-p5" in out
    assert "0 errors" in out and "0 unfixable" in out


def test_scrub_with_fault_plan_repairs(capsys):
    code, out, _ = run(
        capsys, "scrub", "--family", "tip", "--n", "6",
        "--stripes", "8", "--chunk-bytes", "512",
        "--fault-plan", "seed=3;bit_flip:disk=1,at_op=40;"
                        "latent:disk=0,rate=0.01",
    )
    assert code == 0  # exit 1 would mean unfixable stripes remained
    assert "fault injection on" in out
    assert "0 unfixable" in out
    assert "NOT FIXED" not in out


def test_scrub_existing_dir(capsys, tmp_path):
    from repro.codes import make_code
    from repro.store import ArrayStore

    with ArrayStore(
        make_code("star", 6), tmp_path, stripes=4, chunk_bytes=512
    ) as store:
        store.write_bytes(0, bytes(range(256)) * 8)
    code, out, _ = run(
        capsys, "scrub", "--family", "star", "--n", "6",
        "--stripes", "4", "--chunk-bytes", "512", "--dir", str(tmp_path),
    )
    assert code == 0
    assert "scanned 4 stripes" in out


def test_replay_with_fault_plan_and_scrub_every(capsys):
    code, out, _ = run(
        capsys, "replay", "--family", "tip", "--n", "6",
        "--trace", "synthetic:src2_0", "--requests", "120",
        "--stripes", "8", "--chunk-bytes", "1024",
        "--fault-plan", "seed=7;fail_stop:disk=2,at_op=80;"
                        "latent:disk=1,rate=0.005;bit_flip:disk=3,at_op=25",
        "--scrub-every", "20",
    )
    assert code == 0
    assert "fault injection on" in out
    assert "faults injected: 1 fail-stops" in out
    assert "repair: 1 fail-stops handled" in out
    assert "0 unfixable" in out


def test_replay_fault_plan_parse_error(capsys):
    code, _, err = run(
        capsys, "replay", "--trace", "synthetic:src2_0",
        "--fault-plan", "meltdown:disk=1",
    )
    assert code == 2
    assert "unknown fault kind" in err or "meltdown" in err


def test_reliability_with_sector_model(capsys):
    code, out, _ = run(
        capsys, "reliability", "12", "--latent-rate", "1e-4",
        "--scrub-interval", "168",
    )
    assert code == 0
    assert "latent rate 0.0001/disk-h" in out
    assert "scrub every 168 h" in out


def test_replay_concurrent(capsys):
    code, out, _ = run(
        capsys, "replay", "--trace", "synthetic:prxy_0",
        "--requests", "200", "--concurrency", "4",
        "--stripes", "16", "--chunk-bytes", "512",
    )
    assert code == 0
    assert "4 workers" in out
    assert "p50" in out and "p99" in out
    assert "closed-loop workers" in out


def test_replay_concurrent_with_faults_scrubs_clean(capsys):
    code, out, _ = run(
        capsys, "replay", "--trace", "synthetic:prxy_0",
        "--requests", "200", "--concurrency", "4",
        "--fault-plan", "seed=7;latent:disk=1,rate=0.003",
        "--scrub-every", "25",
    )
    assert code == 0
    assert "repair:" in out
    assert "0 unfixable" in out


def test_replay_rejects_bad_concurrency(capsys):
    code, _, err = run(
        capsys, "replay", "--trace", "synthetic:prxy_0",
        "--concurrency", "0",
    )
    assert code == 2
    assert "concurrency" in err


def test_serve_sweep(capsys):
    code, out, _ = run(
        capsys, "serve", "--requests", "120",
        "--concurrency", "1", "2",
        "--stripes", "16", "--chunk-bytes", "512",
        "--cache-stripes", "16",
    )
    assert code == 0
    assert "service sweep" in out
    assert "p50 ms" in out and "p99 ms" in out
    rows = [line for line in out.splitlines()
            if line.strip() and line.split()[0] in ("1", "2")]
    assert len(rows) == 2


def test_serve_with_repair_ticks(capsys):
    code, out, _ = run(
        capsys, "serve", "--requests", "100",
        "--concurrency", "2",
        "--fault-plan", "seed=3;latent:disk=1,rate=0.002",
        "--repair-every", "25",
    )
    assert code == 0
    assert "repair tick every 25 requests" in out
    row = [line for line in out.splitlines()
           if line.strip().startswith("2 ")][0]
    assert int(row.split()[-1]) == 4  # 100 requests / 25 per tick


def test_volume_create_and_status(capsys, tmp_path):
    vol_dir = str(tmp_path / "vol")
    code, out, _ = run(
        capsys, "volume", "create", "--dir", vol_dir,
        "--shard", "tip:5:8:512", "--shard", "tip:7:6:512",
        "--extent-bytes", "2048",
    )
    assert code == 0
    assert "2 shard(s)" in out
    assert "tip n=5" in out and "tip n=7" in out
    code, out, _ = run(capsys, "volume", "status", "--dir", vol_dir)
    assert code == 0
    assert "2048 B extents" in out


def test_volume_create_rejects_bad_shard_spec(capsys, tmp_path):
    code, _, err = run(
        capsys, "volume", "create", "--dir", str(tmp_path / "vol"),
        "--shard", "tip:banana:8",
    )
    assert code == 2
    assert "non-integer" in err


def test_volume_replay_reports_latency(capsys, tmp_path):
    vol_dir = str(tmp_path / "vol")
    run(capsys, "volume", "create", "--dir", vol_dir,
        "--shard", "tip:5:8:512", "--extent-bytes", "2048")
    code, out, _ = run(
        capsys, "volume", "replay", "--dir", vol_dir,
        "--requests", "80", "--workers", "2", "--max-bytes", "4096",
    )
    assert code == 0
    assert "80 requests" in out
    assert "p50" in out and "p99" in out


def test_volume_restripe_changes_family_under_load(capsys, tmp_path):
    vol_dir = str(tmp_path / "vol")
    run(capsys, "volume", "create", "--dir", vol_dir,
        "--shard", "tip:5:8:512", "--shard", "tip:7:6:512",
        "--extent-bytes", "2048")
    run(capsys, "volume", "replay", "--dir", vol_dir, "--requests", "40")
    code, out, _ = run(
        capsys, "volume", "restripe", "--dir", vol_dir,
        "--shard", "star:7:24:512", "--requests", "30",
        "--extents-per-tick", "2",
    )
    assert code == 0
    assert "restriped" in out
    assert "foreground during migration" in out
    assert "star n=7" in out
    code, out, _ = run(capsys, "volume", "status", "--dir", vol_dir)
    assert code == 0
    assert "tip" not in out.split("volume")[1] or "star n=7" in out


def test_volume_restripe_without_target_or_migration_errors(
    capsys, tmp_path
):
    vol_dir = str(tmp_path / "vol")
    run(capsys, "volume", "create", "--dir", vol_dir,
        "--shard", "tip:5:8:512", "--extent-bytes", "2048")
    code, _, err = run(capsys, "volume", "restripe", "--dir", vol_dir)
    assert code == 2
    assert "no interrupted migration" in err


def test_fleet_sweep_table(capsys):
    code, out, _ = run(
        capsys, "fleet",
        "--topology", "3x3x2", "--code", "tip", "--n", "6",
        "--placement", "random", "pss", "--model", "independent",
        "--stripes", "50", "--duration-years", "2",
        "--mttf", "30000", "--trials", "2", "--seed", "1",
    )
    assert code == 0
    assert "fleet 3x3x2 (2 trials/cell, 50 stripes" in out
    assert "tip/random/independent" in out
    assert "tip/pss/independent" in out
    assert "P(stripe loss)" in out


def test_fleet_scenario_file(capsys, tmp_path):
    import json

    spec = tmp_path / "cell.json"
    spec.write_text(json.dumps({
        "topology": "3x3x2", "code": "star", "n": 6,
        "placement": "copyset", "failure_model": "independent",
        "mttf_hours": 30000.0, "stripes": 40,
        "duration_hours": 10000.0, "seed": 2,
    }))
    code, out, _ = run(
        capsys, "fleet", "--scenario", str(spec), "--trials", "2",
    )
    assert code == 0
    assert "star/copyset/independent" in out


def test_fleet_rejects_oversized_stripe(capsys):
    # xorbas needs 10 distinct machines; 3x3x2 has only 9.
    code, _, err = run(
        capsys, "fleet",
        "--topology", "3x3x2", "--code", "xorbas",
        "--stripes", "10", "--trials", "1",
    )
    assert code == 2
    assert "exceeds 9 machines" in err


def test_fleet_rejects_unknown_model(capsys):
    code, _, err = run(
        capsys, "fleet", "--model", "chaos", "--stripes", "10",
        "--trials", "1",
    )
    assert code == 2
    assert "unknown failure model" in err
