"""Unit tests for IoCounters arithmetic (the per-shard aggregation)."""

from repro.store import IoCounters


def _make(a, b, c, d):
    return IoCounters(
        data_chunks_read=a,
        parity_chunks_read=b,
        data_chunks_written=c,
        parity_chunks_written=d,
    )


class TestAdd:
    def test_add_is_fieldwise(self):
        total = _make(1, 2, 3, 4) + _make(10, 20, 30, 40)
        assert total == _make(11, 22, 33, 44)

    def test_add_leaves_operands_untouched(self):
        left, right = _make(1, 1, 1, 1), _make(2, 2, 2, 2)
        left + right
        assert left == _make(1, 1, 1, 1)
        assert right == _make(2, 2, 2, 2)

    def test_sub_inverts_add(self):
        base, delta = _make(5, 6, 7, 8), _make(1, 2, 3, 4)
        assert (base + delta) - delta == base


class TestMerged:
    def test_merged_sums_many(self):
        parts = [_make(1, 0, 0, 0), _make(0, 2, 0, 0), _make(0, 0, 3, 4)]
        assert IoCounters.merged(parts) == _make(1, 2, 3, 4)

    def test_merged_empty_is_zero(self):
        assert IoCounters.merged([]) == IoCounters()

    def test_merged_equals_repeated_add(self):
        parts = [_make(i, 2 * i, 3 * i, 4 * i) for i in range(5)]
        total = IoCounters()
        for part in parts:
            total = total + part
        assert IoCounters.merged(parts) == total

    def test_merged_accepts_generator(self):
        assert IoCounters.merged(
            _make(1, 1, 1, 1) for _ in range(3)
        ) == _make(3, 3, 3, 3)

    def test_merged_result_is_independent(self):
        part = _make(1, 1, 1, 1)
        total = IoCounters.merged([part])
        total.data_chunks_read += 99
        assert part.data_chunks_read == 1

    def test_derived_totals(self):
        total = IoCounters.merged([_make(1, 2, 3, 4), _make(4, 3, 2, 1)])
        assert total.chunks_read == 10
        assert total.chunks_written == 10
        assert total.total_chunks == 20
