"""Tests for the STAR code (paper's Fig. 1 and baseline behaviour)."""

import itertools

import numpy as np
import pytest

from repro.analysis import single_write_cost
from repro.codes.star import StarCode, make_star


class TestStructure:
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_shape(self, p):
        code = StarCode(p)
        assert code.rows == p - 1
        assert code.cols == p + 3
        assert code.k == p
        assert code.num_parity == 3 * (p - 1)

    def test_invalid_p(self):
        for bad in (2, 4, 9):
            with pytest.raises(ValueError):
                StarCode(bad)


class TestFig1Examples:
    """The worked examples of the TIP paper's Fig. 1 (p = 5)."""

    def test_horizontal(self):
        code = StarCode(5)
        assert set(code.chains[(0, 5)]) == {(0, j) for j in range(5)}

    def test_diagonal_with_s1(self):
        # C0,6 = C0,0 ^ C3,2 ^ C2,3 ^ C1,4 ^ S1,
        # S1 = C3,1 ^ C2,2 ^ C1,3 ^ C0,4.
        code = StarCode(5)
        expected = {(0, 0), (3, 2), (2, 3), (1, 4)} | {
            (3, 1), (2, 2), (1, 3), (0, 4)
        }
        assert set(code.chains[(0, 6)]) == expected

    def test_anti_diagonal_with_s2(self):
        # C0,7 = C0,0 ^ C1,1 ^ C2,2 ^ C3,3 ^ S2,
        # S2 = C0,1 ^ C1,2 ^ C2,3 ^ C3,4.
        code = StarCode(5)
        expected = {(0, 0), (1, 1), (2, 2), (3, 3)} | {
            (0, 1), (1, 2), (2, 3), (3, 4)
        }
        assert set(code.chains[(0, 7)]) == expected

    def test_fig1d_update_example(self):
        """Writing C2,2 (on the S1 diagonal) must modify the horizontal
        parity C2,5, the anti-diagonal parity C0,7, and ALL four diagonal
        parities — six parities total (Fig. 1(d))."""
        code = StarCode(5)
        penalty = code.update_penalty((2, 2))
        assert (2, 5) in penalty
        assert (0, 7) in penalty
        for i in range(4):
            assert (i, 6) in penalty
        assert len(penalty) == 6


class TestBehaviour:
    @pytest.mark.parametrize("p", [3, 5])
    def test_mds(self, p):
        assert StarCode(p).is_mds()

    @pytest.mark.parametrize("p", [3, 5])
    def test_decode_all_triples(self, p):
        code = StarCode(p)
        stripe = code.random_stripe(packet_size=4, seed=p)
        for combo in itertools.combinations(range(code.cols), 3):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    @pytest.mark.parametrize("p", [3, 5, 7, 11])
    def test_single_write_cost_formula(self, p):
        """Derived closed form: 2 + 4(p-1)/p modified elements on the
        native layout (matches Table IV, e.g. 4.667 at p=3 / n=6)."""
        code = StarCode(p)
        assert single_write_cost(code) == pytest.approx(2 + 4 * (p - 1) / p)

    def test_make_star_sizes(self):
        for n in (4, 5, 6, 7, 8, 9, 10):
            code = make_star(n)
            assert code.cols == n
        with pytest.raises(ValueError):
            make_star(3)

    def test_shortened_star_still_mds(self):
        assert make_star(7).is_mds()
