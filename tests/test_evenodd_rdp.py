"""Tests for the RAID-6 substrates EVENODD and RDP."""

import itertools

import numpy as np
import pytest

from repro.analysis import single_write_cost
from repro.codes.evenodd import EvenOddCode, make_evenodd, s_diagonal
from repro.codes.rdp import RdpCode, make_rdp


class TestEvenOdd:
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_shape_and_mds(self, p):
        code = EvenOddCode(p)
        assert code.rows == p - 1
        assert code.cols == p + 2
        assert code.faults == 2
        assert code.is_mds()

    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_decode_all_pairs(self, p):
        code = EvenOddCode(p)
        stripe = code.random_stripe(packet_size=4, seed=p)
        for combo in itertools.combinations(range(code.cols), 2):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_s_diagonal_cells(self):
        assert set(s_diagonal(5)) == {(3, 1), (2, 2), (1, 3), (0, 4)}

    def test_s_diagonal_elements_update_all_diagonal_parities(self):
        code = EvenOddCode(5)
        penalty = code.update_penalty((3, 1))  # on the S diagonal
        diag_parities = {(i, 6) for i in range(4)}
        assert diag_parities <= penalty

    def test_off_s_elements_touch_two_parities(self):
        code = EvenOddCode(5)
        assert len(code.update_penalty((0, 0))) == 2

    def test_make_evenodd_sizes(self):
        for n in (4, 5, 6, 7, 8):
            assert make_evenodd(n).cols == n
        with pytest.raises(ValueError):
            make_evenodd(3)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            EvenOddCode(4)


class TestRdp:
    @pytest.mark.parametrize("p", [3, 5, 7])
    def test_shape_and_mds(self, p):
        code = RdpCode(p)
        assert code.rows == p - 1
        assert code.cols == p + 1
        assert code.faults == 2
        assert code.is_mds()

    @pytest.mark.parametrize("p", [3, 5])
    def test_decode_all_pairs(self, p):
        code = RdpCode(p)
        stripe = code.random_stripe(packet_size=4, seed=p)
        for combo in itertools.combinations(range(code.cols), 2):
            damaged = stripe.copy()
            code.erase_columns(damaged, combo)
            code.decode(damaged, combo)
            assert np.array_equal(damaged, stripe), combo

    def test_diagonal_chains_span_row_parity(self):
        """RDP's defining chained layout."""
        code = RdpCode(5)
        row_parity_cells = {(i, 4) for i in range(4)}
        diag_members = set().union(*(code.chains[(i, 5)] for i in range(4)))
        assert row_parity_cells & diag_members

    def test_update_cost_above_optimal(self):
        """The chained layout costs more than the 2-fault optimum of 3."""
        code = RdpCode(5)
        assert single_write_cost(code) > 3.0

    def test_make_rdp_sizes(self):
        for n in (4, 5, 6, 7, 8):
            assert make_rdp(n).cols == n
        with pytest.raises(ValueError):
            make_rdp(3)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            RdpCode(6)
