"""Tests for the trace model and the Table III synthetic generators."""

import pytest

from repro.traces import (
    TABLE3_WORKLOADS,
    Trace,
    TraceRequest,
    generate_trace,
    parse_csv_trace,
    workload_names,
)


class TestModel:
    def test_request_validation(self):
        with pytest.raises(ValueError):
            TraceRequest(-1.0, 0, 512, True)
        with pytest.raises(ValueError):
            TraceRequest(0.0, -512, 512, True)
        with pytest.raises(ValueError):
            TraceRequest(0.0, 0, 0, True)

    def test_trace_sorts_by_timestamp(self):
        trace = Trace(
            "t",
            [
                TraceRequest(2.0, 0, 512, True),
                TraceRequest(1.0, 512, 512, False),
            ],
        )
        assert [r.timestamp for r in trace] == [1.0, 2.0]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            Trace("empty", [])

    def test_stats(self):
        trace = Trace(
            "t",
            [
                TraceRequest(0.0, 0, 1024, True),
                TraceRequest(2.0, 0, 3072, False),
            ],
        )
        stats = trace.stats()
        assert stats.requests == 2
        assert stats.write_fraction == 0.5
        assert stats.avg_request_kb == pytest.approx(2.0)
        assert stats.iops == pytest.approx(1.0)

    def test_writes_filter(self):
        trace = Trace(
            "t",
            [
                TraceRequest(0.0, 0, 512, True),
                TraceRequest(1.0, 0, 512, False),
            ],
        )
        assert len(trace.writes) == 1

    def test_scaled(self):
        trace = generate_trace("src2_0", requests=100, seed=0)
        assert len(trace.scaled(10)) == 10
        with pytest.raises(ValueError):
            trace.scaled(0)


class TestCsvParsing:
    def test_parse_roundtrip(self, tmp_path):
        path = tmp_path / "trace.csv"
        path.write_text(
            "# comment\n"
            "0,0,100,8,W,0.5\n"
            "0,0,200,16,r,1.5\n"
        )
        trace = parse_csv_trace(path)
        assert len(trace) == 2
        first = trace.requests[0]
        assert first.offset == 100 * 512
        assert first.length == 8 * 512
        assert first.is_write
        assert not trace.requests[1].is_write

    def test_parse_rejects_bad_opcode(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("0,0,1,1,x,0.0\n")
        with pytest.raises(ValueError, match="opcode"):
            parse_csv_trace(path)

    def test_parse_rejects_short_lines(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("0,0,1\n")
        with pytest.raises(ValueError, match="fields"):
            parse_csv_trace(path)


class TestSyntheticGenerators:
    def test_all_table3_workloads_present(self):
        assert workload_names() == sorted(
            ["financial_1", "financial_2", "prxy_0", "src2_0", "stg_0", "usr_0"]
        )

    @pytest.mark.parametrize("name", sorted(TABLE3_WORKLOADS))
    def test_statistics_match_table3(self, name):
        """Each generator must land within tolerance of the published
        write fraction, average request size, and IOPS."""
        spec = TABLE3_WORKLOADS[name]
        stats = generate_trace(name, requests=8000, seed=42).stats()
        assert stats.write_fraction == pytest.approx(
            spec.write_fraction, abs=0.02
        )
        assert stats.avg_request_kb == pytest.approx(
            spec.avg_request_kb, rel=0.10
        )
        assert stats.iops == pytest.approx(spec.iops, rel=0.05)

    def test_deterministic_given_seed(self):
        a = generate_trace("stg_0", requests=200, seed=7)
        b = generate_trace("stg_0", requests=200, seed=7)
        assert a.requests == b.requests

    def test_different_seeds_differ(self):
        a = generate_trace("stg_0", requests=200, seed=7)
        b = generate_trace("stg_0", requests=200, seed=8)
        assert a.requests != b.requests

    def test_sector_alignment(self):
        trace = generate_trace("usr_0", requests=500, seed=1)
        for req in trace:
            assert req.length % 512 == 0
            assert req.offset % 512 == 0

    def test_request_count_validation(self):
        with pytest.raises(ValueError):
            generate_trace("stg_0", requests=0)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            generate_trace("no_such_trace", requests=10)


class TestDegenerateStats:
    def test_single_request_reports_zero_iops(self):
        trace = Trace("one", [TraceRequest(0.0, 0, 4096, True)])
        stats = trace.stats()
        assert stats.requests == 1
        assert stats.duration_s == 0.0
        assert stats.iops == 0.0
        assert stats.write_fraction == 1.0

    def test_all_requests_at_time_zero(self):
        trace = Trace("burst", [
            TraceRequest(0.0, i * 512, 512, False) for i in range(5)
        ])
        assert trace.stats().iops == 0.0


class TestMessyCsv:
    def test_header_blanks_comments_and_extra_columns(self, tmp_path):
        path = tmp_path / "messy.csv"
        path.write_text(
            "\n"
            "# exported 2014-03-02\n"
            "asu,devid,offset,length,opcode,timestamp\n"
            "0, 0, 100, 8, W, 0.5, extra, columns\n"
            "\n"
            "   # indented comment\n"
            "0,0,200,16,r,1.5\n"
        )
        trace = parse_csv_trace(path)
        assert len(trace) == 2
        assert trace.requests[0].offset == 100 * 512
        assert trace.requests[1].length == 16 * 512

    def test_header_only_in_first_content_line(self, tmp_path):
        # A non-numeric row later in the file is an error, not a header.
        path = tmp_path / "midheader.csv"
        path.write_text(
            "0,0,100,8,W,0.5\n"
            "asu,devid,offset,length,opcode,timestamp\n"
        )
        with pytest.raises(ValueError, match=r"midheader\.csv:2"):
            parse_csv_trace(path)

    def test_errors_name_file_and_line(self, tmp_path):
        path = tmp_path / "broken.csv"
        path.write_text(
            "# fine\n"
            "0,0,100,8,W,0.5\n"
            "0,0,oops,8,W,1.0\n"
        )
        with pytest.raises(ValueError, match=r"broken\.csv:3"):
            parse_csv_trace(path)

    def test_invalid_request_values_name_file_and_line(self, tmp_path):
        path = tmp_path / "negative.csv"
        path.write_text("0,0,100,8,W,-2.0\n")
        with pytest.raises(ValueError, match=r"negative\.csv:1.*timestamp"):
            parse_csv_trace(path)

    def test_empty_file_names_the_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("# only comments\n\n")
        with pytest.raises(ValueError, match=r"empty\.csv: no requests"):
            parse_csv_trace(path)
