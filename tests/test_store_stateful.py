"""Stateful property test: the ArrayStore against an in-memory model.

Hypothesis drives random sequences of writes, reads, disk failures and
rebuilds; the store must always agree with a plain numpy reference array,
regardless of interleaving — including reads and writes issued while the
array is degraded.
"""

import shutil
import tempfile

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.codes import make_code
from repro.store import ArrayStore

CHUNK = 64
STRIPES = 3


class StoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.directory = tempfile.mkdtemp(prefix="store-machine-")
        self.code = make_code("tip", 6)
        self.store = ArrayStore(
            self.code, self.directory, stripes=STRIPES, chunk_bytes=CHUNK
        )
        self.model = np.zeros(
            (self.store.capacity_chunks, CHUNK), dtype=np.uint8
        )
        self.counter = 0

    def teardown(self):
        shutil.rmtree(self.directory, ignore_errors=True)

    @rule(
        start=st.integers(0, 35),
        count=st.integers(1, 12),
    )
    def write(self, start, count):
        capacity = self.store.capacity_chunks
        start = min(start, capacity - 1)
        count = min(count, capacity - start)
        self.counter += 1
        data = np.full((count, CHUNK), self.counter % 256, dtype=np.uint8)
        data[:, 0] = np.arange(count, dtype=np.uint8)
        self.store.write_chunks(start, data)
        self.model[start: start + count] = data

    @rule(start=st.integers(0, 35), count=st.integers(1, 12))
    def read(self, start, count):
        capacity = self.store.capacity_chunks
        start = min(start, capacity - 1)
        count = min(count, capacity - start)
        assert np.array_equal(
            self.store.read_chunks(start, count),
            self.model[start: start + count],
        )

    @precondition(lambda self: len(self.store.failed) < 3)
    @rule(disk=st.integers(0, 5))
    def fail_disk(self, disk):
        if disk in self.store.failed:
            return
        self.store.fail_disk(disk)

    @precondition(lambda self: self.store.failed)
    @rule()
    def rebuild(self):
        self.store.rebuild()
        assert self.store.failed == set()
        assert self.store.scrub() == []

    @invariant()
    def data_always_readable(self):
        sample = self.store.read_chunks(0, 4)
        assert np.array_equal(sample, self.model[:4])


TestStoreMachine = StoreMachine.TestCase
TestStoreMachine.settings = settings(
    max_examples=12, stateful_step_count=18, deadline=None
)
