"""Tests for the shared sampling distributions and RNG plumbing."""

import numpy as np
import pytest

from repro.reliability import (
    Exponential,
    Fixed,
    Weibull,
    as_generator,
    make_distribution,
    spawn_generators,
)


class TestLaws:
    def test_exponential_mean(self):
        rng = np.random.default_rng(0)
        draws = [Exponential(100.0).sample(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(100.0, rel=0.05)
        assert Exponential(100.0).mean_value == 100.0

    def test_weibull_shape_one_is_exponential(self):
        """Weibull(1, scale) and Exponential(scale) are the same law."""
        w, e = Weibull(1.0, 50.0), Exponential(50.0)
        assert w.mean_value == pytest.approx(e.mean_value)
        rng = np.random.default_rng(1)
        draws = [w.sample(rng) for _ in range(20_000)]
        assert np.mean(draws) == pytest.approx(50.0, rel=0.05)

    def test_weibull_mean_gamma_formula(self):
        # E[X] = scale * Gamma(1 + 1/shape); shape=2 -> scale*sqrt(pi)/2
        assert Weibull(2.0, 10.0).mean_value == pytest.approx(
            10.0 * np.sqrt(np.pi) / 2
        )

    def test_fixed_consumes_no_rng(self):
        rng = np.random.default_rng(2)
        before = rng.bit_generator.state["state"]["state"]
        assert Fixed(7.5).sample(rng) == 7.5
        assert rng.bit_generator.state["state"]["state"] == before

    def test_validation(self):
        with pytest.raises(ValueError):
            Exponential(0.0)
        with pytest.raises(ValueError):
            Weibull(-1.0, 5.0)
        with pytest.raises(ValueError):
            Weibull(1.0, 0.0)
        with pytest.raises(ValueError):
            Fixed(-3.0)


class TestMakeDistribution:
    def test_passthrough(self):
        d = Weibull(1.2, 900.0)
        assert make_distribution(d) is d

    def test_bare_number_is_exponential_mean(self):
        assert make_distribution(1000) == Exponential(1000.0)
        assert make_distribution(24.0) == Exponential(24.0)

    def test_string_specs(self):
        assert make_distribution("exp:500") == Exponential(500.0)
        assert make_distribution("weibull:1.5:2000") == Weibull(1.5, 2000.0)
        assert make_distribution("fixed:12") == Fixed(12.0)

    def test_malformed_specs(self):
        with pytest.raises(ValueError, match="unknown distribution kind"):
            make_distribution("gauss:1:2")
        with pytest.raises(ValueError, match="malformed"):
            make_distribution("exp:abc")
        with pytest.raises(ValueError, match="malformed"):
            make_distribution("weibull:1.5")

    def test_invalid_parameters_surface(self):
        with pytest.raises(ValueError, match="positive"):
            make_distribution("exp:-5")


class TestGenerators:
    def test_as_generator_passthrough_shares_stream(self):
        rng = np.random.default_rng(3)
        assert as_generator(rng) is rng

    def test_as_generator_from_seed_is_deterministic(self):
        a = as_generator(42).random()
        b = as_generator(42).random()
        assert a == b

    def test_as_generator_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq).random()
        b = as_generator(np.random.SeedSequence(7)).random()
        assert a == b

    def test_spawn_generators_independent_and_reproducible(self):
        first = [g.random() for g in spawn_generators(5, 4)]
        again = [g.random() for g in spawn_generators(5, 4)]
        assert first == again
        assert len(set(first)) == 4  # streams differ from each other

    def test_spawn_generators_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
        assert spawn_generators(0, 0) == []
