"""Scrub classification and repair tests (repro.faults.scrub).

The cross-family property: for every registered code family at two array
sizes (two distinct underlying primes), ``verify_stripe`` detects every
single-element corruption, ``classify_stripe`` locates the exact element,
and the online :class:`Scrubber` repairs it in place on a real store.
"""

import numpy as np
import pytest

from repro.codes import make_code
from repro.codes.base import Cell
from repro.codes.registry import CODE_FAMILIES
from repro.faults import FaultPlan, LatentSectorError, Scrubber
from repro.faults.scrub import classify_stripe
from repro.store import ArrayStore

#: X-code is a vertical code defined only for prime n.
SIZES_FOR = {"x-code": (5, 7)}
CONFIGS = [
    (family, n)
    for family in sorted(CODE_FAMILIES)
    for n in SIZES_FOR.get(family, (6, 8))
]
CHUNK = 16


def make_store(tmp_path, family="tip", n=6, stripes=3, chunk_bytes=CHUNK):
    return ArrayStore(
        make_code(family, n), tmp_path, stripes=stripes,
        chunk_bytes=chunk_bytes,
    )


def fill(store, seed=0):
    rng = np.random.default_rng(seed)
    cap = store.capacity_chunks * store.chunk_bytes
    data = rng.integers(0, 256, cap, dtype=np.uint8)
    store.write_bytes(0, data)
    return data


def flip_element(store, stripe, pos, seed):
    """Silently corrupt one stored element via the raw span interface."""
    row, col = pos
    offset = (stripe * store.code.rows + row) * store.chunk_bytes
    raw = bytearray(store._raw_read_span(col, offset, store.chunk_bytes))
    rng = np.random.default_rng(seed)
    bit = int(rng.integers(0, len(raw) * 8))
    raw[bit // 8] ^= 1 << (bit % 8)
    store._raw_write_span(col, offset, bytes(raw))


@pytest.mark.parametrize("family,n", CONFIGS)
def test_every_single_corruption_detected_located_and_repaired(
    family, n, tmp_path
):
    """The satellite property: walk *every* cell of a stripe (data,
    parity, and structural-zero EMPTY cells), corrupt it, and require
    detection + exact location + in-place repair."""
    store = make_store(tmp_path, family, n)
    data = fill(store, seed=n)
    code = store.code
    stripe = 1
    scrubber = Scrubber(store)
    for seed, pos in enumerate(
        [(r, c) for r in range(code.rows) for c in range(code.cols)]
    ):
        flip_element(store, stripe, pos, seed=seed + 1)
        grid = store.read_stripes(stripe, 1)
        if code.kind(*pos) != Cell.EMPTY:
            assert not code.verify_stripe(grid), (family, n, pos)
        state, located, error = classify_stripe(code, grid)
        assert state == "corruption", (family, n, pos, state)
        assert located == pos, (family, n, pos, located)
        assert error is not None and error.any()
        scrubber.scrub_stripe(stripe)
        finding = scrubber.report.findings[-1]
        assert finding.kind == "corruption" and finding.fixed
        assert finding.position == pos
        assert finding.disk == pos[1]
        assert code.verify_stripe(store.read_stripes(stripe, 1))
    assert scrubber.report.unfixable == 0
    assert np.array_equal(
        np.asarray(store.read_bytes(0, data.size)).reshape(-1), data
    )


class TestClassify:
    def test_clean(self, tmp_path):
        store = make_store(tmp_path)
        fill(store)
        assert classify_stripe(store.code, store.read_stripes(0, 1))[0] == (
            "clean"
        )

    def test_multi_column_corruption_is_ambiguous(self, tmp_path):
        store = make_store(tmp_path)
        fill(store)
        code = store.code
        data_cols = sorted({c for _, c in code.data_positions})
        flip_element(store, 0, (0, data_cols[0]), seed=1)
        flip_element(store, 0, (1, data_cols[1]), seed=2)
        state, pos, _ = classify_stripe(code, store.read_stripes(0, 1))
        assert state == "ambiguous"
        assert pos is None


class TestScrubber:
    def test_clean_pass_touches_nothing(self, tmp_path):
        store = make_store(tmp_path, stripes=8)
        fill(store)
        report = Scrubber(store, batch_stripes=3).run()
        assert report.stripes_scanned == 8
        assert report.errors_found == 0
        assert report.io.chunks_written == 0
        assert report.io.chunks_read > 0

    def test_step_is_resumable(self, tmp_path):
        store = make_store(tmp_path, stripes=8)
        fill(store)
        scrubber = Scrubber(store, batch_stripes=3)
        sizes = []
        while not scrubber.done:
            sizes.append(scrubber.step())
        assert sizes == [3, 3, 2]
        assert scrubber.step() == 0  # pass complete
        scrubber.reset()
        assert scrubber.cursor == 0

    def test_max_stripes_throttle(self, tmp_path):
        store = make_store(tmp_path, stripes=8)
        fill(store)
        scrubber = Scrubber(store, batch_stripes=8)
        assert scrubber.step(max_stripes=2) == 2
        assert scrubber.cursor == 2

    def test_latent_repair_rewrites_and_clears(self, tmp_path):
        store = make_store(tmp_path, stripes=4)
        data = fill(store)
        plan = FaultPlan(seed=0).latent(disk=0, lba=0)
        store.set_fault_plan(plan)
        with pytest.raises(LatentSectorError):
            store.read_chunks(0, store.capacity_chunks)
        report = Scrubber(store).run()
        assert report.errors_found >= 1
        assert any(f.kind == "erasure" and f.fixed for f in report.findings)
        assert report.unfixable == 0
        assert plan.active_latent() == set()
        assert plan.injected[0].status == "repaired"
        assert np.array_equal(
            np.asarray(store.read_bytes(0, data.size)).reshape(-1), data
        )

    def test_corruption_cross_validates_ground_truth(self, tmp_path):
        store = make_store(tmp_path, stripes=4)
        data = fill(store)
        plan = FaultPlan(seed=9).bit_flip(disk=1, lba=1)
        store.set_fault_plan(plan)
        store._read_span(1, 0, store.chunk_bytes)  # mint the flip
        [truth] = plan.injected
        report = Scrubber(store).run()
        located = [
            f for f in report.findings if f.kind == "corruption" and f.fixed
        ]
        assert len(located) == 1
        assert located[0].disk == truth.disk
        assert located[0].stripe == truth.lba // store.code.rows
        assert report.unfixable == 0
        store.set_fault_plan(None)
        assert np.array_equal(
            np.asarray(store.read_bytes(0, data.size)).reshape(-1), data
        )

    def test_degraded_scrub_skips_failed_column(self, tmp_path):
        store = make_store(tmp_path, stripes=4)
        fill(store)
        store.fail_disk(2)
        report = Scrubber(store).run()
        # Every stripe has a genuine whole-column erasure; scrubbing
        # must neither crash nor count the degraded column unfixable.
        assert report.unfixable == 0

    def test_unfixable_stripe_still_remaps_unreadable(self, tmp_path):
        """An unfixable stripe must not wedge foreground I/O: its latent
        sectors are remapped best-effort so reads stop erroring."""
        store = make_store(tmp_path, stripes=4)
        fill(store)
        code = store.code
        data_cols = sorted({c for _, c in code.data_positions})
        # Two corrupted columns => ambiguous, genuinely unfixable.
        flip_element(store, 0, (0, data_cols[0]), seed=1)
        flip_element(store, 0, (1, data_cols[1]), seed=2)
        plan = FaultPlan(seed=0).latent(disk=data_cols[2], lba=0)
        store.set_fault_plan(plan)
        with pytest.raises(LatentSectorError):
            store.read_chunks(0, store.capacity_chunks)
        scrubber = Scrubber(store)
        scrubber.scrub_stripe(0)
        assert scrubber.report.unfixable >= 1
        assert plan.active_latent() == set()  # remapped, readable again
        store.read_chunks(0, store.capacity_chunks)  # no raise

    def test_detection_fraction_measured(self, tmp_path):
        store = make_store(tmp_path, stripes=10)
        fill(store)
        flip_element(store, 9, (0, 0), seed=1)
        report = Scrubber(store).run()
        fraction = report.detection_fraction()
        assert fraction == pytest.approx(1.0)

    def test_detection_fraction_none_when_clean(self, tmp_path):
        store = make_store(tmp_path)
        fill(store)
        report = Scrubber(store).run()
        assert report.detection_fraction() is None
        assert "0 errors" in report.summary()
