"""Tests for the ArrayStore delta write fast path and I/O accounting.

The store must *demonstrate* the paper's update-complexity claim, not
just compute it: a single-chunk write on TIP touches exactly 1 data +
3 parity chunks (read and written), STAR touches more, and the delta
path is byte-identical to the full-stripe path on every workload.
"""

import numpy as np
import pytest

from repro.analysis.write_path import full_stripe_cost, rmw_cost
from repro.codes import make_code
from repro.store import WRITE_MODES, ArrayStore, IoCounters

CHUNK = 256


def random_chunks(count, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 256, size=(count, CHUNK), dtype=np.uint8)


def make_store(tmp_path, family="tip", n=6, **kwargs):
    return ArrayStore(
        make_code(family, n),
        tmp_path,
        stripes=3,
        chunk_bytes=CHUNK,
        **kwargs,
    )


class TestIoAccounting:
    def test_tip_single_chunk_write_is_optimal(self, tmp_path):
        """The paper's headline: 1 data + exactly 3 parity chunks."""
        store = make_store(tmp_path)
        store.write_chunks(0, random_chunks(store.capacity_chunks, seed=1))
        store.write_chunks(7, random_chunks(1, seed=2))
        io = store.last_io
        assert io.data_chunks_read == 1
        assert io.parity_chunks_read == 3
        assert io.data_chunks_written == 1
        assert io.parity_chunks_written == 3
        assert store.scrub() == []

    def test_every_tip_chunk_position_is_optimal(self, tmp_path):
        store = make_store(tmp_path)
        for logical in range(store.code.num_data):
            store.write_chunks(logical, random_chunks(1, seed=logical))
            assert store.last_io.parity_chunks_written == 3, logical
            assert store.last_io.data_chunks_written == 1, logical

    def test_star_touches_more_parity_chunks(self, tmp_path):
        """STAR's adjuster chains make some single writes cost > 3."""
        store = make_store(tmp_path, family="star")
        code = store.code
        worst = max(
            range(code.num_data),
            key=lambda i: len(code.parity_dependents[code.data_positions[i]]),
        )
        expected = len(code.parity_dependents[code.data_positions[worst]])
        assert expected > 3
        store.write_chunks(worst, random_chunks(1, seed=3))
        assert store.last_io.parity_chunks_written == expected
        assert store.scrub() == []

    def test_cumulative_and_last_op_counters(self, tmp_path):
        store = make_store(tmp_path)
        store.write_chunks(0, random_chunks(1, seed=4))
        first = store.last_io
        before = store.io.snapshot()
        store.write_chunks(1, random_chunks(1, seed=5))
        # last_io is rebound per operation: the old reference is stable.
        assert first.chunks_written == 4
        assert (store.io - before).chunks_written == 4
        assert store.io.chunks_written == before.chunks_written + 4

    def test_read_accounting_healthy(self, tmp_path):
        store = make_store(tmp_path)
        store.write_chunks(0, random_chunks(5, seed=6))
        store.read_chunks(0, 5)
        assert store.last_io.data_chunks_read == 5
        assert store.last_io.parity_chunks_read == 0
        assert store.last_io.chunks_written == 0

    def test_counters_arithmetic(self):
        a = IoCounters(3, 1, 2, 1)
        b = IoCounters(1, 1, 1, 1)
        diff = a - b
        assert diff == IoCounters(2, 0, 1, 0)
        assert diff.total_chunks == 3
        snap = a.snapshot()
        a.reset()
        assert snap.chunks_read == 4 and a.total_chunks == 0


class TestPathSelection:
    def test_small_write_takes_fast_path(self, tmp_path):
        store = make_store(tmp_path)
        store.write_chunks(0, random_chunks(1, seed=7))
        assert store.fast_path_writes == 1
        assert store.slow_path_writes == 0

    def test_full_stripe_write_takes_slow_path(self, tmp_path):
        store = make_store(tmp_path)
        store.write_chunks(
            0, random_chunks(store.code.num_data, seed=8)
        )
        assert store.fast_path_writes == 0
        assert store.slow_path_writes == 1

    def test_auto_threshold_matches_cost_model(self, tmp_path):
        """Auto must go delta exactly when RMW beats the naive path."""
        store = make_store(tmp_path)
        code = store.code
        baseline = full_stripe_cost(code).total_ios
        for run in range(1, code.num_data + 1):
            positions = [code.data_positions[i] for i in range(run)]
            expect_fast = rmw_cost(code, positions).total_ios < baseline
            fast_before = store.fast_path_writes
            store.write_chunks(0, random_chunks(run, seed=run))
            took_fast = store.fast_path_writes == fast_before + 1
            assert took_fast == expect_fast, run

    def test_forced_modes(self, tmp_path):
        delta = make_store(tmp_path / "d", write_mode="delta")
        stripe = make_store(tmp_path / "s", write_mode="stripe")
        data = random_chunks(1, seed=9)
        delta.write_chunks(0, data)
        stripe.write_chunks(0, data)
        assert delta.fast_path_writes == 1 and delta.slow_path_writes == 0
        assert stripe.fast_path_writes == 0 and stripe.slow_path_writes == 1

    def test_degraded_write_falls_back(self, tmp_path):
        store = make_store(tmp_path, write_mode="delta")
        store.write_chunks(0, random_chunks(store.capacity_chunks, seed=10))
        store.fail_disk(1)
        store.write_chunks(2, random_chunks(1, seed=11))
        assert store.slow_path_writes >= 1
        store.rebuild()
        assert store.scrub() == []

    def test_invalid_write_mode(self, tmp_path):
        with pytest.raises(ValueError, match="write_mode"):
            make_store(tmp_path, write_mode="yolo")
        assert set(WRITE_MODES) == {"auto", "delta", "stripe"}


class TestDeltaEquivalence:
    @pytest.mark.parametrize("family", ["tip", "star", "triple-star"])
    def test_delta_and_stripe_paths_agree(self, tmp_path, family):
        """Same writes through both paths -> byte-identical disk files."""
        stores = {
            mode: make_store(tmp_path / mode, family=family, write_mode=mode)
            for mode in ("delta", "stripe")
        }
        rng = np.random.default_rng(12)
        capacity = next(iter(stores.values())).capacity_chunks
        for step in range(25):
            start = int(rng.integers(0, capacity))
            count = int(rng.integers(1, min(8, capacity - start) + 1))
            data = rng.integers(0, 256, size=(count, CHUNK), dtype=np.uint8)
            for store in stores.values():
                store.write_chunks(start, data)
        for disk in range(stores["delta"].code.cols):
            a = (tmp_path / "delta" / f"disk{disk:03d}.img").read_bytes()
            b = (tmp_path / "stripe" / f"disk{disk:03d}.img").read_bytes()
            assert a == b, disk
        for store in stores.values():
            assert store.scrub() == []

    def test_overwrite_with_same_data_keeps_parity(self, tmp_path):
        store = make_store(tmp_path)
        data = random_chunks(1, seed=13)
        store.write_chunks(4, data)
        store.write_chunks(4, data)  # zero delta
        assert store.scrub() == []
        assert np.array_equal(store.read_chunks(4, 1), data)


class TestStoreInternals:
    def test_decoder_reused_across_operations(self, tmp_path):
        store = make_store(tmp_path)
        store.write_chunks(0, random_chunks(4, seed=14))
        store.fail_disk(0)
        first = store._current_decoder()
        store.read_chunks(0, 4)
        assert store._current_decoder() is first
        store.rebuild()
        store.fail_disk(0)
        assert store._current_decoder() is first

    def test_handles_persist_and_close(self, tmp_path):
        store = make_store(tmp_path)
        store.write_chunks(0, random_chunks(2, seed=15))
        handle = store._handles[0]
        store.write_chunks(0, random_chunks(2, seed=16))
        assert store._handles[0] is handle
        store.close()
        assert handle.closed
        # reuse after close reopens lazily
        assert np.array_equal(
            store.read_chunks(0, 2), random_chunks(2, seed=16)
        )

    def test_context_manager_closes(self, tmp_path):
        with make_store(tmp_path) as store:
            store.write_chunks(0, random_chunks(1, seed=17))
            handle = store._handles[0]
        assert handle.closed
