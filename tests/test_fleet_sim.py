"""Tests for the fleet simulator: determinism, oracle, contention."""

import json

import numpy as np
import pytest

from repro.fleet import (
    FleetScenario,
    FleetSimulator,
    load_scenario,
    run_fleet_trials,
    simulate_fleet,
)
from repro.reliability import mttdl, simulate_mttdl
from repro.reliability.distributions import Fixed

#: A small, eventful scenario: every failure process active, short
#: horizon, aggressive rates — cheap but exercises all the machinery.
BUSY = FleetScenario(
    topology="3x3x2",
    code="tip",
    n=6,
    placement="random",
    failure_model={
        "disk_lifetime": 2_000.0,
        "latent_rate": 1e-3,
        "scrub_interval_hours": 100.0,
        "machine_failure_rate": 2e-3,
        "rack_failure_rate": 5e-4,
        "partition_rate": 5e-4,
        "burst_probability": 0.3,
    },
    stripes=60,
    duration_hours=6_000.0,
    chunk_mib=512.0,
    seed=11,
)

_BUSY_RESULT = None


def busy_result():
    """One shared run of BUSY for tests that only read its metrics."""
    global _BUSY_RESULT
    if _BUSY_RESULT is None:
        _BUSY_RESULT = simulate_fleet(BUSY)
    return _BUSY_RESULT


class TestDeterminism:
    def test_same_seed_identical_event_log_and_metrics(self):
        """The replay contract: (scenario, seed) determines the full
        history — every event, not just the summary numbers."""
        a = simulate_fleet(BUSY)
        b = simulate_fleet(BUSY)
        assert a.event_log == b.event_log
        assert a.losses == b.losses
        assert a.series == b.series
        assert a.unavailable_stripe_hours == b.unavailable_stripe_hours
        assert a.degraded_stripe_hours == b.degraded_stripe_hours
        assert a.repair_read_mib == b.repair_read_mib
        assert a.event_counts == b.event_counts

    def test_different_seed_different_history(self):
        a = busy_result()
        b = simulate_fleet(
            FleetScenario(**{**BUSY.to_dict(), "seed": 12})
        )
        assert a.event_log != b.event_log

    def test_trials_are_individually_reproducible(self):
        """Trial t is the t-th SeedSequence child: rerunning it alone
        reproduces its history inside the aggregate."""
        children = np.random.SeedSequence(BUSY.seed).spawn(3)
        direct = FleetSimulator(BUSY, children[2]).run()
        again = FleetSimulator(
            BUSY, np.random.SeedSequence(BUSY.seed).spawn(3)[2]
        ).run()
        assert direct.event_log == again.event_log

    def test_summary_deterministic(self):
        a = run_fleet_trials(BUSY, trials=3)
        b = run_fleet_trials(BUSY, trials=3)
        assert a.mean_unavailability == b.mean_unavailability
        assert a.mean_repair_read_mib == b.mean_repair_read_mib

    def test_all_failure_processes_fired(self):
        counts = busy_result().event_counts
        for kind in (
            "disk_fail", "disk_repaired", "latent_mint",
            "machine_down", "machine_up",
        ):
            assert counts.get(kind, 0) > 0, f"no {kind} events"


class TestOracle:
    """Tiny-fleet cross-check against the single-array models.

    One stripe of a 2-fault code on six single-disk machines, with
    bandwidth sized so one rebuild takes ~REBUILD hours, is exactly the
    process `simulate_mttdl` (parallel rebuilds, fixed duration) runs —
    the fleet's mean time to first loss must agree within Monte-Carlo
    tolerance, and sit near the Markov closed form.
    """

    MTTF = 2_000.0
    REBUILD = 100.0
    _losses_cache: list[float] = []

    def _fleet_first_losses(self, trials: int) -> list[float]:
        if len(self._losses_cache) == trials:
            return self._losses_cache
        # One rebuild reads the 5 surviving chunks; pick the disk
        # bandwidth so exactly that much data moves in REBUILD hours.
        chunk = 3600.0
        scenario = FleetScenario(
            topology="1x6x1",
            code="evenodd",
            n=6,
            placement="pss",
            failure_model={"disk_lifetime": self.MTTF},
            stripes=1,
            duration_hours=1e9,
            chunk_mib=chunk,
            disk_mib_s=5 * chunk / (3600.0 * self.REBUILD),
            cross_rack_mib_s=1e9,
            seed=1,
        )
        children = np.random.SeedSequence(scenario.seed).spawn(trials)
        losses = []
        for child in children:
            result = FleetSimulator(scenario, child).run(stop_on_loss=True)
            assert result.any_loss, "horizon too short for the oracle"
            losses.append(result.first_loss_hours)
        type(self)._losses_cache = losses
        return losses

    def test_fleet_matches_monte_carlo_reference(self):
        losses = self._fleet_first_losses(trials=250)
        fleet_mttdl = sum(losses) / len(losses)
        reference = simulate_mttdl(
            6, 2,
            disk_mttf_hours=self.MTTF,
            rebuild_hours=self.REBUILD,
            trials=4000,
            seed=2,
            rebuild_time=Fixed(self.REBUILD),
        )
        assert fleet_mttdl == pytest.approx(reference.mean_hours, rel=0.2)

    def test_fleet_near_markov_closed_form(self):
        """Coarser: the closed form assumes exponential rebuilds, the
        fleet's are (near-)fixed, so agreement is order-of-magnitude
        plus — it still catches wrong fault budgets or broken repair."""
        losses = self._fleet_first_losses(trials=250)
        fleet_mttdl = sum(losses) / len(losses)
        exact = mttdl(
            6, 2, disk_mttf_hours=self.MTTF, rebuild_hours=self.REBUILD
        )
        assert fleet_mttdl == pytest.approx(exact, rel=0.5)


class TestRepairContention:
    def _summary(self, cross_rack_mib_s: float):
        scenario = FleetScenario(
            topology="2x4x2",
            code="tip",
            n=6,
            placement="random",
            failure_model={
                "disk_lifetime": 3_000.0,
                # Subcritical bursts (expected fanout 0.6 < 1): failures
                # cluster tightly enough to overlap their repairs, but
                # cascades die out.
                "burst_probability": 0.3,
                "burst_fanout": 2,
                "burst_window_hours": 1.0,
            },
            stripes=100,
            duration_hours=20_000.0,
            chunk_mib=512.0,
            disk_mib_s=20.0,
            cross_rack_mib_s=cross_rack_mib_s,
            seed=5,
        )
        return run_fleet_trials(scenario, trials=3)

    def test_narrow_pipe_stretches_rebuilds(self):
        """Bursty failures + a 10x narrower cross-rack pipe must yield
        longer mean rebuilds — the contention mechanism itself."""
        wide = self._summary(cross_rack_mib_s=200.0)
        narrow = self._summary(cross_rack_mib_s=20.0)
        assert narrow.mean_repair_hours > wide.mean_repair_hours * 1.5

    def test_locality_code_moves_less_repair_traffic(self):
        """XORBAS repairs from its group: per-rebuild read traffic must
        undercut a same-width MDS code on the same fleet."""
        def per_repair_reads(code):
            scenario = FleetScenario(
                topology="2x6x2",
                code=code,
                n=10,
                placement="random",
                failure_model={"disk_lifetime": 3_000.0},
                stripes=100,
                duration_hours=20_000.0,
                seed=9,
            )
            s = run_fleet_trials(scenario, trials=2)
            return s.mean_repair_read_mib

        assert per_repair_reads("xorbas") < 0.6 * per_repair_reads(
            "cauchy-rs"
        )


class TestMetrics:
    def test_losses_recorded_and_stripe_stays_lost(self):
        """Slow repair + tiny MTTF: losses must occur, count once, and
        keep counting as unavailable through the horizon."""
        scenario = FleetScenario(
            topology="1x6x1",
            code="evenodd",
            n=6,
            placement="pss",
            failure_model={"disk_lifetime": 150.0},
            stripes=3,
            duration_hours=50_000.0,
            chunk_mib=3600.0,
            disk_mib_s=0.5,  # ~10h+ rebuilds against a 150h MTTF
            cross_rack_mib_s=1e9,
            seed=3,
        )
        result = simulate_fleet(scenario)
        assert result.any_loss
        assert result.lost_stripes == len({s for _, s in result.losses})
        assert 0 < result.data_loss_probability <= 1.0
        # Once lost, a stripe accrues unavailable time to the horizon.
        first_loss = result.first_loss_hours
        assert result.unavailable_stripe_hours >= (
            scenario.duration_hours - first_loss
        )

    def test_stop_on_loss_truncates(self):
        scenario = FleetScenario(
            topology="1x6x1",
            code="evenodd",
            n=6,
            placement="pss",
            failure_model={"disk_lifetime": 150.0},
            stripes=3,
            duration_hours=50_000.0,
            chunk_mib=3600.0,
            disk_mib_s=0.5,
            cross_rack_mib_s=1e9,
            seed=3,
        )
        result = FleetSimulator(scenario).run(stop_on_loss=True)
        assert result.lost_stripes >= 1
        assert result.duration_hours == result.losses[0][0]

    def test_domain_outages_cause_unavailability_not_loss(self):
        """Machine downtime with no disk failures: degraded time
        accrues, nothing is ever lost, nothing is rebuilt."""
        scenario = FleetScenario(
            topology="2x4x2",
            code="tip",
            n=6,
            placement="random",
            failure_model={
                "disk_lifetime": 1e12,
                "machine_failure_rate": 1e-2,
            },
            stripes=50,
            duration_hours=10_000.0,
            seed=4,
        )
        result = simulate_fleet(scenario)
        assert result.event_counts.get("machine_down", 0) > 0
        assert result.degraded_stripe_hours > 0
        assert not result.any_loss
        assert result.repairs_completed == 0
        # tip at n=6 tolerates 3 losses; single-machine outages erase
        # at most one chunk per stripe, so nothing goes unavailable.
        assert result.unavailable_stripe_hours == 0.0


class TestScenario:
    def test_round_trip(self):
        data = BUSY.to_dict()
        assert FleetScenario.from_dict(data) == BUSY

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario keys"):
            FleetScenario.from_dict({"topolgy": "4x4x4"})

    def test_load_scenario(self, tmp_path):
        path = tmp_path / "cell.json"
        path.write_text(json.dumps({"code": "star", "stripes": 10}))
        scenario = load_scenario(path)
        assert scenario.code == "star"
        assert scenario.stripes == 10

    def test_cell_label(self):
        assert BUSY.cell_label() == "tip/random/custom"
        assert FleetScenario().cell_label() == "tip/random/correlated"

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetScenario(stripes=0)
        with pytest.raises(ValueError):
            FleetScenario(duration_hours=0.0)
