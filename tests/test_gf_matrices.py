"""Tests for Cauchy/Vandermonde constructions and bit-matrix projection."""

import itertools

import numpy as np
import pytest

from repro.bitmatrix import bm_mat_vec
from repro.gf import (
    GF2w,
    cauchy_matrix,
    element_to_bitmatrix,
    gf_matrix_to_bitmatrix,
    systematic_vandermonde,
    vandermonde_matrix,
)
from repro.gf.matrices import optimize_cauchy_ones


@pytest.fixture(scope="module")
def gf4():
    return GF2w(4)


def test_cauchy_every_square_submatrix_invertible(gf4):
    cauchy = cauchy_matrix(gf4, 3, 5)
    for size in (1, 2, 3):
        for rows in itertools.combinations(range(3), size):
            for cols in itertools.combinations(range(5), size):
                sub = cauchy[np.ix_(rows, cols)]
                gf4.mat_inv(sub)  # raises if singular


def test_cauchy_rejects_overlapping_points(gf4):
    with pytest.raises(ValueError):
        cauchy_matrix(gf4, 2, 2, xs=[1, 2], ys=[2, 3])
    with pytest.raises(ValueError):
        cauchy_matrix(gf4, 2, 2, xs=[1, 1], ys=[2, 3])


def test_cauchy_rejects_field_too_small():
    with pytest.raises(ValueError):
        cauchy_matrix(GF2w(2), 3, 3)


def test_vandermonde_structure(gf4):
    mat = vandermonde_matrix(gf4, 5, 3)
    for i in range(1, 5):
        for j in range(3):
            assert mat[i, j] == gf4.pow(i, j)
    assert mat[0, 0] == 1 and not mat[0, 1:].any()


def test_systematic_vandermonde_is_systematic_and_mds(gf4):
    n, k = 7, 4
    gen = systematic_vandermonde(gf4, n, k)
    assert np.array_equal(gen[:k], np.eye(k, dtype=np.int64))
    # MDS: any k rows invertible
    for rows in itertools.combinations(range(n), k):
        gf4.mat_inv(gen[list(rows)])


def test_systematic_vandermonde_validation(gf4):
    with pytest.raises(ValueError):
        systematic_vandermonde(gf4, 3, 3)
    with pytest.raises(ValueError):
        systematic_vandermonde(gf4, 40, 2)


def test_element_bitmatrix_is_multiplication(gf4):
    """The bit matrix of e must act on bit-vectors as 'multiply by e'."""
    for element in range(16):
        bits = element_to_bitmatrix(gf4, element)
        for value in range(16):
            vector = np.array([(value >> i) & 1 for i in range(4)], dtype=np.uint8)
            product_bits = bm_mat_vec(bits, vector)
            product = sum(int(b) << i for i, b in enumerate(product_bits))
            assert product == gf4.mul(element, value)


def test_bitmatrix_projection_is_homomorphic(gf4):
    """Projection of a product equals the product of projections."""
    rng = np.random.default_rng(7)
    a = int(rng.integers(1, 16))
    b = int(rng.integers(1, 16))
    from repro.bitmatrix import bm_mul

    left = element_to_bitmatrix(gf4, gf4.mul(a, b))
    right = bm_mul(element_to_bitmatrix(gf4, a), element_to_bitmatrix(gf4, b))
    assert np.array_equal(left, right)


def test_gf_matrix_projection_blocks(gf4):
    mat = np.array([[3, 0], [1, 7]], dtype=np.int64)
    bits = gf_matrix_to_bitmatrix(gf4, mat)
    assert bits.shape == (8, 8)
    assert np.array_equal(bits[:4, :4], element_to_bitmatrix(gf4, 3))
    assert not bits[:4, 4:].any()
    assert np.array_equal(bits[4:, 4:], element_to_bitmatrix(gf4, 7))


def test_optimize_cauchy_reduces_or_keeps_ones(gf4):
    cauchy = cauchy_matrix(gf4, 3, 4)
    optimized = optimize_cauchy_ones(gf4, cauchy)
    before = gf_matrix_to_bitmatrix(gf4, cauchy).sum()
    after = gf_matrix_to_bitmatrix(gf4, optimized).sum()
    assert after <= before
    # Row scaling preserves the MDS property.
    for size in (1, 2, 3):
        for rows in itertools.combinations(range(3), size):
            for cols in itertools.combinations(range(4), size):
                gf4.mat_inv(optimized[np.ix_(rows, cols)])
